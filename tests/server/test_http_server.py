"""Tier-1 tests of the HTTP serving frontend.

Each test boots an :class:`AlayaDBServer` on an ephemeral port inside one
asyncio event loop and talks to it over real TCP with the package's own
:class:`ServerClient` — covering response parity with the in-process facade,
SSE streaming, cancellation (explicit and via client disconnect), the
structured error surface, tenant backpressure over the wire, stats, and
graceful shutdown with drain invariants.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Client
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import TenantSpec
from repro.server import AlayaDBServer, ServerClient, check_drained


def _service(tmp_path, **config_kwargs) -> InferenceService:
    model = TransformerModel(ModelConfig.tiny())
    config = AlayaDBConfig(http_port=0, **config_kwargs)
    return InferenceService(model, config, storage_dir=tmp_path)


def run(coro):
    """Each test runs in a fresh event loop (servers never leak across tests)."""
    return asyncio.run(coro)


async def _serving(service):
    server = AlayaDBServer(service)
    await server.start()
    return server, ServerClient(*server.address)


class TestCompletions:
    def test_non_streaming_matches_in_process_facade(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            # the greedy sampler + fixed per-request seed make token streams a
            # pure function of the prompt, so the wire must match in-process
            expected = Client(_service(tmp_path / "ref")).completions.create(
                "the quick brown fox", max_new_tokens=6
            )
            server, client = await _serving(service)
            response = await client.completion(prompt="the quick brown fox", max_new_tokens=6)
            assert response.status == 200
            payload = response.json()
            assert payload["token_ids"] == expected.choices[0].token_ids
            assert payload["text"] == expected.text
            assert payload["finish_reason"] == expected.choices[0].finish_reason
            assert payload["usage"]["prompt_tokens"] == expected.usage.prompt_tokens
            assert payload["usage"]["completion_tokens"] == expected.usage.completion_tokens
            assert payload["usage"]["reused_tokens"] == expected.usage.reused_tokens
            await server.shutdown()

        run(scenario())

    def test_streaming_tokens_match_non_streaming(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            flat = await client.completion(prompt="stream me", max_new_tokens=5)
            stream, events = await client.collect_stream(prompt="stream me", max_new_tokens=5)
            assert stream.status == 200
            assert stream.done
            chunks = [e for e in events if "token_id" in e]
            final = events[-1]
            assert [c["token_id"] for c in chunks] == flat.json()["token_ids"]
            assert [c["index"] for c in chunks] == list(range(len(chunks)))
            assert final["done"] is True
            assert final["finish_reason"] == flat.json()["finish_reason"]
            assert final["usage"] == flat.json()["usage"]
            await server.shutdown()

        run(scenario())

    def test_concurrent_streams_interleave_one_pump(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            prompts = [f"prompt number {i}" for i in range(6)]
            results = await asyncio.gather(
                *(client.collect_stream(prompt=p, max_new_tokens=4) for p in prompts)
            )
            for _, events in results:
                chunks = [e for e in events if "token_id" in e]
                assert len(chunks) == 4
                assert events[-1]["done"] is True
            # all streams shared the server's single pump: batched decodes ran
            assert server.service.scheduler.stats.batched_decode_calls > 0
            await server.shutdown()

        run(scenario())

    def test_token_id_prompt_and_store_context(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            response = await client.completion(
                prompt=[5, 6, 7, 8], max_new_tokens=3, store_context_id="ctx-a"
            )
            assert response.status == 200
            assert "ctx-a" in server.service.db.store_registry
            await server.shutdown()

        run(scenario())


class TestCancellation:
    def test_delete_cancels_a_running_stream(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            stream = await client.stream_completion(prompt="long one", max_new_tokens=5000)
            request_id = stream.request_id
            assert request_id is not None
            events = []
            async for event in stream.events():
                events.append(event)
                if len(events) == 2:
                    response = await client.cancel(request_id)
                    assert response.json() == {"request_id": request_id, "cancelled": True}
            final = events[-1]
            assert final["status"] == "cancelled"
            assert final["finish_reason"] == "cancelled"
            await stream.close()
            # idempotent second cancel
            assert (await client.cancel(request_id)).json()["cancelled"] is False
            await server.shutdown()
            assert server.service.stats.cancelled == 1

        run(scenario())

    def test_client_disconnect_cancels_and_frees_resources(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            stream = await client.stream_completion(prompt="goodbye cruel world", max_new_tokens=5000)
            async for _event in stream.events():
                stream.abort()  # drop TCP mid-stream: the disconnect path
                break
            # let the server observe the EOF and cancel
            for _ in range(200):
                if server.stats.disconnect_cancels:
                    break
                await asyncio.sleep(0.005)
            assert server.stats.disconnect_cancels == 1
            assert server.service.stats.cancelled == 1
            await server.shutdown()  # asserts zero pins / zero reservations

        run(scenario())

    def test_disconnect_before_first_token_cancels_nonstreaming(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            reader, writer = await asyncio.open_connection(*server.address)
            body = b'{"prompt": "never read", "max_new_tokens": 5000}'
            writer.write(
                b"POST /v1/completions HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            writer.transport.abort()
            for _ in range(200):
                if server.service.stats.cancelled:
                    break
                await asyncio.sleep(0.005)
            assert server.service.stats.cancelled == 1
            await server.shutdown()

        run(scenario())


class TestErrorSurface:
    def test_malformed_and_invalid_bodies(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            cases = [
                ({"prompt": 7}, 400, "invalid_request"),
                ({"prompt": "x", "max_new_tokens": "five"}, 400, "invalid_request"),
                ({"prompt": "x", "stream": "yes"}, 400, "invalid_request"),
                ({"prompt": "x", "surprise": 1}, 400, "unknown_field"),
                ({"prompt": "x", "tenant": 9}, 400, "invalid_request"),
                ({"prompt": "x", "slo": {"bogus": 1}}, 400, "invalid_request"),
                ({"prompt": ""}, 400, "invalid_request"),
            ]
            for payload, status, code in cases:
                response = await client.request("POST", "/v1/completions", payload)
                assert response.status == status, payload
                assert response.json()["error"]["code"] == code, payload

            # non-JSON body
            raw = await client.request("POST", "/v1/completions", None)
            assert raw.status in (400, 411)
            await server.shutdown()

        run(scenario())

    def test_oversized_body_is_413(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, http_max_body_bytes=256)
            server, client = await _serving(service)
            response = await client.completion(prompt="y" * 1000, max_new_tokens=1)
            assert response.status == 413
            assert response.json()["error"]["code"] == "body_too_large"
            await server.shutdown()

        run(scenario())

    def test_unknown_route_and_method(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            assert (await client.request("GET", "/nope")).status == 404
            assert (await client.request("GET", "/v1/completions", None)).status == 405
            assert (await client.request("POST", "/v1/stats", {})).status == 405
            bad_id = await client.request("DELETE", "/v1/requests/seven")
            assert bad_id.status == 400
            assert bad_id.json()["error"]["code"] == "invalid_request_id"
            await server.shutdown()

        run(scenario())

    def test_unknown_tenant_is_400(self, tmp_path):
        async def scenario():
            service = _service(
                tmp_path, strict_tenants=True, tenants=(TenantSpec(name="known"),)
            )
            server, client = await _serving(service)
            ok = await client.completion(prompt="hi", max_new_tokens=1, tenant="known")
            assert ok.status == 200
            bad = await client.completion(prompt="hi", max_new_tokens=1, tenant="spoof")
            assert bad.status == 400
            assert bad.json()["error"]["code"] == "unknown_tenant"
            await server.shutdown()

        run(scenario())

    def test_backpressure_is_429_with_retry_headers(self, tmp_path):
        async def scenario():
            service = _service(
                tmp_path,
                tenants=(TenantSpec(name="busy", max_queued=1),),
                max_inflight_requests=1,
            )
            server, client = await _serving(service)
            # a long-running stream keeps the queue occupied...
            stream = await client.stream_completion(
                prompt="occupy the only slot", max_new_tokens=5000, tenant="busy"
            )
            # ...plus one queued request fills the tenant's max_queued=1
            second = asyncio.create_task(
                client.completion(prompt="queued", max_new_tokens=5000, tenant="busy")
            )
            throttled = None
            for _ in range(100):
                response = await client.completion(
                    prompt="one too many", max_new_tokens=1, tenant="busy"
                )
                if response.status == 429:
                    throttled = response
                    break
                await asyncio.sleep(0.01)
            assert throttled is not None, "backpressure never engaged"
            assert throttled.json()["error"]["code"] == "tenant_throttled"
            assert int(throttled.headers["retry-after"]) >= 1
            assert int(throttled.headers["x-queue-position"]) == 2
            assert throttled.headers["x-tenant"] == "busy"
            assert server.stats.throttled >= 1
            stream.abort()
            second.cancel()
            try:
                await second
            except asyncio.CancelledError:
                pass
            await server.shutdown(drain=False)

        run(scenario())


class TestStatsAndLifecycle:
    def test_stats_endpoint_reports_tenants_and_counters(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, tenant_fairness=True)
            server, client = await _serving(service)
            await client.completion(prompt="alpha speaks", max_new_tokens=2, tenant="alpha")
            stats = await client.stats()
            assert stats["state"] == "serving"
            assert stats["server"]["completions"] == 1
            assert stats["scheduler"]["completed"] == 1
            rows = stats["memory"]["tenants"]
            assert rows["alpha"]["completed"] == 1
            assert rows["alpha"]["tokens_served"] == 2
            health = await client.health()
            assert health == {"status": "serving"}
            await server.shutdown()

        run(scenario())

    def test_drain_shutdown_finishes_inflight_work(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            collector = asyncio.create_task(
                client.collect_stream(prompt="finish me", max_new_tokens=8)
            )
            while not server.service.scheduler.has_work:
                await asyncio.sleep(0.001)
            await server.shutdown(drain=True)
            stream, events = await collector
            assert stream.done  # the stream completed in full during drain
            assert sum("token_id" in e for e in events) == 8
            assert server.state == "stopped"
            # the listener is closed: a post-drain connection is refused
            with pytest.raises(OSError):
                await client.completion(prompt="too late", max_new_tokens=1)

        run(scenario())

    def test_cancel_shutdown_aborts_inflight_work(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            collector = asyncio.create_task(
                client.collect_stream(prompt="abort me", max_new_tokens=5000)
            )
            while not server.service.scheduler.has_work:
                await asyncio.sleep(0.001)
            await server.shutdown(drain=False)
            stream, events = await collector
            assert events[-1].get("finish_reason") == "cancelled"
            assert server.service.stats.cancelled == 1
            check_drained(server.service)  # explicit: invariants hold post-cancel

        run(scenario())

    def test_draining_rejects_new_completions_with_503(self, tmp_path):
        async def scenario():
            server, client = await _serving(_service(tmp_path))
            server.state = "draining"  # simulate the drain window
            refused = await client.completion(prompt="no", max_new_tokens=1)
            assert refused.status == 503
            assert refused.json()["error"]["code"] == "draining"
            # stats stays available during the drain window
            assert (await client.health())["status"] == "draining"
            server.state = "serving"
            await server.shutdown()

        run(scenario())
