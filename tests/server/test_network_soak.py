"""Network soak: hundreds of concurrent mixed-tenant streams over real TCP.

The HTTP counterpart of ``tests/integration/test_soak.py``: one server, one
event loop, and three phases —

1. **parity at scale**: 220 concurrent SSE streams across three tenants;
   every stream's token sequence must be byte-identical to what the
   in-process ``repro.api`` facade produces for the same prompt (greedy
   sampling + fixed per-request seeds make the stream a pure function of the
   prompt, whatever the network interleaving did to scheduling order);
2. **disconnect storm**: dozens of clients drop their connections mid-stream
   (TCP aborts, not clean closes) while others cancel via DELETE;
3. **drain**: a graceful shutdown must settle with zero pinned contexts,
   zero admission reservations, and no request in a non-terminal state —
   the same invariants the in-process soak asserts, re-checked here through
   :func:`repro.server.check_drained`.

Marked ``slow`` (out of tier-1) and ``server`` (the CI server job runs it).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Client
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import TenantSpec
from repro.server import AlayaDBServer, ServerClient, check_drained

pytestmark = [pytest.mark.slow, pytest.mark.server]

NUM_STREAMS = 220
STORM_STREAMS = 40
DELETE_CANCELS = 10
MAX_NEW_TOKENS = 6

PROMPTS = [
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
    "sphinx of black quartz judge my vow",
    "how vexingly quick daft zebras jump",
    "a stitch in time saves nine",
    "all that glitters is not gold",
    "actions speak louder than words",
    "the early bird catches the worm",
    "practice makes perfect they say",
    "rome was not built in a day",
    "fortune favours the bold ones",
    "curiosity killed the cat maybe",
]
TENANTS = ["gold", "bronze", "default"]


def _config(**kwargs) -> AlayaDBConfig:
    return AlayaDBConfig(
        http_port=0,
        tenants=(TenantSpec(name="gold", weight=3), TenantSpec(name="bronze", weight=1)),
        **kwargs,
    )


def _service(tmp_path, **kwargs) -> InferenceService:
    model = TransformerModel(ModelConfig.tiny())
    return InferenceService(model, _config(**kwargs), storage_dir=tmp_path)


def _expected_streams(tmp_path) -> dict[str, list[int]]:
    """The in-process facade's token stream per prompt (the parity oracle)."""
    client = Client(_service(tmp_path))
    expected = {}
    for prompt in PROMPTS:
        chunks = client.completions.create(
            prompt, max_new_tokens=MAX_NEW_TOKENS, stream=True
        )
        expected[prompt] = [chunk.token_id for chunk in chunks]
    return expected


def test_network_soak(tmp_path):
    expected = _expected_streams(tmp_path / "oracle")

    async def scenario():
        service = _service(tmp_path / "serving")
        server = AlayaDBServer(service)
        await server.start()
        client = ServerClient(*server.address)

        # -- phase 1: 220 concurrent mixed-tenant streams, byte-identical --
        async def one_stream(index: int):
            prompt = PROMPTS[index % len(PROMPTS)]
            tenant = TENANTS[index % len(TENANTS)]
            stream, events = await client.collect_stream(
                prompt=prompt, max_new_tokens=MAX_NEW_TOKENS, tenant=tenant
            )
            assert stream.status == 200, events
            return prompt, stream, events

        results = await asyncio.gather(*(one_stream(i) for i in range(NUM_STREAMS)))
        for prompt, stream, events in results:
            assert stream.done, "stream ended without [DONE]"
            tokens = [e["token_id"] for e in events if "token_id" in e]
            assert tokens == expected[prompt], (
                f"stream for {prompt!r} diverged from the in-process facade"
            )
            final = events[-1]
            assert final["done"] is True
            assert final["usage"]["completion_tokens"] == len(tokens)
        assert server.stats.streams_completed == NUM_STREAMS

        # every tenant was actually served and accounted
        rows = service.memory_report()["tenants"]
        for tenant in TENANTS:
            assert rows[tenant]["completed"] > 0
            assert rows[tenant]["tokens_served"] > 0

        # -- phase 2: disconnect storm + explicit DELETE cancels ----------
        async def storm_stream(index: int):
            stream = await client.stream_completion(
                prompt=f"storm {index} " + PROMPTS[index % len(PROMPTS)],
                max_new_tokens=5000,
                tenant=TENANTS[index % len(TENANTS)],
            )
            if index < DELETE_CANCELS:
                # explicit cancel over the API, then read the stream out
                async for event in stream.events():
                    if "token_id" in event:
                        await client.cancel(stream.request_id)
                await stream.close()
                return "delete"
            async for _event in stream.events():
                stream.abort()  # hard TCP drop mid-stream
                return "abort"
            return "finished-early"

        outcomes = await asyncio.gather(*(storm_stream(i) for i in range(STORM_STREAMS)))
        assert outcomes.count("abort") == STORM_STREAMS - DELETE_CANCELS
        assert outcomes.count("delete") == DELETE_CANCELS

        # -- phase 3: drain and verify the invariants ---------------------
        await server.shutdown(drain=True)  # runs check_drained internally
        check_drained(service)

        scheduler = service.scheduler
        assert not scheduler.has_work
        assert scheduler.admission.committed_bytes == 0
        assert service.db.store_registry.num_pinned == 0
        assert service._live == {}
        # every storm request reached a terminal state, none leaked
        assert service.stats.cancelled == STORM_STREAMS
        assert server.stats.disconnect_cancels == STORM_STREAMS - DELETE_CANCELS
        assert scheduler.stats.completed == NUM_STREAMS
        assert server.state == "stopped"

    asyncio.run(scenario())


def test_network_soak_under_memory_pressure(tmp_path):
    """A small admission budget adds deferrals to the mix; streams must still
    match the oracle and the drain must still be clean."""
    expected = _expected_streams(tmp_path / "oracle")

    async def scenario():
        service = _service(
            tmp_path / "serving",
            scheduler_gpu_budget_bytes=400_000,
            max_inflight_requests=4,
        )
        server = AlayaDBServer(service)
        await server.start()
        client = ServerClient(*server.address)

        async def one_stream(index: int):
            prompt = PROMPTS[index % len(PROMPTS)]
            stream, events = await client.collect_stream(
                prompt=prompt, max_new_tokens=MAX_NEW_TOKENS,
                tenant=TENANTS[index % len(TENANTS)],
            )
            return prompt, stream, events

        results = await asyncio.gather(*(one_stream(i) for i in range(80)))
        served = 0
        for prompt, stream, events in results:
            if stream.status != 200:
                continue  # a rejection is allowed under pressure; a wrong stream is not
            tokens = [e["token_id"] for e in events if "token_id" in e]
            if events and events[-1].get("finish_reason") == "rejected":
                continue
            assert tokens == expected[prompt]
            served += 1
        assert served > 0
        await server.shutdown(drain=True)
        check_drained(service)

    asyncio.run(scenario())
