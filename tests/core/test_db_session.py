"""Tests of the DB / Session user interface (Table 2 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.db import DB
from repro.core.session import Session
from repro.errors import SessionClosedError
from repro.kvcache.cache import DynamicCache
from repro.llm.generation import GenerationLoop
from repro.llm.model import ModelConfig, TransformerModel


@pytest.fixture(scope="module")
def served_db():
    """A DB with one long imported context and the model that produced it."""
    model = TransformerModel(ModelConfig.tiny())
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=32,
        gpu_memory_budget_bytes=1,  # force the DIPR path
        topk_k=16,
    )
    db = DB(config)
    document = "Database systems manage data efficiently. " * 25
    context = db.prefill_and_import(model, document)
    return model, db, document, context


class TestDBImport:
    def test_import_builds_indexes(self, served_db):
        _, db, _, context = served_db
        assert context.num_tokens > 800
        assert set(context.fine_indexes) == {0, 1}
        assert set(context.coarse_indexes) == {0, 1}
        assert context.query_samples

    def test_import_from_dynamic_cache(self, served_db):
        model, db, _, _ = served_db
        cache = DynamicCache()
        tokens = db._tokenize("short context for import")
        model.prefill(np.asarray(tokens), cache)
        context = db.import_context(tokens, cache, build_fine_indexes=False)
        assert context.num_tokens == len(tokens)
        assert not context.has_fine_indexes

    def test_num_contexts(self, served_db):
        _, db, _, _ = served_db
        assert db.num_contexts >= 1


class TestCreateSession:
    def test_full_prefix_reuse(self, served_db):
        _, db, document, context = served_db
        prompt = document + "What is a database?"
        session, truncated = db.create_session(prompt)
        assert session.is_connected
        assert session.reused_prefix_length == context.num_tokens
        assert len(truncated) == len(db._tokenize(prompt)) - context.num_tokens

    def test_no_reuse_for_unrelated_prompt(self, served_db):
        _, db, _, _ = served_db
        session, truncated = db.create_session("zzz completely unrelated prompt")
        assert not session.is_connected
        assert len(truncated) > 0

    def test_partial_prefix_reuse_adds_filter(self, served_db):
        _, db, document, context = served_db
        # a prompt sharing only the first half of the stored context
        tokens = context.tokens[: context.num_tokens // 2] + [300, 301, 302]
        tokens = [t if t < 259 else 1 for t in tokens]
        session, truncated = db.create_session(tokens)
        if session.is_connected:
            assert 0 < session.reused_prefix_length < context.num_tokens
            session._dims = None  # plans are computed lazily from dims; set below
            # register dims by pushing a dummy update
            rng = np.random.default_rng(0)
            q = rng.normal(size=(4, 1, 8)).astype(np.float32)
            k = rng.normal(size=(2, 1, 8)).astype(np.float32)
            session.update_query(q, k, k, layer=0)
            plan = session.plan_for_layer(1)
            assert plan.predicate is not None


class TestSessionGeneration:
    def test_sparse_generation_first_token_matches_full(self, served_db):
        model, db, document, _ = served_db
        prompt = document + "What is stored?"
        loop = GenerationLoop(model)

        session, truncated = db.create_session(prompt)
        sparse = loop.run_tokens(truncated, cache=session, max_new_tokens=2)

        full = loop.run_tokens(db._tokenize(prompt), cache=DynamicCache(), max_new_tokens=2)
        assert sparse.generated_tokens[0] == full.generated_tokens[0]

    def test_decode_uses_sparse_plan_and_tracks_stats(self, served_db):
        model, db, document, context = served_db
        session, truncated = db.create_session(document + " tail")
        loop = GenerationLoop(model)
        loop.run_tokens(truncated, cache=session, max_new_tokens=3)
        assert session.num_decode_steps >= 1
        assert session.last_decode_stats.num_heads > 0
        assert session.last_decode_stats.num_window_tokens > 0
        # sparse decode never touches all stored tokens per head
        assert session.last_decode_stats.mean_selected_per_head < context.num_tokens

    def test_gpu_memory_accounting(self, served_db):
        model, db, document, context = served_db
        session, truncated = db.create_session(document + " q")
        loop = GenerationLoop(model)
        loop.run_tokens(truncated, cache=session, max_new_tokens=2)
        gpu_bytes = session.gpu_memory_bytes()
        assert 0 < gpu_bytes < context.kv_bytes

    def test_sequence_length_accumulates(self, served_db):
        model, db, document, context = served_db
        session, truncated = db.create_session(document + " xy")
        loop = GenerationLoop(model)
        result = loop.run_tokens(truncated, cache=session, max_new_tokens=3)
        expected = context.num_tokens + len(truncated) + result.num_generated - 1
        assert session.sequence_length(0) == expected


class TestSessionLifecycle:
    def test_closed_session_rejects_updates(self):
        session = Session()
        session.close()
        with pytest.raises(SessionClosedError):
            session.update_query(
                np.zeros((2, 1, 4), dtype=np.float32),
                np.zeros((1, 1, 4), dtype=np.float32),
                np.zeros((1, 1, 4), dtype=np.float32),
                layer=0,
            )

    def test_unconnected_session_runs_full_attention(self):
        session = Session(AlayaDBConfig(short_context_threshold=4))
        rng = np.random.default_rng(0)
        q = rng.normal(size=(2, 3, 4)).astype(np.float32)
        k = rng.normal(size=(1, 3, 4)).astype(np.float32)
        v = rng.normal(size=(1, 3, 4)).astype(np.float32)
        session.update_query(q, k, v, layer=0)
        out = session.attention(q, layer=0)
        assert out.shape == (2, 3, 4)

    def test_dynamic_cache_compatible_update(self):
        session = Session()
        rng = np.random.default_rng(1)
        k = rng.normal(size=(2, 4, 8)).astype(np.float32)
        v = rng.normal(size=(2, 4, 8)).astype(np.float32)
        keys, values = session.update(k, v, layer=0)
        assert keys.shape == (2, 4, 8)
        keys, values = session.update(k, v, layer=0)
        assert keys.shape == (2, 8, 8)


class TestDBStore:
    def test_store_materialises_session(self, served_db):
        model, db, document, context = served_db
        prompt = document + "Explain."
        session, truncated = db.create_session(prompt)
        loop = GenerationLoop(model)
        result = loop.run_tokens(truncated, cache=session, max_new_tokens=2)
        full_tokens = db._tokenize(prompt) + result.generated_tokens[:-0 or None]
        stored = db.store(session, tokens=None, context_id="stored-session")
        assert stored.num_tokens == session.sequence_length(0)
        assert stored.has_fine_indexes
        assert "stored-session" in db.store_registry

    def test_stored_context_is_reusable(self, served_db):
        model, db, document, _ = served_db
        stored = db.get_context("stored-session")
        session, truncated = db.create_session(stored.tokens)
        assert session.is_connected
        assert session.reused_prefix_length == stored.num_tokens
        assert truncated == []
