"""Property-based tests of session-level invariants.

These exercise the decoupled attention path with randomly shaped inputs and
check the invariants that the data-centric engine and the session bookkeeping
must preserve regardless of configuration: sparse outputs are convex
combinations of values, sequence lengths are additive, and the prefix-reuse
accounting never loses tokens.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attention_engine import DataCentricAttentionEngine
from repro.core.config import AlayaDBConfig
from repro.core.context_store import ContextStore, StoredContext
from repro.core.session import Session
from repro.kvcache.serialization import KVSnapshot
from repro.llm.attention import decode_attention


@settings(deadline=None, max_examples=25)
@given(
    num_tokens=st.integers(min_value=1, max_value=64),
    num_window=st.integers(min_value=0, max_value=16),
    num_retrieved=st.integers(min_value=0, max_value=32),
    seed=st.integers(min_value=0, max_value=500),
)
def test_head_output_is_exact_over_attended_union(num_tokens, num_window, num_retrieved, seed):
    """Merging partials over any window/retrieved split equals one softmax."""
    rng = np.random.default_rng(seed)
    dim = 8
    keys = rng.normal(size=(num_tokens, dim)).astype(np.float32)
    values = rng.normal(size=(num_tokens, dim)).astype(np.float32)
    query = rng.normal(size=dim).astype(np.float32)
    window = rng.choice(num_tokens, size=min(num_window, num_tokens), replace=False)
    retrieved = rng.choice(num_tokens, size=min(num_retrieved, num_tokens), replace=False)
    engine = DataCentricAttentionEngine()
    output, _ = engine.head_output(query, keys, values, window, retrieved)
    attended = np.union1d(window, retrieved).astype(np.int64)
    if attended.size == 0:
        assert np.allclose(output, 0.0)
        return
    expected = decode_attention(query[None, :], keys[None, attended], values[None, attended])[0]
    np.testing.assert_allclose(output, expected, atol=1e-4)


@settings(deadline=None, max_examples=20)
@given(
    prefix=st.integers(min_value=0, max_value=40),
    appended=st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_sequence_length_is_additive(prefix, appended, seed):
    """sequence_length == reused prefix + locally appended tokens."""
    rng = np.random.default_rng(seed)
    context = None
    if prefix > 0:
        keys = {0: rng.normal(size=(1, prefix, 4)).astype(np.float32)}
        values = {0: rng.normal(size=(1, prefix, 4)).astype(np.float32)}
        snapshot = KVSnapshot(tokens=list(range(prefix)), keys=keys, values=values)
        context = StoredContext(context_id="p", snapshot=snapshot)
    session = Session(AlayaDBConfig(), context=context, reused_prefix_length=prefix, num_layers=1)
    total_appended = 0
    for chunk in appended:
        q = rng.normal(size=(2, chunk, 4)).astype(np.float32)
        k = rng.normal(size=(1, chunk, 4)).astype(np.float32)
        v = rng.normal(size=(1, chunk, 4)).astype(np.float32)
        session.update_query(q, k, v, layer=0)
        total_appended += chunk
    assert session.sequence_length(0) == prefix + total_appended


@settings(deadline=None, max_examples=20)
@given(
    shared=st.integers(min_value=0, max_value=30),
    extra_a=st.integers(min_value=1, max_value=20),
    extra_b=st.integers(min_value=1, max_value=20),
)
def test_prefix_matching_is_exactly_the_common_prefix(shared, extra_a, extra_b):
    """The context store finds exactly the shared prefix, never more."""
    store = ContextStore()
    stored_tokens = list(range(shared)) + [1000 + i for i in range(extra_a)]
    keys = {0: np.zeros((1, len(stored_tokens), 4), dtype=np.float32)}
    values = {0: np.zeros((1, len(stored_tokens), 4), dtype=np.float32)}
    store.add(StoredContext("ctx", KVSnapshot(tokens=stored_tokens, keys=keys, values=values)))
    probe = list(range(shared)) + [2000 + i for i in range(extra_b)]
    match = store.find_longest_prefix(probe)
    if shared == 0:
        assert match.prefix_length == 0
    else:
        assert match.prefix_length == shared
