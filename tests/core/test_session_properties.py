"""Property-based tests of session-level invariants.

These exercise the decoupled attention path with randomly shaped inputs and
check the invariants that the data-centric engine and the session bookkeeping
must preserve regardless of configuration: sparse outputs are convex
combinations of values, sequence lengths are additive, and the prefix-reuse
accounting never loses tokens.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attention_engine import DataCentricAttentionEngine
from repro.core.config import AlayaDBConfig
from repro.core.context_store import ContextStore, StoredContext
from repro.core.session import Session
from repro.index.builder import LayerIndexes
from repro.index.coarse import CoarseBlockIndex
from repro.index.roargraph import RoarGraphIndex
from repro.kvcache.serialization import KVSnapshot
from repro.llm.attention import decode_attention


@settings(deadline=None, max_examples=25)
@given(
    num_tokens=st.integers(min_value=1, max_value=64),
    num_window=st.integers(min_value=0, max_value=16),
    num_retrieved=st.integers(min_value=0, max_value=32),
    seed=st.integers(min_value=0, max_value=500),
)
def test_head_output_is_exact_over_attended_union(num_tokens, num_window, num_retrieved, seed):
    """Merging partials over any window/retrieved split equals one softmax."""
    rng = np.random.default_rng(seed)
    dim = 8
    keys = rng.normal(size=(num_tokens, dim)).astype(np.float32)
    values = rng.normal(size=(num_tokens, dim)).astype(np.float32)
    query = rng.normal(size=dim).astype(np.float32)
    window = rng.choice(num_tokens, size=min(num_window, num_tokens), replace=False)
    retrieved = rng.choice(num_tokens, size=min(num_retrieved, num_tokens), replace=False)
    engine = DataCentricAttentionEngine()
    output, _ = engine.head_output(query, keys, values, window, retrieved)
    attended = np.union1d(window, retrieved).astype(np.int64)
    if attended.size == 0:
        assert np.allclose(output, 0.0)
        return
    expected = decode_attention(query[None, :], keys[None, attended], values[None, attended])[0]
    np.testing.assert_allclose(output, expected, atol=1e-4)


@settings(deadline=None, max_examples=25)
@given(
    num_tokens=st.integers(min_value=4, max_value=48),
    num_kv_heads=st.sampled_from([1, 2]),
    group_size=st.sampled_from([1, 2, 4]),
    num_window=st.integers(min_value=0, max_value=12),
    num_local=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
def test_layer_output_matches_per_head_output(num_tokens, num_kv_heads, group_size, num_window, num_local, seed):
    """The batched layer merge equals head_output head by head, ragged sets included."""
    rng = np.random.default_rng(seed)
    dim = 8
    num_heads = num_kv_heads * group_size
    keys = rng.normal(size=(num_kv_heads, num_tokens, dim)).astype(np.float32)
    values = rng.normal(size=(num_kv_heads, num_tokens, dim)).astype(np.float32)
    queries = rng.normal(size=(num_heads, dim)).astype(np.float32)
    window = rng.choice(num_tokens, size=min(num_window, num_tokens), replace=False).astype(np.int64)
    retrieved = [
        rng.choice(num_tokens, size=rng.integers(0, num_tokens + 1), replace=False).astype(np.int64)
        for _ in range(num_heads)
    ]
    local_keys = local_values = None
    if num_local:
        local_keys = rng.normal(size=(num_kv_heads, num_local, dim)).astype(np.float32)
        local_values = rng.normal(size=(num_kv_heads, num_local, dim)).astype(np.float32)

    engine = DataCentricAttentionEngine()
    batched, breakdowns = engine.layer_output(
        queries, keys, values, window, retrieved, local_keys=local_keys, local_values=local_values
    )
    for head in range(num_heads):
        kv_head = head // group_size
        expected, expected_breakdown = engine.head_output(
            queries[head],
            keys[kv_head],
            values[kv_head],
            window_positions=window,
            retrieved_positions=retrieved[head],
            local_keys=local_keys[kv_head] if local_keys is not None else None,
            local_values=local_values[kv_head] if local_values is not None else None,
        )
        np.testing.assert_allclose(batched[head], expected, atol=1e-4)
        assert breakdowns[head].num_window_tokens == expected_breakdown.num_window_tokens
        assert breakdowns[head].num_retrieved_tokens == expected_breakdown.num_retrieved_tokens
        assert breakdowns[head].num_local_tokens == expected_breakdown.num_local_tokens


def _sparse_context(rng, *, num_kv_heads, num_tokens, head_dim, group_size, kinds=("fine", "coarse")):
    """A stored context with fine + coarse indexes over random keys."""
    keys = rng.normal(size=(num_kv_heads, num_tokens, head_dim)).astype(np.float32)
    values = rng.normal(size=(num_kv_heads, num_tokens, head_dim)).astype(np.float32)
    snapshot = KVSnapshot(tokens=list(range(num_tokens)), keys={0: keys}, values={0: values})
    context = StoredContext(context_id="sparse", snapshot=snapshot)
    if "fine" in kinds:
        indexes = []
        for kv_head in range(num_kv_heads):
            index = RoarGraphIndex()
            index.build(
                keys[kv_head],
                query_sample=rng.normal(size=(64, head_dim)).astype(np.float32),
            )
            indexes.append(index)
        context.fine_indexes[0] = LayerIndexes(
            layer=0, indexes=indexes, shared=True, gqa_group_size=group_size
        )
    if "coarse" in kinds:
        coarse = []
        for kv_head in range(num_kv_heads):
            index = CoarseBlockIndex(block_size=16)
            index.build(keys[kv_head])
            coarse.append(index)
        context.coarse_indexes[0] = coarse
    return context


_PLAN_CONFIGS = {
    # layer 0 is in flat_index_layers by default -> DIPR over the flat index
    "flat": dict(gpu_memory_budget_bytes=1),
    # empty flat_index_layers -> DIPR over the fine (RoarGraph) index
    "fine": dict(gpu_memory_budget_bytes=1, flat_index_layers=()),
    # huge budget -> top-k over the coarse block index
    "coarse": dict(gpu_memory_budget_bytes=10**18, topk_k=24, coarse_num_blocks=3),
    # threshold above any test context -> exact full attention (sanity row)
    "full": dict(short_context_threshold=100_000),
}

_VARIANTS = {
    "plain": dict(),
    "gqa4": dict(group_size=4),
    "empty-window": dict(window=(0, 0)),
    "no-local": dict(local_steps=0),
    "partial-reuse": dict(reuse_offset=40),
}


@pytest.mark.parametrize("variant", sorted(_VARIANTS))
@pytest.mark.parametrize("plan_kind", sorted(_PLAN_CONFIGS))
def test_head_batched_decode_matches_per_head_path(plan_kind, variant):
    """sparse_head_batching=True must be output- and stats-identical to the fallback."""
    options = _VARIANTS[variant]
    group_size = options.get("group_size", 2)
    window_initial, window_last = options.get("window", (4, 8))
    local_steps = options.get("local_steps", 2)
    reuse_offset = options.get("reuse_offset", 0)
    num_kv_heads, head_dim, num_tokens = 2, 8, 160
    num_heads = num_kv_heads * group_size

    config_kwargs = dict(
        window_initial_tokens=window_initial,
        window_last_tokens=window_last,
        short_context_threshold=16,
        dipr_capacity_threshold=32,
    )
    config_kwargs.update(_PLAN_CONFIGS[plan_kind])
    config = AlayaDBConfig(**config_kwargs)
    # stable per-combo seed (builtin hash() is randomized per process)
    rng = np.random.default_rng(sum(ord(c) * i for i, c in enumerate(plan_kind + "/" + variant, start=1)))
    context = _sparse_context(
        rng,
        num_kv_heads=num_kv_heads,
        num_tokens=num_tokens,
        head_dim=head_dim,
        group_size=group_size,
    )

    def run(batched: bool):
        # fine_frontier_batching off: this test pins the head-batching
        # refactor against the per-head walk bit for bit; the group-frontier
        # walk (which shares distance computations across the GQA group by
        # design) is covered by tests/query/test_group_frontier.py
        session = Session(
            replace(config, sparse_head_batching=batched, fine_frontier_batching=False),
            context=context,
            reused_prefix_length=num_tokens - reuse_offset,
            num_layers=1,
        )
        step_rng = np.random.default_rng(9000)
        outputs = []
        for _ in range(local_steps + 1):
            q = step_rng.normal(size=(num_heads, 1, head_dim)).astype(np.float32)
            k = step_rng.normal(size=(num_kv_heads, 1, head_dim)).astype(np.float32)
            v = step_rng.normal(size=(num_kv_heads, 1, head_dim)).astype(np.float32)
            session.update_query(q, k, v, layer=0)
            outputs.append(session.attention(q, layer=0))
        return outputs, session.last_decode_stats, session.plan_for_layer(0)

    batched_outputs, batched_stats, plan = run(batched=True)
    per_head_outputs, per_head_stats, fallback_plan = run(batched=False)

    assert plan.query_kind == fallback_plan.query_kind
    if plan_kind != "full":
        assert not plan.is_full_attention
    for batched_output, per_head_output in zip(batched_outputs, per_head_outputs):
        np.testing.assert_allclose(batched_output, per_head_output, atol=1e-4)
    assert batched_stats.num_selected_tokens == per_head_stats.num_selected_tokens
    assert batched_stats.num_distance_computations == per_head_stats.num_distance_computations
    assert batched_stats.num_window_tokens == per_head_stats.num_window_tokens
    assert batched_stats.num_local_tokens == per_head_stats.num_local_tokens
    assert batched_stats.num_heads == per_head_stats.num_heads


@settings(deadline=None, max_examples=20)
@given(
    prefix=st.integers(min_value=0, max_value=40),
    appended=st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_sequence_length_is_additive(prefix, appended, seed):
    """sequence_length == reused prefix + locally appended tokens."""
    rng = np.random.default_rng(seed)
    context = None
    if prefix > 0:
        keys = {0: rng.normal(size=(1, prefix, 4)).astype(np.float32)}
        values = {0: rng.normal(size=(1, prefix, 4)).astype(np.float32)}
        snapshot = KVSnapshot(tokens=list(range(prefix)), keys=keys, values=values)
        context = StoredContext(context_id="p", snapshot=snapshot)
    session = Session(AlayaDBConfig(), context=context, reused_prefix_length=prefix, num_layers=1)
    total_appended = 0
    for chunk in appended:
        q = rng.normal(size=(2, chunk, 4)).astype(np.float32)
        k = rng.normal(size=(1, chunk, 4)).astype(np.float32)
        v = rng.normal(size=(1, chunk, 4)).astype(np.float32)
        session.update_query(q, k, v, layer=0)
        total_appended += chunk
    assert session.sequence_length(0) == prefix + total_appended


@settings(deadline=None, max_examples=20)
@given(
    shared=st.integers(min_value=0, max_value=30),
    extra_a=st.integers(min_value=1, max_value=20),
    extra_b=st.integers(min_value=1, max_value=20),
)
def test_prefix_matching_is_exactly_the_common_prefix(shared, extra_a, extra_b):
    """The context store finds exactly the shared prefix, never more."""
    store = ContextStore()
    stored_tokens = list(range(shared)) + [1000 + i for i in range(extra_a)]
    keys = {0: np.zeros((1, len(stored_tokens), 4), dtype=np.float32)}
    values = {0: np.zeros((1, len(stored_tokens), 4), dtype=np.float32)}
    store.add(StoredContext("ctx", KVSnapshot(tokens=stored_tokens, keys=keys, values=values)))
    probe = list(range(shared)) + [2000 + i for i in range(extra_b)]
    match = store.find_longest_prefix(probe)
    if shared == 0:
        assert match.prefix_length == 0
    else:
        assert match.prefix_length == shared
