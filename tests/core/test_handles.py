"""Tests of the client-facing serving API: RequestHandle streaming,
ChatSession cross-turn KV reuse, submit-time validation, and the
OpenAI-style repro.api facade."""

from __future__ import annotations

import pytest

from repro.api import Client, Completion, CompletionChunk, Completions
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import AdmissionRejectedError
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import RequestState

FULL_ATTENTION_CONFIG = dict(
    window_initial_tokens=8,
    window_last_tokens=16,
    short_context_threshold=1 << 20,  # decode via full attention: deterministic
)


def _service(seed=311, **overrides):
    model = TransformerModel(ModelConfig.tiny(seed=seed))
    return InferenceService(model, AlayaDBConfig(**{**FULL_ATTENTION_CONFIG, **overrides}))


class TestRequestHandle:
    def test_submit_returns_handle_with_lifecycle(self):
        service = _service()
        handle = service.submit("a short prompt", max_new_tokens=2)
        assert handle.status == RequestState.QUEUED
        assert not handle.is_done
        result, record = handle.result()
        assert handle.status == RequestState.FINISHED
        assert handle.is_done
        assert result.num_generated == 2
        assert record.request_id == handle.request_id

    def test_streaming_matches_result(self):
        service = _service()
        handle = service.submit("stream these tokens please " * 4, max_new_tokens=6)
        streamed = list(handle.tokens())
        result, _ = handle.result()
        assert streamed == result.generated_tokens
        assert len(streamed) == 6

    def test_streaming_after_finish_replays_full_sequence(self):
        service = _service()
        handle = service.submit("drain first, stream later", max_new_tokens=3)
        service.drain()
        assert handle.is_done
        assert list(handle.tokens()) == handle.result()[0].generated_tokens

    def test_iterating_the_handle_streams(self):
        service = _service()
        handle = service.submit("iterate me", max_new_tokens=2)
        assert list(handle) == handle.result()[0].generated_tokens

    def test_result_accepts_handle_in_service_lookup(self):
        service = _service()
        handle = service.submit("look me up", max_new_tokens=1)
        service.drain()
        assert service.result(handle) == service.result(handle.request_id)

    def test_rejected_handle_raises_on_result(self):
        service = _service(scheduler_gpu_budget_bytes=8)  # nothing fits
        handle = service.submit("far too large", max_new_tokens=2)
        with pytest.raises(AdmissionRejectedError):
            handle.result()
        assert handle.status == RequestState.REJECTED

    def test_concurrent_streams_interleave(self):
        """Two handles streamed alternately both see their full sequences."""
        service = _service(max_inflight_requests=2)
        a = service.submit("first of two concurrent streams", max_new_tokens=4)
        b = service.submit("second of two concurrent streams", max_new_tokens=4)
        seen_a = [t for t in a.tokens()]  # drives b's decode too
        seen_b = list(b.tokens())
        assert seen_a == a.result()[0].generated_tokens
        assert seen_b == b.result()[0].generated_tokens


class TestSubmitValidation:
    def test_empty_prompt_rejected_at_submit(self):
        service = _service()
        with pytest.raises(ValueError, match="empty"):
            service.submit("", max_new_tokens=2)

    def test_empty_token_list_rejected_at_submit(self):
        service = _service()
        with pytest.raises(ValueError, match="empty"):
            service.submit([], max_new_tokens=2)

    def test_non_positive_prefill_chunk_rejected_at_submit(self):
        service = _service()
        for bad in (0, -4):
            with pytest.raises(ValueError, match="prefill_chunk_tokens"):
                service.submit("a prompt", max_new_tokens=1, prefill_chunk_tokens=bad)

    def test_per_request_prefill_chunk_override_is_used(self):
        service = _service()
        handle = service.submit(
            "a prompt long enough to need several chunks " * 4,
            max_new_tokens=1,
            prefill_chunk_tokens=8,
        )
        result, _ = handle.result()
        assert result.num_generated == 1
        # 8-token chunks over a ~180-token prompt: many prefill rounds
        assert service.scheduler.stats.prefill_chunks > 5


class TestChatSession:
    def test_turns_extend_stored_context_and_reuse_kv(self):
        service = _service(seed=313)
        chat = service.chat(max_new_tokens=4)
        first = chat.ask("the shared document says: " + "alpha beta gamma. " * 12)
        assert first.reused_tokens == 0
        assert chat.context_id in service.db.store_registry
        stored_after_first = len(chat.transcript_tokens())
        second = chat.ask("what was the second word?")
        # turn 2 reused everything turn 1 stored (prompt + generated KV)
        assert second.reused_tokens == stored_after_first
        assert second.reuse_ratio > 0.9
        third = chat.ask("and the third?")
        assert third.reused_tokens > second.reused_tokens
        assert chat.num_turns == 3

    def test_chat_matches_full_transcript_resubmission(self):
        """Cross-turn reuse must not change the generated tokens."""
        model = TransformerModel(ModelConfig.tiny(seed=317))
        chat_service = InferenceService(model, AlayaDBConfig(**FULL_ATTENTION_CONFIG))
        fresh_service = InferenceService(model, AlayaDBConfig(**FULL_ATTENTION_CONFIG))
        chat = chat_service.chat(max_new_tokens=4)
        for prompt in ("a document: " + "one two three four. " * 10, "which words?", "why?"):
            turn = chat.ask(prompt)
            baseline, _ = fresh_service.serve(turn.prompt_tokens, max_new_tokens=4)
            assert turn.result.generated_tokens == baseline.generated_tokens
            assert baseline.prompt_tokens == turn.prompt_tokens  # nothing reused

    def test_send_streams_while_turn_runs(self):
        service = _service(seed=331)
        chat = service.chat(max_new_tokens=5)
        handle = chat.send("stream the first turn " * 3)
        streamed = list(handle.tokens())
        assert len(streamed) == 5
        # next turn folds the previous one into the transcript first
        second = chat.ask("a follow-up")
        assert second.reused_tokens > 0
        assert chat.turns[0].result.generated_tokens == streamed

    def test_cancelled_turn_leaves_transcript_intact(self):
        service = _service(seed=337)
        chat = service.chat(max_new_tokens=4)
        chat.ask("the opening turn establishes context " * 3)
        transcript = chat.transcript_tokens()
        handle = chat.send("this turn is abandoned", max_new_tokens=64)
        service.step()
        assert chat.cancel()
        assert handle.status == RequestState.CANCELLED
        # nothing was stored for the cancelled turn
        assert chat.transcript_tokens() == transcript
        follow_up = chat.ask("carry on from the first turn")
        assert follow_up.reused_tokens == len(transcript)
        assert chat.num_turns == 2  # the cancelled turn is not a turn

    def test_history_keeps_every_generated_token(self):
        """The final token of a turn has no KV (it was never fed back), but
        it must still appear in the next turn's prompt — dropping it would
        silently corrupt the conversation the model conditions on."""
        service = _service(seed=401)
        chat = service.chat(max_new_tokens=4)
        first = chat.ask("the opening prompt " * 8)
        follow_up_text = "a follow-up"
        second = chat.ask(follow_up_text)
        expected = (
            first.prompt_tokens
            + first.result.generated_tokens
            + service.db.tokenize(follow_up_text)
        )
        assert second.prompt_tokens == expected
        # the stored (KV-backed) transcript is exactly one token shorter per
        # turn than the logical one
        assert len(chat.full_transcript_tokens()) == len(chat.transcript_tokens()) + 1

    def test_chat_store_overwrite_preserves_other_sessions_pins(self, tmp_path):
        """A finishing turn overwrites the conversation context; sessions of
        other requests reading the same context keep their pins."""
        model = TransformerModel(ModelConfig.tiny(seed=409))
        service = InferenceService(
            model, AlayaDBConfig(**FULL_ATTENTION_CONFIG), storage_dir=tmp_path
        )
        chat = service.chat(max_new_tokens=3)
        chat.ask("a shared conversation context " * 8)
        context_id = chat.context_id
        reader_a, _ = service.db.create_session(chat.transcript_tokens())
        assert reader_a.is_connected
        chat.ask("next turn overwrites the stored context")
        reader_b, _ = service.db.create_session(chat.transcript_tokens())
        reader_a.close()  # must release only A's pin, not B's
        with pytest.raises(ValueError):
            service.db.store_registry.spill(context_id)
        reader_b.close()
        service.db.store_registry.spill(context_id)
        assert not service.db.get_context(context_id).is_resident

    def test_named_context_resumes_conversation(self):
        service = _service(seed=347)
        first = service.chat(context_id="support-42", max_new_tokens=3)
        first.ask("the customer's issue is a slow database " * 3)
        resumed = service.chat(context_id="support-42", max_new_tokens=3)
        turn = resumed.ask("suggest a fix")
        assert turn.reused_tokens > 0

    def test_empty_chat_prompt_rejected(self):
        service = _service()
        chat = service.chat()
        with pytest.raises(ValueError):
            chat.send("")


class TestCompletionsFacade:
    def test_blocking_completion(self):
        service = _service(seed=353)
        completions = Completions(service)
        completion = completions.create("complete this prompt " * 4, max_new_tokens=3)
        assert isinstance(completion, Completion)
        assert len(completion.choices) == 1
        assert len(completion.choices[0].token_ids) == 3
        assert completion.usage.completion_tokens == 3
        assert completion.usage.prompt_tokens > 0
        assert completion.usage.total_tokens == completion.usage.prompt_tokens + 3

    def test_streaming_completion_matches_blocking(self):
        model = TransformerModel(ModelConfig.tiny(seed=359))
        blocking = Completions(InferenceService(model, AlayaDBConfig(**FULL_ATTENTION_CONFIG)))
        streaming = Completions(InferenceService(model, AlayaDBConfig(**FULL_ATTENTION_CONFIG)))
        prompt = "the same prompt twice " * 4
        completion = blocking.create(prompt, max_new_tokens=4)
        chunks = list(streaming.create(prompt, max_new_tokens=4, stream=True))
        assert all(isinstance(c, CompletionChunk) for c in chunks)
        assert [c.token_id for c in chunks] == completion.choices[0].token_ids
        assert [c.index for c in chunks] == [0, 1, 2, 3]

    def test_reused_tokens_surface_in_usage(self):
        service = _service(seed=367)
        client = Client(service)
        document = "a reference manual chapter " * 15
        service.ingest(document, context_id="manual")
        prompt = service.db.tokenizer.decode(service.db.get_context("manual").tokens)
        completion = client.completions.create(prompt + " what now?", max_new_tokens=2)
        assert completion.usage.reused_tokens > 0

    def test_client_opens_chat_sessions(self):
        service = _service(seed=373)
        client = Client(service)
        chat = client.chat(max_new_tokens=2)
        chat.ask("hello from the client facade " * 3)
        assert chat.ask("again?").reused_tokens > 0
