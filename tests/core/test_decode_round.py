"""Cross-request decode rounds: equivalence grid, policy properties, timings.

The cross-request round (``cross_request_sparse_batching``) is a pure
performance refactor — every grid point here runs the same workload with the
round coordinator on and off and requires token-identical generations plus
honest per-request modeled stats.  The ALISA-style dense/sparse policy is a
pure transition function, so its hysteresis/dwell/monotonicity guarantees
are checked property-style with hypothesis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AlayaDBConfig
from repro.core.db import DB
from repro.core.decode_round import (
    CrossRequestDecodeRound,
    DynamicAttentionPolicy,
    PolicyState,
    StageTimings,
)
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.simulator.slo import BATCH_SLO, SLO

DOC = [2 + (i % 250) for i in range(158)]

#: config knobs routing the optimizer to each execution path (all layers of
#: ModelConfig.tiny have an index under each mix)
PLAN_MIXES = {
    "flat": dict(gpu_memory_budget_bytes=1, flat_index_layers=(0, 1)),
    "fine": dict(gpu_memory_budget_bytes=1, flat_index_layers=(0,)),
    "coarse": dict(gpu_memory_budget_bytes=10**18, topk_k=64, coarse_num_blocks=4),
}

BASE_CONFIG = dict(
    short_context_threshold=64,
    window_initial_tokens=8,
    window_last_tokens=16,
    min_reuse_tokens=4,
)


@pytest.fixture(scope="module")
def model():
    return TransformerModel(ModelConfig.tiny(seed=7))


def _service(model, mix: str, cross: bool, **overrides) -> InferenceService:
    config = AlayaDBConfig(
        cross_request_sparse_batching=cross,
        **BASE_CONFIG,
        **PLAN_MIXES[mix],
        **overrides,
    )
    service = InferenceService(model, config)
    service.db.prefill_and_import(
        model, DOC, build_fine_indexes=(mix == "fine"), context_id="shared"
    )
    return service


def _drain_outputs(service: InferenceService, prompts, max_new) -> dict[int, list[int]]:
    handles = [
        service.submit(p, max_new_tokens=m) for p, m in zip(prompts, max_new)
    ]
    service.drain()
    outputs = {}
    for handle in handles:
        result, record = service.result(handle)
        outputs[handle.request_id] = (
            result.generated_tokens,
            record.generated_tokens,
            round(record.modeled_tpot_seconds, 12),
        )
    return outputs


class TestEquivalenceGrid:
    """Batched rounds must match the per-session fallback token for token."""

    @pytest.mark.parametrize("mix", sorted(PLAN_MIXES))
    @pytest.mark.parametrize("num_sessions", [1, 2, 4, 8])
    def test_tokens_and_stats_match(self, model, mix, num_sessions):
        # unequal context lengths (suffixes of 1-3 tokens) and unequal
        # generation lengths (sessions finish mid-round while others decode)
        prompts = [DOC + [210 + i] * (1 + i % 3) for i in range(num_sessions)]
        max_new = [3 + i % 3 for i in range(num_sessions)]
        per_session = _drain_outputs(
            _service(model, mix, cross=False, max_inflight_requests=num_sessions),
            prompts,
            max_new,
        )
        batched = _drain_outputs(
            _service(model, mix, cross=True, max_inflight_requests=num_sessions),
            prompts,
            max_new,
        )
        assert batched == per_session

    def test_mixed_plan_kinds_in_one_round(self, model):
        """Sessions on different contexts split into singles, still identical."""

        def run(cross):
            service = _service(model, "flat", cross=cross, max_inflight_requests=4)
            # a second ingested context: two compatibility groups in flight
            other = [5 + (i % 240) for i in range(130)]
            service.db.prefill_and_import(
                model, other, build_fine_indexes=False, context_id="other"
            )
            prompts = [DOC + [211], DOC + [212], other + [213], other + [214]]
            return _drain_outputs(service, prompts, [4, 4, 4, 4])

        assert run(True) == run(False)

    def test_mid_round_cancel(self, model):
        def run(cross):
            service = _service(model, "flat", cross=cross, max_inflight_requests=4)
            prompts = [DOC + [220 + i] for i in range(4)]
            handles = [service.submit(p, max_new_tokens=6) for p in prompts]
            service.step()
            service.step()
            assert service.cancel(handles[1].request_id)
            service.drain()
            return {
                h.request_id: service.result(h)[0].generated_tokens
                for h in handles
                if service.result(h) is not None
            }

        per_session = run(False)
        batched = run(True)
        assert batched == per_session
        assert len(batched) == 3  # the cancelled request produced no result

    def test_mid_round_preemption(self, model):
        def run(cross):
            service = _service(
                model,
                "flat",
                cross=cross,
                max_inflight_requests=2,
                scheduler_policy="slo",
                preemption=True,
            )
            long_handles = [
                service.submit(DOC + [230 + i], max_new_tokens=24, slo=BATCH_SLO)
                for i in range(2)
            ]
            for _ in range(3):
                service.step()
            critical = service.submit(
                DOC + [240], max_new_tokens=2, slo=SLO(ttft_seconds=0.001)
            )
            service.drain()
            preemptions = service.scheduler.stats.preemptions
            return preemptions, {
                h.request_id: service.result(h)[0].generated_tokens
                for h in long_handles + [critical]
            }

        per_preempt, per_session = run(False)
        bat_preempt, batched = run(True)
        assert per_preempt >= 1 and bat_preempt >= 1
        assert batched == per_session


class TestDecodeStepStatsHonesty:
    """The coordinator must attribute exactly the per-session path's stats."""

    def _sessions(self, model, db, n):
        sessions = []
        for i in range(n):
            session, suffix = db.create_session(DOC + [210 + i])
            assert suffix == [210 + i]
            sessions.append(session)
        return sessions

    def test_round_matches_per_session_outputs_and_stats(self, model):
        config = AlayaDBConfig(**BASE_CONFIG, **PLAN_MIXES["flat"])
        db = DB(config)
        db.prefill_and_import(model, DOC, build_fine_indexes=False)
        dims = model.config
        rng = np.random.default_rng(11)
        steps = [
            (
                rng.normal(size=(dims.num_query_heads, 3, dims.head_dim)).astype(np.float32),
                rng.normal(size=(dims.num_kv_heads, 3, dims.head_dim)).astype(np.float32),
                rng.normal(size=(dims.num_kv_heads, 3, dims.head_dim)).astype(np.float32),
            )
            for _ in range(3 * dims.num_layers)
        ]

        solo = self._sessions(model, db, 3)
        solo_rows = []
        for t in range(3):
            for layer in range(dims.num_layers):
                q, k, v = steps[t * dims.num_layers + layer]
                for i, session in enumerate(solo):
                    session.update_query(
                        q[:, i : i + 1, :], k[:, i : i + 1, :], v[:, i : i + 1, :], layer
                    )
                    solo_rows.append(session.attention(q[:, i : i + 1, :], layer)[:, 0, :])

        grouped = self._sessions(model, db, 3)
        round_ = CrossRequestDecodeRound(grouped)
        round_rows = []
        for t in range(3):
            for layer in range(dims.num_layers):
                q, k, v = steps[t * dims.num_layers + layer]
                rows = round_.layer_attention(layer, q, k, v, grouped)
                round_rows.extend(
                    rows[i].reshape(dims.num_query_heads, dims.head_dim) for i in range(3)
                )

        for solo_row, round_row in zip(solo_rows, round_rows):
            np.testing.assert_allclose(round_row, solo_row, atol=1e-5)
        for a, b in zip(solo, grouped):
            assert a.total_decode_stats == b.total_decode_stats
            assert a.num_decode_steps == b.num_decode_steps == 3


# --------------------------------------------------------------------------
# dynamic attention policy
# --------------------------------------------------------------------------

policies = st.builds(
    DynamicAttentionPolicy,
    dense_watermark=st.floats(min_value=0.0, max_value=0.8),
    sparse_watermark=st.floats(min_value=0.8, max_value=2.0),
    min_dwell_steps=st.integers(min_value=0, max_value=6),
)
states = st.builds(
    PolicyState,
    mode=st.sampled_from(["sparse", "dense"]),
    steps_in_mode=st.integers(min_value=0, max_value=12),
)
pressures = st.floats(min_value=0.0, max_value=3.0)


class TestDynamicAttentionPolicy:
    @settings(deadline=None, max_examples=80)
    @given(policy=policies, state=states, pressure=pressures)
    def test_step_is_pure_and_total(self, policy, state, pressure):
        first = policy.step(state, pressure)
        assert policy.step(state, pressure) == first
        assert first.mode in ("sparse", "dense")

    @settings(deadline=None, max_examples=80)
    @given(policy=policies, state=states, pressure=pressures)
    def test_hysteresis_band_keeps_mode(self, policy, state, pressure):
        if policy.dense_watermark < pressure < policy.sparse_watermark:
            assert policy.step(state, pressure).mode == state.mode

    @settings(deadline=None, max_examples=80)
    @given(policy=policies, state=states, p1=pressures, p2=pressures)
    def test_monotone_in_pressure(self, policy, state, p1, p2):
        """Higher pressure never flips the decision toward dense."""
        low, high = sorted((p1, p2))
        if policy.step(state, low).mode == "sparse":
            assert policy.step(state, high).mode == "sparse"

    @settings(deadline=None, max_examples=60)
    @given(
        policy=policies,
        seq=st.lists(pressures, min_size=1, max_size=40),
    )
    def test_dwell_bounds_switch_frequency(self, policy, seq):
        state = policy.initial()
        last_switch = None
        for i, pressure in enumerate(seq):
            nxt = policy.step(state, pressure)
            if nxt.mode != state.mode:
                if last_switch is not None:
                    assert i - last_switch >= policy.min_dwell_steps
                last_switch = i
            state = nxt

    @settings(deadline=None, max_examples=60)
    @given(policy=policies, state=states)
    def test_sustained_pressure_converges_to_sparse(self, policy, state):
        pressure = policy.sparse_watermark
        for _ in range(policy.min_dwell_steps + 1):
            state = policy.step(state, pressure)
        assert state.mode == "sparse"

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            DynamicAttentionPolicy(dense_watermark=0.8, sparse_watermark=0.5)
        with pytest.raises(ValueError):
            DynamicAttentionPolicy(min_dwell_steps=-1)

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            AlayaDBConfig(
                attention_policy_dense_watermark=0.9,
                attention_policy_sparse_watermark=0.5,
            )

    def test_policy_pins_low_pressure_sessions_dense(self, model):
        """Plentiful budget → dense override; forget() clears state on finish."""
        service = _service(
            model,
            "flat",
            cross=True,
            max_inflight_requests=2,
            dynamic_attention_policy=True,
            scheduler_gpu_budget_bytes=10**15,
        )
        handles = [service.submit(DOC + [250 + i], max_new_tokens=3) for i in range(2)]
        service.step()
        service.step()
        live = [service._live[h.request_id].session for h in handles]
        assert all(s.decode_mode_override == "dense" for s in live)
        assert len(service._attention_policy._states) == 2
        service.drain()
        assert not service._attention_policy._states


class TestStageTimings:
    def test_memory_report_exposes_decode_split(self, model):
        service = _service(model, "flat", cross=True, max_inflight_requests=4)
        for i in range(4):
            service.submit(DOC + [210 + i], max_new_tokens=4)
        service.drain()
        report = service.memory_report()
        assert report["decode_rounds"] > 0
        assert report["decode_retrieval_seconds"] > 0.0
        assert report["decode_merge_seconds"] > 0.0
        assert report["decode_dense_seconds"] >= 0.0
        # the stats object and the service share one StageTimings instance
        assert service.stats.decode_timings is service.decode_timings
        assert service.decode_timings.sparse_seconds == (
            service.decode_timings.retrieval_seconds
            + service.decode_timings.merge_seconds
        )

    def test_timings_accrue_in_per_session_path_too(self, model):
        service = _service(model, "flat", cross=False, max_inflight_requests=2)
        for i in range(2):
            service.submit(DOC + [210 + i], max_new_tokens=3)
        service.drain()
        assert service.decode_timings.retrieval_seconds > 0.0
        assert service.decode_timings.merge_seconds > 0.0

    def test_stage_timings_dataclass(self):
        timings = StageTimings(retrieval_seconds=1.0, merge_seconds=2.0, dense_seconds=3.0)
        assert timings.sparse_seconds == 3.0
