"""Tests of the durable context database: restart-and-reuse.

The headline property: a :class:`ContextStore`/:class:`DB`/:class:`InferenceService`
opened over a directory (or shared backend) a *previous* instance populated
serves those contexts — prefix matching, KV reuse, and retrieval over
deserialized indexes all work without re-prefilling or re-indexing — and the
reloaded indexes search bit-identically to the originals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.context_store import ContextStore
from repro.core.db import DB
from repro.core.service import InferenceService
from repro.errors import ContextLoadError
from repro.llm.model import ModelConfig, TransformerModel
from repro.storage.backend import InMemoryBackend
from repro.storage.manifest import MANIFEST_KEY
from tests.conftest import make_context


DOC = "the durable context database must survive a restart. " * 14
QUESTION = " what survives a restart?"


def _service(tmp_path, seed=113, **config_kwargs):
    model = TransformerModel(ModelConfig.tiny(seed=seed))
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        max_retrieved_tokens=64,
        context_db_path=str(tmp_path / "ctxdb"),
        **config_kwargs,
    )
    return InferenceService(model, config)


class TestDurableContextStore:
    def test_open_recovers_population_cold(self, tmp_path):
        store = ContextStore.open(tmp_path / "db")
        context = make_context(context_id="ctx-0007", seed=3)
        original_keys = context.keys(0).copy()
        tokens = list(context.tokens)
        store.add(context)
        assert store.manifest_generation >= 1

        reopened = ContextStore.open(tmp_path / "db")
        assert "ctx-0007" in reopened
        recovered = reopened.get("ctx-0007")
        # recovered cold: prefix-matchable now, KV loaded on first use
        assert not recovered.is_resident
        assert recovered.tokens == tokens
        match = reopened.find_longest_prefix(tokens + [9999])
        assert match.context.context_id == "ctx-0007"
        assert match.prefix_length == len(tokens)
        reopened.ensure_resident("ctx-0007")
        np.testing.assert_array_equal(recovered.keys(0), original_keys)

    def test_generation_continues_across_reopen(self, tmp_path):
        store = ContextStore.open(tmp_path / "db")
        store.add(make_context(context_id="a", seed=1))
        first = store.manifest_generation
        reopened = ContextStore.open(tmp_path / "db")
        assert reopened.manifest_generation == first
        reopened.add(make_context(context_id="b", num_tokens=32, seed=2))
        assert reopened.manifest_generation > first

    def test_two_stores_share_a_backend(self, tmp_path):
        """A second store opened over the same storage serves contexts the
        first one stored — the two-process sharing model."""
        backend = InMemoryBackend()
        writer = ContextStore.open(backend)
        context = make_context(context_id="shared", seed=5)
        tokens = list(context.tokens)
        writer.add(context)

        reader = ContextStore.open(backend)
        assert reader.find_longest_prefix(tokens).prefix_length == len(tokens)
        loaded = reader.ensure_resident("shared")
        np.testing.assert_array_equal(loaded.keys(0), writer.get("shared").keys(0))

    def test_remove_deletes_blobs_and_manifest_row(self, tmp_path):
        store = ContextStore.open(tmp_path / "db")
        store.add(make_context(context_id="gone", seed=7))
        assert store.backend.exists("gone.npz")
        store.remove("gone")
        assert not store.backend.exists("gone.npz")
        reopened = ContextStore.open(tmp_path / "db")
        assert "gone" not in reopened

    def test_corrupted_manifest_raises_clean_error(self, tmp_path):
        store = ContextStore.open(tmp_path / "db")
        store.add(make_context(context_id="x", seed=9))
        store.backend.write_bytes(MANIFEST_KEY, b"\x00torn")
        with pytest.raises(ContextLoadError):
            ContextStore.open(tmp_path / "db")

    def test_corrupted_snapshot_raises_clean_error(self, tmp_path):
        store = ContextStore.open(tmp_path / "db")
        store.add(make_context(context_id="x", seed=9))
        blob = store.backend.read_bytes("x.npz")
        store.backend.write_bytes("x.npz", blob[: len(blob) // 3])
        reopened = ContextStore.open(tmp_path / "db")
        with pytest.raises(ContextLoadError):
            reopened.ensure_resident("x")

    def test_corrupted_index_blob_degrades_to_rebuild(self, tmp_path):
        """A torn index blob must not fail the reload — the context comes
        back index-less and the rebuild path takes over."""
        model = TransformerModel(ModelConfig.tiny(seed=31))
        db = DB(AlayaDBConfig(context_db_path=str(tmp_path / "db")))
        db.prefill_and_import(model, DOC, context_id="doc")
        db.store_registry.backend.write_bytes("doc.indexes.npz", b"garbage")
        db2 = DB(AlayaDBConfig(context_db_path=str(tmp_path / "db")))
        context = db2.store_registry.ensure_resident("doc")
        assert context.is_resident
        assert db2.store_registry.reload_rebuilt_count == 1
        assert not context.has_fine_indexes  # queued for lazy rebuild instead
        assert db2.num_pending_index_builds == 1


class TestDBRestart:
    def test_restart_reuses_prefix_and_deserializes_indexes(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=29))
        config = AlayaDBConfig(context_db_path=str(tmp_path / "db"))
        db = DB(config)
        original = db.prefill_and_import(model, DOC, context_id="doc")
        assert original.has_fine_indexes
        doc_tokens = db.tokenize(DOC)

        db2 = DB(AlayaDBConfig(context_db_path=str(tmp_path / "db")))
        assert db2.num_contexts == 1
        session, truncated = db2.create_session(DOC + QUESTION)
        assert session.is_connected
        assert session.reused_prefix_length == len(doc_tokens)
        assert len(truncated) == len(db2.tokenize(DOC + QUESTION)) - len(doc_tokens)
        # the reload was a deserialize, not a rebuild
        assert db2.store_registry.reload_deserialized_count == 1
        assert db2.store_registry.reload_rebuilt_count == 0
        reloaded = db2.get_context("doc")
        assert reloaded.has_fine_indexes
        assert db2.num_pending_index_builds == 0
        session.close()

        # retrieval equivalence: the deserialized fine index searches
        # bit-identically to the one the first DB built
        rng = np.random.default_rng(17)
        for layer, layer_indexes in original.fine_indexes.items():
            restored = reloaded.fine_indexes[layer]
            for a, b in zip(layer_indexes.indexes, restored.indexes):
                for _ in range(5):
                    query = rng.normal(size=a.vectors.shape[1]).astype(np.float32)
                    ra, rb = a.search_topk(query, k=8), b.search_topk(query, k=8)
                    np.testing.assert_array_equal(ra.indices, rb.indices)
                    np.testing.assert_array_equal(ra.scores, rb.scores)

    def test_restart_continues_context_id_sequence(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=37))
        db = DB(AlayaDBConfig(context_db_path=str(tmp_path / "db")))
        first = db.prefill_and_import(model, "alpha " * 30)
        db2 = DB(AlayaDBConfig(context_db_path=str(tmp_path / "db")))
        second = db2.prefill_and_import(model, "beta " * 30)
        assert first.context_id != second.context_id
        assert first.context_id in db2.store_registry

    def test_persist_fine_indexes_off_falls_back_to_rebuild(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=41))
        config = AlayaDBConfig(
            context_db_path=str(tmp_path / "db"), persist_fine_indexes=False
        )
        DB(config).prefill_and_import(model, DOC, context_id="doc")
        db2 = DB(config)
        db2.store_registry.ensure_resident("doc")
        assert db2.store_registry.reload_rebuilt_count == 1
        assert db2.num_pending_index_builds == 1  # fine rebuild queued lazily

    def test_memory_backend_database(self, tmp_path):
        """The ``storage_backend`` knob routes the database through the
        in-memory backend (no files under the path)."""
        model = TransformerModel(ModelConfig.tiny(seed=43))
        config = AlayaDBConfig(
            context_db_path=str(tmp_path / "db"), storage_backend="memory"
        )
        db = DB(config)
        db.prefill_and_import(model, "ephemeral " * 20, context_id="doc")
        db.store_registry.spill("doc")
        assert not (tmp_path / "db").exists() or not any((tmp_path / "db").iterdir())
        assert db.store_registry.ensure_resident("doc").is_resident


class TestExportImportBundle:
    def test_bundle_moves_context_between_dbs(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=47))
        source = DB(AlayaDBConfig())
        context = source.prefill_and_import(model, DOC, context_id="doc")
        source.export_context("doc", tmp_path / "bundle")

        target = DB(AlayaDBConfig())  # no shared storage at all
        imported = target.import_context_bundle(tmp_path / "bundle")
        assert imported.context_id == "doc"
        assert imported.tokens == context.tokens
        assert imported.has_fine_indexes
        np.testing.assert_array_equal(imported.keys(0), context.keys(0))
        # imported indexes search bit-identically to the exporter's
        rng = np.random.default_rng(23)
        for layer, layer_indexes in context.fine_indexes.items():
            for a, b in zip(layer_indexes.indexes, imported.fine_indexes[layer].indexes):
                query = rng.normal(size=a.vectors.shape[1]).astype(np.float32)
                ra, rb = a.search_topk(query, k=8), b.search_topk(query, k=8)
                np.testing.assert_array_equal(ra.indices, rb.indices)
        # and the prompt prefix-matches through the imported context
        match = target.store_registry.find_longest_prefix(target.tokenize(DOC + "?"))
        assert match.context.context_id == "doc"

    def test_import_under_new_id(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=53))
        source = DB(AlayaDBConfig())
        source.prefill_and_import(model, "renamed on import " * 10, context_id="doc")
        source.export_context("doc", tmp_path / "bundle")
        target = DB(AlayaDBConfig())
        imported = target.import_context_bundle(tmp_path / "bundle", context_id="copy")
        assert imported.context_id == "copy"
        assert "copy" in target.store_registry

    def test_corrupted_bundle_raises_clean_error(self, tmp_path):
        (tmp_path / "bundle").mkdir()
        (tmp_path / "bundle" / "bundle.json").write_bytes(b"{nope")
        with pytest.raises(ContextLoadError):
            DB(AlayaDBConfig()).import_context_bundle(tmp_path / "bundle")


class TestServiceRestart:
    def test_restarted_service_serves_token_identical(self, tmp_path):
        """Ingest + serve, drop the service, reopen the same directory:
        the restarted service prefix-matches the recovered context and
        generates the *same tokens* with the same reuse."""
        service1 = _service(tmp_path)
        service1.ingest(DOC, context_id="doc")
        result1, record1 = service1.serve(DOC + QUESTION, max_new_tokens=6)
        assert record1.reused_tokens > 0

        service2 = _service(tmp_path)  # fresh model object, same weights seed
        assert service2.num_contexts >= 1
        result2, record2 = service2.serve(DOC + QUESTION, max_new_tokens=6)
        assert record2.reused_tokens == record1.reused_tokens
        assert result2.generated_tokens == result1.generated_tokens
        report = service2.memory_report()
        assert report["context_reloads_deserialized"] >= 1
        assert report["context_reloads_rebuilt"] == 0

    def test_restart_ttft_benefits_from_reuse(self, tmp_path):
        """The restarted service's prefill only covers the question suffix —
        the recovered context absorbs the document, like a warm service."""
        service1 = _service(tmp_path)
        service1.ingest(DOC, context_id="doc")
        _, warm = service1.serve(DOC + QUESTION, max_new_tokens=2)

        service2 = _service(tmp_path)
        _, restarted = service2.serve(DOC + QUESTION, max_new_tokens=2)
        assert restarted.reused_tokens == warm.reused_tokens
        prompt_tokens = len(service2.db.tokenize(DOC + QUESTION))
        assert restarted.reused_tokens >= prompt_tokens - len(
            service2.db.tokenize(QUESTION)
        ) - 1

    def test_chat_session_resumes_after_restart(self, tmp_path):
        service1 = _service(tmp_path)
        chat1 = service1.chat(max_new_tokens=3)
        chat1.ask("the first turn writes durable history " * 6)
        context_id = chat1.context_id
        stored_tokens = chat1.transcript_tokens()
        assert stored_tokens

        service2 = _service(tmp_path)
        chat2 = service2.chat(context_id=context_id, max_new_tokens=3)
        assert chat2.transcript_tokens() == stored_tokens  # recovered cold
        turn = chat2.ask("and the second turn continues it")
        assert turn.record.reused_tokens > 0
        assert len(chat2.transcript_tokens()) > len(stored_tokens)

    def test_memory_report_exposes_disk_tier(self, tmp_path):
        service = _service(tmp_path)
        service.ingest(DOC, context_id="doc")
        service.db.store_registry.spill("doc")
        report = service.memory_report()
        assert report["disk_kv_bytes"] > 0
        assert report["disk_index_bytes"] > 0
        assert report["spilled_kv_bytes"] > 0
        assert report["manifest_generation"] >= 1
        assert service.stats.disk_kv_bytes == report["disk_kv_bytes"]
        assert service.stats.spilled_kv_bytes == report["spilled_kv_bytes"]
        service.db.touch_context("doc")
        assert service.stats.context_reloads_deserialized == 1
        assert service.memory_report()["spilled_kv_bytes"] == 0
