"""Tests of the serving layer (InferenceService) and the request-trace generator."""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.workloads.trace import RequestTrace, TraceSpec, generate_trace


@pytest.fixture(scope="module")
def service():
    model = TransformerModel(ModelConfig.tiny(seed=41))
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        max_retrieved_tokens=128,
    )
    svc = InferenceService(model, config)
    svc.ingest("shared reference document about databases. " * 30, context_id="doc-shared")
    return svc


class TestTraceGeneration:
    def test_trace_is_deterministic(self):
        a = generate_trace(TraceSpec(seed=5))
        b = generate_trace(TraceSpec(seed=5))
        assert [r.prompt for r in a.requests] == [r.prompt for r in b.requests]

    def test_trace_shape(self):
        trace = generate_trace(TraceSpec(num_documents=2, num_requests=10, seed=1))
        assert trace.num_requests == 10
        assert len(trace.documents) == 2
        assert 0.0 <= trace.reuse_opportunity() <= 1.0

    def test_fresh_fraction_zero_means_all_library(self):
        trace = generate_trace(TraceSpec(fresh_request_fraction=0.0, num_requests=8, seed=2))
        assert trace.reuse_opportunity() == 1.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(num_documents=0)
        with pytest.raises(ValueError):
            TraceSpec(fresh_request_fraction=1.5)

    def test_library_prompts_embed_the_document(self):
        trace = generate_trace(TraceSpec(num_requests=6, fresh_request_fraction=0.0, seed=3))
        for request in trace.requests:
            assert trace.documents[request.document_id] in request.prompt


class TestInferenceService:
    def test_ingest_registers_context(self, service):
        assert service.num_contexts >= 1

    def test_serve_reuses_ingested_document(self, service):
        document = service.db.get_context("doc-shared")
        prompt = service.db.tokenizer.decode(document.tokens) + " What is stored?"
        result, record = service.serve(prompt, max_new_tokens=3)
        assert result.num_generated == 3
        assert record.reused_tokens > 0
        assert record.reuse_ratio > 0.9
        assert record.gpu_resident_bytes > 0

    def test_serve_without_reuse(self, service):
        result, record = service.serve("completely unrelated question?", max_new_tokens=2)
        assert record.reused_tokens == 0
        assert record.reuse_ratio == 0.0

    def test_stats_accumulate(self, service):
        before = service.stats.num_requests
        service.serve("another unrelated question", max_new_tokens=2)
        assert service.stats.num_requests == before + 1
        assert service.stats.peak_gpu_resident_bytes >= 0

    def test_slo_report(self, service):
        report = service.slo_report()
        assert report.num_requests == service.stats.num_requests
        assert report.tpot_mean >= 0.0

    def test_store_conversations_option(self):
        model = TransformerModel(ModelConfig.tiny(seed=43))
        svc = InferenceService(
            model,
            AlayaDBConfig(short_context_threshold=32, window_initial_tokens=4, window_last_tokens=8),
            store_conversations=True,
        )
        _, record = svc.serve("store this conversation please", max_new_tokens=2)
        assert record.stored_context_id is not None
        assert record.stored_context_id in svc.db.store_registry

    def test_trace_driven_serving(self):
        model = TransformerModel(ModelConfig.tiny(seed=47))
        svc = InferenceService(
            model,
            AlayaDBConfig(
                window_initial_tokens=8,
                window_last_tokens=16,
                short_context_threshold=64,
                gpu_memory_budget_bytes=1,
                max_retrieved_tokens=64,
            ),
        )
        trace = generate_trace(TraceSpec(num_documents=2, document_repeats=10, num_requests=4, fresh_request_fraction=0.25, seed=9))
        for document_id, text in trace.documents.items():
            svc.ingest(text, context_id=document_id)
        for request in trace.requests:
            svc.serve(request.prompt, max_new_tokens=2)
        assert svc.stats.num_requests == trace.num_requests
        library_records = [
            record
            for record, request in zip(svc.stats.records, trace.requests)
            if request.uses_library_document
        ]
        assert all(record.reused_tokens > 0 for record in library_records)
