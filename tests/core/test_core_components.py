"""Tests of the core components: window cache, attention engine, optimizer,
planner, context store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attention_engine import DataCentricAttentionEngine
from repro.core.config import AlayaDBConfig
from repro.core.context_store import ContextStore, StoredContext
from repro.core.optimizer import QueryContext, RuleBasedOptimizer
from repro.core.planner import ExecutionPlan, LayerIndexData, PlanExecutor
from repro.core.window_cache import WindowCache
from repro.errors import ConfigError, ContextNotFoundError, DuplicateContextError, UnsupportedQueryError
from repro.index.coarse import CoarseBlockIndex
from repro.index.roargraph import RoarGraphIndex
from repro.kvcache.serialization import KVSnapshot
from repro.llm.attention import decode_attention
from repro.query.types import DIPRQuery, IndexKind, QueryKind, TopKQuery
from tests.conftest import make_context


class TestAlayaDBConfig:
    def test_defaults_valid(self):
        config = AlayaDBConfig()
        assert config.window_total_tokens == 640

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            AlayaDBConfig(window_initial_tokens=-1)
        with pytest.raises(ConfigError):
            AlayaDBConfig(dipr_beta=-5)
        with pytest.raises(ConfigError):
            AlayaDBConfig(topk_k=0)

    def test_beta_scaling(self):
        config = AlayaDBConfig(dipr_beta=50.0, reference_head_dim=128)
        assert config.scaled_beta(128) == pytest.approx(50.0)
        assert config.scaled_beta(32) == pytest.approx(25.0)
        frozen = AlayaDBConfig(dipr_beta=50.0, scale_beta_to_head_dim=False)
        assert frozen.scaled_beta(32) == pytest.approx(50.0)


class TestWindowCache:
    def test_positions_cover_initial_and_last(self):
        window = WindowCache(initial_tokens=4, last_tokens=4)
        positions = window.positions(100)
        np.testing.assert_array_equal(positions, [0, 1, 2, 3, 96, 97, 98, 99])

    def test_short_context_fully_covered(self):
        window = WindowCache(initial_tokens=8, last_tokens=8)
        assert window.covers(12)
        assert window.num_positions(12) == 12

    def test_empty_context(self):
        window = WindowCache(4, 4)
        assert window.positions(0).size == 0

    def test_memory_bytes(self):
        window = WindowCache(initial_tokens=2, last_tokens=2)
        nbytes = window.memory_bytes(100, num_kv_heads=2, head_dim=8, num_layers=3)
        assert nbytes == 2 * 4 * 2 * 8 * 3 * 4

    def test_max_window_score(self):
        window = WindowCache(2, 2)
        keys = np.eye(8, dtype=np.float32)[:8]
        query = np.zeros(8, dtype=np.float32)
        query[7] = 3.0
        positions = window.positions(8)
        assert window.max_window_score(query, keys, positions) == pytest.approx(3.0)
        assert window.max_window_score(query, keys, np.empty(0, dtype=np.int64)) == float("-inf")

    def test_max_window_scores_batches_all_heads(self):
        window = WindowCache(4, 4)
        rng = np.random.default_rng(3)
        num_kv_heads, group_size, n, dim = 2, 3, 30, 8
        keys = rng.normal(size=(num_kv_heads, n, dim)).astype(np.float32)
        queries = rng.normal(size=(num_kv_heads * group_size, dim)).astype(np.float32)
        positions = window.positions(n)
        batched = window.max_window_scores(queries, keys, positions)
        assert batched.shape == (num_kv_heads * group_size,)
        for head in range(queries.shape[0]):
            expected = window.max_window_score(queries[head], keys[head // group_size], positions)
            assert batched[head] == pytest.approx(expected)
        empty = window.max_window_scores(queries, keys, np.empty(0, dtype=np.int64))
        assert np.all(np.isneginf(empty))


class TestAttentionEngine:
    def test_merged_output_matches_exact(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=(60, 8)).astype(np.float32)
        values = rng.normal(size=(60, 8)).astype(np.float32)
        local_k = rng.normal(size=(5, 8)).astype(np.float32)
        local_v = rng.normal(size=(5, 8)).astype(np.float32)
        query = rng.normal(size=8).astype(np.float32)
        engine = DataCentricAttentionEngine()
        window = np.arange(0, 10)
        retrieved = np.arange(30, 45)
        output, breakdown = engine.head_output(query, keys, values, window, retrieved, local_k, local_v)
        # exact attention over the union of attended tokens
        attended = np.concatenate([window, retrieved])
        all_k = np.concatenate([keys[attended], local_k])[None, :, :]
        all_v = np.concatenate([values[attended], local_v])[None, :, :]
        expected = decode_attention(query[None, :], all_k, all_v)[0]
        np.testing.assert_allclose(output, expected, atol=1e-5)
        assert breakdown.total_tokens == 10 + 15 + 5

    def test_overlapping_positions_not_double_counted(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=(40, 8)).astype(np.float32)
        values = rng.normal(size=(40, 8)).astype(np.float32)
        query = rng.normal(size=8).astype(np.float32)
        engine = DataCentricAttentionEngine()
        window = np.arange(0, 20)
        retrieved = np.arange(10, 30)  # overlaps the window
        output, breakdown = engine.head_output(query, keys, values, window, retrieved)
        attended = np.arange(0, 30)
        expected = decode_attention(query[None, :], keys[None, attended], values[None, attended])[0]
        np.testing.assert_allclose(output, expected, atol=1e-5)
        assert breakdown.num_retrieved_tokens == 10

    def test_empty_everything_returns_zeros(self):
        engine = DataCentricAttentionEngine()
        output, breakdown = engine.head_output(
            np.ones(4, dtype=np.float32),
            np.zeros((0, 4), dtype=np.float32),
            np.zeros((0, 4), dtype=np.float32),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        assert np.allclose(output, 0.0)
        assert breakdown.total_tokens == 0

    def test_full_output_matches_decode_attention(self):
        rng = np.random.default_rng(2)
        keys = rng.normal(size=(30, 8)).astype(np.float32)
        values = rng.normal(size=(30, 8)).astype(np.float32)
        query = rng.normal(size=8).astype(np.float32)
        engine = DataCentricAttentionEngine()
        output = engine.full_output(query, keys, values)
        expected = decode_attention(query[None, :], keys[None], values[None])[0]
        np.testing.assert_allclose(output, expected, atol=1e-5)


class TestContextStore:
    def test_add_get_remove(self, random_context):
        store = ContextStore()
        store.add(random_context)
        assert len(store) == 1
        assert store.get("ctx-test") is random_context
        store.remove("ctx-test")
        assert len(store) == 0

    def test_duplicate_rejected(self, random_context):
        store = ContextStore()
        store.add(random_context)
        with pytest.raises(DuplicateContextError):
            store.add(random_context)
        store.add(random_context, overwrite=True)

    def test_missing_context_raises(self):
        store = ContextStore()
        with pytest.raises(ContextNotFoundError):
            store.get("missing")

    def test_longest_prefix_match(self):
        store = ContextStore()
        context_a = make_context(num_tokens=16, seed=1, context_id="a")
        context_a.snapshot.tokens[:] = list(range(16))
        context_b = make_context(num_tokens=16, seed=2, context_id="b")
        context_b.snapshot.tokens[:] = list(range(8)) + [99] * 8
        store.add(context_a)
        store.add(context_b)
        match = store.find_longest_prefix(list(range(12)) + [1000])
        assert match.context.context_id == "a"
        assert match.prefix_length == 12
        miss = store.find_longest_prefix([777, 888])
        assert not miss.is_hit

    def test_full_reuse_detection(self):
        store = ContextStore()
        context = make_context(num_tokens=8, context_id="full")
        context.snapshot.tokens[:] = list(range(8))
        store.add(context)
        match = store.find_longest_prefix(list(range(8)) + [42])
        assert match.is_full_reuse

    def test_persist_and_load(self, tmp_path):
        store = ContextStore(storage_dir=tmp_path)
        context = make_context(context_id="persisted")
        store.add(context)
        store.persist("persisted")
        fresh_store = ContextStore(storage_dir=tmp_path)
        loaded = fresh_store.load_persisted("persisted")
        assert loaded.num_tokens == context.num_tokens

    def test_persist_without_dir_raises(self, random_context):
        store = ContextStore()
        store.add(random_context)
        with pytest.raises(ValueError):
            store.persist("ctx-test")


class TestOptimizer:
    def _query_context(self, **kwargs):
        defaults = dict(
            context_length=100_000,
            layer=1,
            head_dim=128,
            num_kv_heads=8,
            num_layers=32,
            kv_bytes_per_token=131072,
        )
        defaults.update(kwargs)
        return QueryContext(**defaults)

    def test_short_context_full_attention(self):
        optimizer = RuleBasedOptimizer(AlayaDBConfig(short_context_threshold=1024))
        plan = optimizer.plan(self._query_context(context_length=512))
        assert plan.is_full_attention

    def test_large_budget_selects_coarse_topk(self):
        optimizer = RuleBasedOptimizer()
        plan = optimizer.plan(self._query_context(gpu_memory_budget_bytes=10**15))
        assert plan.query_kind == QueryKind.TOP_K
        assert plan.index_kind == IndexKind.COARSE

    def test_small_budget_selects_dipr(self):
        optimizer = RuleBasedOptimizer()
        plan = optimizer.plan(self._query_context(gpu_memory_budget_bytes=1))
        assert plan.query_kind == QueryKind.DIPR
        assert plan.index_kind == IndexKind.FINE

    def test_first_layer_uses_flat_index(self):
        optimizer = RuleBasedOptimizer()
        plan = optimizer.plan(self._query_context(layer=0, gpu_memory_budget_bytes=1))
        assert plan.index_kind == IndexKind.FLAT

    def test_partial_reuse_adds_predicate(self):
        optimizer = RuleBasedOptimizer()
        plan = optimizer.plan(
            self._query_context(gpu_memory_budget_bytes=1, reused_prefix_length=40_000)
        )
        assert plan.predicate is not None
        assert plan.predicate.max_position == 40_000

    def test_beta_scaled_to_head_dim(self):
        optimizer = RuleBasedOptimizer(AlayaDBConfig(dipr_beta=50.0))
        plan = optimizer.plan(self._query_context(head_dim=32, gpu_memory_budget_bytes=1))
        assert plan.query.beta == pytest.approx(25.0)

    def test_plan_all_layers(self):
        optimizer = RuleBasedOptimizer()
        plans = optimizer.plan_all_layers(self._query_context(num_layers=4, gpu_memory_budget_bytes=1))
        assert set(plans) == {0, 1, 2, 3}
        assert plans[0].index_kind == IndexKind.FLAT
        assert plans[3].index_kind == IndexKind.FINE

    def test_plan_all_layers_carries_every_field(self):
        # per-layer contexts are dataclasses.replace copies: non-layer fields
        # (here the partial-reuse prefix driving the predicate) must survive
        optimizer = RuleBasedOptimizer()
        plans = optimizer.plan_all_layers(
            self._query_context(num_layers=3, gpu_memory_budget_bytes=1, reused_prefix_length=40_000)
        )
        for plan in plans.values():
            assert plan.predicate is not None
            assert plan.predicate.max_position == 40_000

    def test_zero_kv_bytes_derives_bytes_from_model_shape(self):
        # 100k tokens x (2 * 8 kv heads * 128 dim * 4 bytes * 32 layers) =
        # ~13 GB of KV: far beyond a 2 GiB budget, so the unset field must
        # route to DIPR instead of degenerating to 1 byte/token (which made
        # every context look within budget and DIPR unreachable)
        optimizer = RuleBasedOptimizer()
        plan = optimizer.plan(
            self._query_context(kv_bytes_per_token=0, gpu_memory_budget_bytes=2 * 2**30)
        )
        assert plan.query_kind == QueryKind.DIPR

    def test_zero_kv_bytes_matches_explicit_model_bytes(self):
        optimizer = RuleBasedOptimizer()
        explicit_bytes = 2 * 8 * 128 * 4 * 32  # matches _query_context's shape
        for budget in (2 * 2**30, 10**15):
            derived = optimizer.plan(
                self._query_context(kv_bytes_per_token=0, gpu_memory_budget_bytes=budget)
            )
            explicit = optimizer.plan(
                self._query_context(kv_bytes_per_token=explicit_bytes, gpu_memory_budget_bytes=budget)
            )
            assert derived.query_kind == explicit.query_kind
            assert derived.index_kind == explicit.index_kind

    def test_custom_rule_takes_priority(self):
        optimizer = RuleBasedOptimizer()
        sentinel = ExecutionPlan(query_kind=QueryKind.FULL, index_kind=None)
        optimizer.register_rule(lambda qc, cfg: sentinel, priority=0)
        assert optimizer.plan(self._query_context()) is sentinel

    def test_plan_describe(self):
        plan = ExecutionPlan(
            query_kind=QueryKind.DIPR, index_kind=IndexKind.FINE, query=DIPRQuery(beta=25.0)
        )
        assert "dipr" in plan.describe()
        assert "beta=25.00" in plan.describe()


class TestPlanExecutor:
    def _layer_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(2, n, 16)).astype(np.float32)
        fine = []
        coarse = []
        for kv_head in range(2):
            index = RoarGraphIndex()
            index.build(keys[kv_head])
            fine.append(index)
            block = CoarseBlockIndex(block_size=64)
            block.build(keys[kv_head])
            coarse.append(block)
        return LayerIndexData(keys=keys, fine_indexes=fine, coarse_indexes=coarse, shared=True, gqa_group_size=2), keys

    def test_flat_dipr_path(self):
        data, keys = self._layer_data()
        executor = PlanExecutor()
        plan = ExecutionPlan(QueryKind.DIPR, IndexKind.FLAT, query=DIPRQuery(beta=5.0))
        query = np.random.default_rng(1).normal(size=16).astype(np.float32)
        outcome = executor.retrieve(plan, data, query_head=0, query=query)
        scores = keys[0] @ query
        assert np.all(scores[outcome.positions] >= scores.max() - 5.0 - 1e-4)

    def test_fine_topk_path(self):
        data, _ = self._layer_data()
        executor = PlanExecutor()
        plan = ExecutionPlan(QueryKind.TOP_K, IndexKind.FINE, query=TopKQuery(k=10))
        query = np.random.default_rng(2).normal(size=16).astype(np.float32)
        outcome = executor.retrieve(plan, data, query_head=3, query=query)
        assert outcome.num_selected == 10

    def test_coarse_topk_path(self):
        data, _ = self._layer_data()
        executor = PlanExecutor(coarse_num_blocks=2)
        plan = ExecutionPlan(QueryKind.TOP_K, IndexKind.COARSE, query=TopKQuery(k=10))
        query = np.random.default_rng(3).normal(size=16).astype(np.float32)
        outcome = executor.retrieve(plan, data, query_head=0, query=query)
        assert outcome.num_selected == 128  # 2 blocks of 64 tokens

    def test_coarse_rejects_dipr(self):
        data, _ = self._layer_data()
        executor = PlanExecutor()
        plan = ExecutionPlan(QueryKind.DIPR, IndexKind.COARSE, query=DIPRQuery(beta=5.0))
        with pytest.raises(UnsupportedQueryError):
            executor.retrieve(plan, data, 0, np.zeros(16, dtype=np.float32))

    def test_query_head_maps_to_kv_head(self):
        data, _ = self._layer_data()
        assert data.kv_head_for_query_head(0) == 0

    @pytest.mark.parametrize(
        "plan",
        [
            ExecutionPlan(QueryKind.DIPR, IndexKind.FLAT, query=DIPRQuery(beta=5.0)),
            ExecutionPlan(QueryKind.TOP_K, IndexKind.FLAT, query=TopKQuery(k=12)),
            ExecutionPlan(QueryKind.DIPR, IndexKind.FINE, query=DIPRQuery(beta=5.0)),
            ExecutionPlan(QueryKind.TOP_K, IndexKind.COARSE, query=TopKQuery(k=10)),
        ],
        ids=["flat-dipr", "flat-topk", "fine-dipr", "coarse-topk"],
    )
    def test_retrieve_heads_matches_per_head_retrieve(self, plan):
        data, _ = self._layer_data()
        batched_data, _ = self._layer_data()
        # fine_frontier_batching off: retrieve_heads must reproduce the
        # per-head oracle exactly here; the group-frontier walk is covered by
        # tests/query/test_group_frontier.py
        executor = PlanExecutor(coarse_num_blocks=2, fine_frontier_batching=False)
        rng = np.random.default_rng(7)
        queries = rng.normal(size=(4, 16)).astype(np.float32)
        seeds = np.full(4, -np.inf, dtype=np.float32)
        outcomes = executor.retrieve_heads(plan, batched_data, queries, window_max_scores=seeds)
        assert len(outcomes) == 4
        for head in range(4):
            expected = executor.retrieve(plan, data, head, queries[head], window_max_score=float(seeds[head]))
            np.testing.assert_array_equal(outcomes[head].positions, expected.positions)
            np.testing.assert_allclose(outcomes[head].scores, expected.scores, atol=1e-5)
            assert outcomes[head].num_distance_computations == expected.num_distance_computations
        assert data.kv_head_for_query_head(3) == 1
        assert data.fine_index_for_query_head(0) is data.fine_index_for_query_head(1)
