"""Tests of the memory-governed context store: byte budget, LRU spill to
disk, transparent reload on prefix hits, and the token-trie prefix match."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.context_store import ContextStore, StoredContext
from repro.core.db import DB
from repro.errors import ConfigError, ContextEvictedError
from repro.kvcache.serialization import KVSnapshot
from repro.llm.generation import GenerationLoop
from repro.llm.model import ModelConfig, TransformerModel


def _context(context_id, tokens, num_layers=1, num_kv_heads=1, head_dim=4, seed=0):
    rng = np.random.default_rng(seed)
    n = len(tokens)
    keys = {l: rng.normal(size=(num_kv_heads, n, head_dim)).astype(np.float32) for l in range(num_layers)}
    values = {l: rng.normal(size=(num_kv_heads, n, head_dim)).astype(np.float32) for l in range(num_layers)}
    return StoredContext(context_id=context_id, snapshot=KVSnapshot(tokens=list(tokens), keys=keys, values=values))


class TestTrieMatching:
    def test_matches_linear_scan(self):
        """The trie must agree with a brute-force scan on random stores."""
        rng = np.random.default_rng(7)
        store = ContextStore()
        stored_tokens = {}
        for i in range(12):
            tokens = [int(t) for t in rng.integers(0, 5, size=rng.integers(3, 20))]
            cid = f"ctx-{i}"
            store.add(_context(cid, tokens, seed=i))
            stored_tokens[cid] = tokens
        for _ in range(50):
            probe = [int(t) for t in rng.integers(0, 5, size=rng.integers(1, 25))]
            match = store.find_longest_prefix(probe)
            best = 0
            for tokens in stored_tokens.values():
                shared = 0
                for a, b in zip(probe, tokens):
                    if a != b:
                        break
                    shared += 1
                best = max(best, shared)
            assert match.prefix_length == best
            if best > 0:
                expected = stored_tokens[match.context.context_id]
                assert probe[:best] == expected[:best]

    def test_removed_context_no_longer_matches(self):
        store = ContextStore()
        store.add(_context("gone", [1, 2, 3, 4]))
        assert store.find_longest_prefix([1, 2, 3]).is_hit
        store.remove("gone")
        assert not store.find_longest_prefix([1, 2, 3]).is_hit

    def test_overwrite_updates_trie(self):
        store = ContextStore()
        store.add(_context("ctx", [1, 2, 3, 4]))
        store.add(_context("ctx", [9, 8, 7], seed=1), overwrite=True)
        assert not store.find_longest_prefix([1, 2, 3]).is_hit
        match = store.find_longest_prefix([9, 8, 0])
        assert match.prefix_length == 2
        assert match.context.context_id == "ctx"

    def test_shared_prefix_prefers_longest(self):
        store = ContextStore()
        store.add(_context("short", [5, 5, 5]))
        store.add(_context("long", [5, 5, 5, 5, 5], seed=1))
        match = store.find_longest_prefix([5] * 10)
        assert match.prefix_length == 5
        assert match.context.context_id == "long"

    def test_overwrite_preserves_pins(self, tmp_path):
        """Pins are held by id (live sessions unpin on close); overwriting a
        context — as every chat turn does — must not zero them, or a later
        close would steal another session's pin and allow a spill."""
        store = ContextStore(storage_dir=tmp_path)
        store.add(_context("ctx", [1] * 8))
        store.pin("ctx")  # session A
        store.add(_context("ctx", [1] * 12, seed=2), overwrite=True)
        store.pin("ctx")  # session B, on the overwritten context
        store.unpin("ctx")  # session A closes
        with pytest.raises(ValueError):
            store.spill("ctx")  # session B still pins it
        store.unpin("ctx")  # session B closes
        store.spill("ctx")
        assert not store.get("ctx").is_resident


class TestBudgetedResidency:
    def test_budget_requires_storage_dir(self):
        with pytest.raises(ValueError):
            ContextStore(kv_budget_bytes=1024)

    def test_config_rejects_non_positive_budget(self):
        with pytest.raises(ConfigError):
            AlayaDBConfig(context_store_budget_bytes=0)

    def test_lru_spill_and_reload_roundtrip(self, tmp_path):
        context_a = _context("a", [1] * 32, seed=1)
        budget = context_a.kv_bytes + context_a.kv_bytes // 2
        store = ContextStore(storage_dir=tmp_path, kv_budget_bytes=budget)
        original_keys = context_a.keys(0).copy()
        store.add(context_a)
        store.add(_context("b", [2] * 32, seed=2))
        # budget fits ~1.5 contexts: the LRU one (a) spilled to disk
        assert not store.get("a").is_resident
        assert store.get("b").is_resident
        assert store.spill_count == 1
        assert (tmp_path / "a.npz").exists()
        assert store.resident_kv_bytes <= budget
        # tokens still matchable while spilled
        assert store.find_longest_prefix([1, 1, 1]).context.context_id == "a"
        # KV access without reload is an explicit error
        with pytest.raises(ContextEvictedError):
            store.get("a").keys(0)
        # reload restores identical KV and evicts the now-cold "b"
        reloaded = store.ensure_resident("a")
        assert reloaded.is_resident
        assert store.reload_count == 1
        np.testing.assert_allclose(reloaded.keys(0), original_keys, atol=1e-7)
        assert not store.get("b").is_resident

    def test_pinned_context_not_spilled(self, tmp_path):
        context_a = _context("a", [1] * 32, seed=1)
        store = ContextStore(storage_dir=tmp_path, kv_budget_bytes=context_a.kv_bytes)
        store.add(context_a)
        store.pin("a")
        store.add(_context("b", [2] * 32, seed=2))
        # "a" is pinned, "b" is protected as the incoming context: over budget
        assert store.get("a").is_resident
        assert store.get("b").is_resident
        # releasing the pin lets the budget be enforced again
        store.unpin("a")
        assert not store.get("a").is_resident

    def test_explicit_spill_refuses_pinned_context(self, tmp_path):
        store = ContextStore(storage_dir=tmp_path)
        store.add(_context("live", [1, 2, 3]))
        store.pin("live")
        with pytest.raises(ValueError):
            store.spill("live")
        store.unpin("live")
        store.spill("live")
        assert not store.get("live").is_resident

    def test_reload_respects_index_opt_out(self, tmp_path):
        """A context imported without fine indexes stays index-free across
        a spill/reload cycle (no surprise rebuild)."""
        config = AlayaDBConfig(context_store_budget_bytes=1)
        db = DB(config, storage_dir=tmp_path)
        snapshot_a = _context("plain", [1] * 24, seed=3).snapshot
        db.import_context([1] * 24, snapshot_a, context_id="plain", build_fine_indexes=False)
        snapshot_b = _context("other", [2] * 24, seed=4).snapshot
        db.import_context([2] * 24, snapshot_b, context_id="other", build_fine_indexes=False)
        assert not db.get_context("plain").is_resident  # spilled by the budget
        db.store_registry.ensure_resident("plain")
        assert db.num_pending_index_builds == 0
        assert db.build_pending() == 0
        assert not db.get_context("plain").has_fine_indexes

    def test_remove_spilled_context(self, tmp_path):
        store = ContextStore(storage_dir=tmp_path, kv_budget_bytes=1)
        store.add(_context("a", [1, 2, 3]))
        store.add(_context("b", [4, 5, 6], seed=1))
        assert not store.get("a").is_resident
        store.remove("a")
        assert "a" not in store
        assert not store.find_longest_prefix([1, 2]).is_hit


class TestDBBudgetIntegration:
    @pytest.fixture(scope="class")
    def budgeted(self, tmp_path_factory):
        model = TransformerModel(ModelConfig.tiny(seed=71))
        probe_db = DB(AlayaDBConfig())
        document_a = "first corpus about transactions and recovery. " * 20
        context = probe_db.prefill_and_import(model, document_a, context_id="probe")
        budget = int(context.kv_bytes * 1.5)
        config = AlayaDBConfig(
            window_initial_tokens=8,
            window_last_tokens=16,
            short_context_threshold=64,
            gpu_memory_budget_bytes=1,
            max_retrieved_tokens=64,
            context_store_budget_bytes=budget,
        )
        db = DB(config, storage_dir=tmp_path_factory.mktemp("spill"))
        document_b = "second corpus about vector search indexes!! " * 20
        db.prefill_and_import(model, document_a, context_id="a")
        db.prefill_and_import(model, document_b, context_id="b")
        return model, db, document_a, document_b

    def test_ingest_beyond_budget_spills(self, budgeted):
        _, db, _, _ = budgeted
        store = db.store_registry
        assert store.spill_count >= 1
        assert store.resident_kv_bytes <= db.config.context_store_budget_bytes

    def test_prefix_hit_reloads_and_generates(self, budgeted):
        model, db, document_a, _ = budgeted
        reloads_before = db.store_registry.reload_count
        session, truncated = db.create_session(document_a + " question?")
        assert session.is_connected
        assert session.context.is_resident
        loop = GenerationLoop(model)
        result = loop.run_tokens(truncated, cache=session, max_new_tokens=2)
        session.close()
        assert result.num_generated == 2
        # "a" was the cold context after "b" was ingested, so this was a reload
        assert db.store_registry.reload_count > reloads_before

    def test_buffer_stats_track_residency(self, budgeted):
        _, db, document_a, _ = budgeted
        db.create_session(document_a + " again")[0].close()
        stats = db.buffer_stats
        assert stats.misses > 0  # ingests and reloads populate the pool
        assert stats.num_accesses == stats.hits + stats.misses


class TestQuerySamplePersistence:
    """Spilled contexts must carry their prefill query samples to disk, so a
    reload rebuilds fine indexes from the same OOD sample — not the keys."""

    def test_samples_survive_spill_and_reload(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=101))
        db = DB(AlayaDBConfig(), storage_dir=tmp_path)
        document = "query samples should survive the round trip. " * 12
        context = db.prefill_and_import(model, document, context_id="doc")
        original = {layer: s.copy() for layer, s in context.query_samples.items()}
        assert original and all(s.size for s in original.values())

        db.store_registry.spill("doc")
        assert not context.query_samples  # dropped from memory with the KV
        reloaded = db.store_registry.ensure_resident("doc")
        assert set(reloaded.query_samples) == set(original)
        for layer, sample in original.items():
            np.testing.assert_allclose(reloaded.query_samples[layer], sample, atol=1e-7)

    def test_rebuild_after_reload_keeps_ood_sample(self, tmp_path):
        """The post-reload lazy rebuild must index with the persisted query
        sample: the rebuilt index equals a fresh build from those samples,
        not the keys-only fallback.  (With ``persist_fine_indexes`` off the
        reload cannot deserialize, so it exercises the rebuild path.)"""
        model = TransformerModel(ModelConfig.tiny(seed=103))
        db = DB(AlayaDBConfig(persist_fine_indexes=False), storage_dir=tmp_path)
        document = "the ood benefit must survive reloads too. " * 12
        context = db.prefill_and_import(model, document, context_id="doc")
        db.store_registry.spill("doc")
        db.store_registry.ensure_resident("doc")
        # the reload queued a lazy fine rebuild; drain it
        assert db.store_registry.reload_rebuilt_count == 1
        assert db.num_pending_index_builds == 1
        assert db.build_pending() == 1
        rebuilt = db.get_context("doc")
        assert rebuilt.has_fine_indexes
        # samples differ from keys, so a keys-fallback rebuild would see a
        # different query distribution; verify the sample really is distinct
        sample = rebuilt.query_samples[0]
        keys = rebuilt.keys(0)
        assert sample.shape[0] != keys.shape[0] or not np.allclose(
            sample[: keys.shape[0]], keys
        )

    def test_snapshot_serialization_roundtrips_samples(self, tmp_path):
        rng = np.random.default_rng(5)
        from repro.kvcache.serialization import load_snapshot, save_snapshot

        snapshot = _context("x", [1, 2, 3, 4], num_layers=2, seed=9).snapshot
        snapshot.query_samples = {
            0: rng.normal(size=(2, 3, 4)).astype(np.float32),
            1: rng.normal(size=(2, 5, 4)).astype(np.float32),
        }
        save_snapshot(snapshot, tmp_path, "x")
        loaded = load_snapshot(tmp_path, "x")
        assert set(loaded.query_samples) == {0, 1}
        for layer in (0, 1):
            np.testing.assert_allclose(
                loaded.query_samples[layer], snapshot.query_samples[layer], atol=1e-7
            )

    def test_chat_restored_context_keeps_merged_samples(self, tmp_path):
        """A stored chat turn merges the reused prefix's samples with the
        session's own, so the grown context keeps a full-transcript sample."""
        from repro.core.service import InferenceService

        model = TransformerModel(ModelConfig.tiny(seed=107))
        config = AlayaDBConfig(
            window_initial_tokens=8, window_last_tokens=16, short_context_threshold=1 << 20
        )
        service = InferenceService(model, config, storage_dir=tmp_path)
        chat = service.chat(max_new_tokens=3)
        chat.ask("the first turn writes history " * 6)
        first_len = {
            layer: s.shape[1]
            for layer, s in service.db.get_context(chat.context_id).query_samples.items()
        }
        chat.ask("the second turn extends it")
        context = service.db.get_context(chat.context_id)
        assert context.query_samples
        for layer, sample in context.query_samples.items():
            assert sample.shape[1] > first_len[layer]
