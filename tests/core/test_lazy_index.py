"""Tests of the lazy fine-index build mode (ingest off the critical path)."""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.db import DB
from repro.core.service import InferenceService
from repro.index.builder import IndexBuildConfig
from repro.llm.generation import GenerationLoop
from repro.llm.model import ModelConfig, TransformerModel


@pytest.fixture(scope="module")
def lazy_model():
    return TransformerModel(ModelConfig.tiny(seed=79))


def _lazy_config(**overrides):
    defaults = dict(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        max_retrieved_tokens=64,
        lazy_index_build=True,
    )
    defaults.update(overrides)
    return AlayaDBConfig(**defaults)


DOCUMENT = "a long reference document describing lazy construction. " * 20


class TestLazyImport:
    def test_import_defers_fine_indexes(self, lazy_model):
        db = DB(_lazy_config())
        context = db.prefill_and_import(lazy_model, DOCUMENT, context_id="doc")
        assert not context.has_fine_indexes
        assert context.coarse_indexes  # coarse stays eager (cheap)
        assert db.num_pending_index_builds == 1

    def test_explicit_override_beats_config(self, lazy_model):
        db = DB(AlayaDBConfig())
        context = db.prefill_and_import(
            lazy_model, DOCUMENT, context_id="doc", lazy_fine_indexes=True
        )
        assert not context.has_fine_indexes
        assert db.num_pending_index_builds == 1

    def test_first_sparse_decode_triggers_build(self, lazy_model):
        db = DB(_lazy_config())
        context = db.prefill_and_import(lazy_model, DOCUMENT, context_id="doc")
        session, truncated = db.create_session(DOCUMENT + " and a question")
        assert not context.has_fine_indexes  # still deferred after session setup
        loop = GenerationLoop(lazy_model)
        loop.run_tokens(truncated, cache=session, max_new_tokens=2)
        session.close()
        # the decode hit the sparse path, which built the pending indexes
        assert context.has_fine_indexes
        assert db.num_pending_index_builds == 0
        assert session.num_decode_steps >= 1
        assert session.last_decode_stats.num_heads > 0

    def test_build_pending_drains_explicitly(self, lazy_model):
        db = DB(_lazy_config())
        db.prefill_and_import(lazy_model, DOCUMENT, context_id="one")
        db.prefill_and_import(lazy_model, DOCUMENT + " extra tail", context_id="two")
        assert db.num_pending_index_builds == 2
        assert db.build_pending(limit=1) == 1
        assert db.num_pending_index_builds == 1
        assert db.build_pending() == 1
        assert db.num_pending_index_builds == 0
        assert db.get_context("one").has_fine_indexes
        assert db.get_context("two").has_fine_indexes

    def test_removed_context_dropped_from_pending(self, lazy_model):
        """Removing a context must not leave a stale pending-build entry."""
        db = DB(_lazy_config())
        db.prefill_and_import(lazy_model, DOCUMENT, context_id="doomed")
        assert db.num_pending_index_builds == 1
        db.store_registry.remove("doomed")
        assert db.num_pending_index_builds == 0
        assert db.build_pending() == 0  # no ContextNotFoundError
        assert db.buffer_manager.used_bytes == 0  # residency mirror purged

    def test_rebuild_indexes_uses_temporary_builder(self, lazy_model):
        """A one-off IndexBuildConfig must not replace the DB's builder."""
        db = DB(AlayaDBConfig())
        db.prefill_and_import(lazy_model, DOCUMENT, context_id="doc")
        original_builder = db._builder
        rebuilt = db.rebuild_indexes("doc", IndexBuildConfig(gqa_share=False))
        assert rebuilt is not None
        assert not rebuilt.shared  # the one-off config applied to this rebuild
        assert db._builder is original_builder  # ...without mutating the DB
        # a follow-up rebuild with no override uses the configured builder
        assert db.rebuild_indexes("doc").shared


class TestSchedulerDrainsBuilds:
    def test_between_steps_drains_pending(self, lazy_model):
        config = _lazy_config(scheduler_drain_index_builds=True)
        service = InferenceService(lazy_model, config)
        service.ingest(DOCUMENT, context_id="doc")
        assert service.db.num_pending_index_builds == 1
        # an unrelated request never touches the sparse path, so the build is
        # drained by the scheduler's between-step slack, not on demand
        service.serve("completely unrelated prompt", max_new_tokens=2)
        assert service.db.num_pending_index_builds == 0
        assert service.db.get_context("doc").has_fine_indexes
