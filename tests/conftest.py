"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context_store import StoredContext
from repro.kvcache.serialization import KVSnapshot
from repro.llm.model import ModelConfig, TransformerModel
from repro.workloads.generator import ScoringMode, WorkloadSpec, generate_workload


@pytest.fixture(scope="session")
def tiny_model() -> TransformerModel:
    """A deterministic tiny transformer shared across tests."""
    return TransformerModel(ModelConfig.tiny())


@pytest.fixture(scope="session")
def small_workload():
    """A small needle workload used by strategy/evaluation tests."""
    spec = WorkloadSpec(
        name="test-needle",
        context_length=1024,
        num_layers=1,
        num_query_heads=4,
        num_kv_heads=2,
        head_dim=16,
        num_decode_steps=3,
        num_evidence_tokens=2,
        scoring=ScoringMode.NEEDLE,
        seed=7,
    )
    return generate_workload(spec)


@pytest.fixture(scope="session")
def recovery_workload():
    """A small recovery-scored workload."""
    spec = WorkloadSpec(
        name="test-recovery",
        context_length=1024,
        num_layers=1,
        num_query_heads=4,
        num_kv_heads=2,
        head_dim=16,
        num_decode_steps=3,
        num_evidence_tokens=2,
        critical_fraction_low=0.02,
        critical_fraction_high=0.05,
        scoring=ScoringMode.RECOVERY,
        seed=11,
    )
    return generate_workload(spec)


def make_context(
    num_layers: int = 2,
    num_kv_heads: int = 2,
    num_tokens: int = 64,
    head_dim: int = 8,
    seed: int = 0,
    context_id: str = "ctx-test",
) -> StoredContext:
    """Build a StoredContext with random KV tensors (helper for unit tests)."""
    rng = np.random.default_rng(seed)
    keys = {
        layer: rng.normal(size=(num_kv_heads, num_tokens, head_dim)).astype(np.float32)
        for layer in range(num_layers)
    }
    values = {
        layer: rng.normal(size=(num_kv_heads, num_tokens, head_dim)).astype(np.float32)
        for layer in range(num_layers)
    }
    tokens = [int(t) for t in rng.integers(0, 255, size=num_tokens)]
    snapshot = KVSnapshot(tokens=tokens, keys=keys, values=values)
    return StoredContext(context_id=context_id, snapshot=snapshot)


@pytest.fixture()
def random_context() -> StoredContext:
    return make_context()
