"""Sharded-vs-unsharded equivalence grid.

Shards × plan kinds × GQA ratios, asserting two things:

* *decode outputs allclose* — the merged per-layer logits trajectory of a
  :class:`ShardedSession` matches an unsharded :class:`Session` over the
  same stored context, token for token;
* *generated tokens identical end-to-end* — a full request through the
  router/worker harness produces exactly the token stream the single-owner
  :class:`InferenceService` produces.

The flat and coarse cross-shard merges are exact by construction (global-best
re-filter and block-score concatenation respectively); the fine (DIPRS) merge
unions per-shard graph walks, which is bit-identical at one shard and
converges to the same retained set on these contexts at 2/4 shards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.db import DB
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.sharding import ShardedContextRouter
from repro.sharding.session import ShardedSession

pytestmark = pytest.mark.sharded

DOC = "the quick brown fox jumps over the lazy dog. " * 6
PROMPT = DOC + "what did the fox do?"
DECODE_FEED = [5, 17, 42, 7, 101]

NUM_SHARDS = [1, 2, 4]
PLAN_KINDS = ["flat", "coarse", "fine"]
GQA_SHAPES = [(4, 2), (8, 2)]


def make_config(plan_kind: str) -> AlayaDBConfig:
    """A config that forces the optimizer onto one index kind for every layer.

    The rule order is: short context → full; fits GPU budget → coarse top-k;
    otherwise DIPR (flat on ``flat_index_layers``, fine elsewhere).
    """
    kwargs = dict(
        short_context_threshold=128,
        coarse_block_size=32,
        coarse_num_blocks=4,
        window_initial_tokens=8,
        window_last_tokens=24,
        prefill_chunk_tokens=64,
    )
    if plan_kind == "flat":
        kwargs.update(gpu_memory_budget_bytes=1024, flat_index_layers=(0, 1))
    elif plan_kind == "fine":
        kwargs.update(gpu_memory_budget_bytes=1024, flat_index_layers=())
    # "coarse": the default 16 GiB budget keeps the coarse rule winning
    return AlayaDBConfig(**kwargs)


def make_model(heads: tuple[int, int]) -> TransformerModel:
    num_query_heads, num_kv_heads = heads
    return TransformerModel(
        ModelConfig(
            dim=32,
            num_layers=2,
            num_query_heads=num_query_heads,
            num_kv_heads=num_kv_heads,
            hidden_dim=64,
            seed=7,
        )
    )


def logits_trajectory(model, session, prefill_tokens, decode_feed):
    """Prefill the suffix, then decode a fixed token feed, stacking logits."""
    rows = []
    logits, _ = model.prefill(np.asarray(prefill_tokens, dtype=np.int64), session)
    rows.append(np.asarray(logits))
    for token in decode_feed:
        rows.append(np.asarray(model.decode_step(token, session)))
    return np.stack(rows)


@pytest.mark.parametrize("heads", GQA_SHAPES, ids=["gqa2", "gqa4"])
@pytest.mark.parametrize("plan_kind", PLAN_KINDS)
@pytest.mark.parametrize("num_shards", NUM_SHARDS)
def test_generated_tokens_identical_end_to_end(num_shards, plan_kind, heads):
    model = make_model(heads)
    service = InferenceService(model, make_config(plan_kind))
    service.db.prefill_and_import(model, DOC, context_id="ctx")
    expected, _ = service.serve(PROMPT, max_new_tokens=8)

    sharded_model = make_model(heads)
    router = ShardedContextRouter(sharded_model, num_workers=2, config=make_config(plan_kind))
    ref = router.ingest(DOC, context_id="ctx", num_shards=num_shards)
    assert ref.num_shards == num_shards
    result = router.generate("ctx", prompt=PROMPT, max_new_tokens=8)

    assert result.generated_tokens == expected.generated_tokens
    assert result.text == expected.text
    assert result.prompt_tokens == expected.prompt_tokens  # same truncation


@pytest.mark.parametrize("plan_kind", PLAN_KINDS)
@pytest.mark.parametrize("num_shards", NUM_SHARDS)
def test_decode_logits_allclose(num_shards, plan_kind):
    config = make_config(plan_kind)
    prompt_tokens = None

    model = make_model((4, 2))
    db = DB(config)
    db.prefill_and_import(model, DOC, context_id="ctx")
    prompt_tokens = db.tokenize(PROMPT)
    session, truncated = db.create_session(prompt_tokens)
    assert session.is_connected, "baseline must reuse the stored context"
    assert session.plan_for_layer(0).index_kind == plan_kind
    baseline = logits_trajectory(model, session, truncated, DECODE_FEED)
    session.close()

    sharded_model = make_model((4, 2))
    router = ShardedContextRouter(sharded_model, num_workers=2, config=make_config(plan_kind))
    ref = router.ingest(DOC, context_id="ctx", num_shards=num_shards)
    reused = ref.num_tokens
    assert prompt_tokens[:reused] == list(ref.tokens)
    sharded_session = ShardedSession(
        ref=ref, fanout=router, config=router.config, reused_prefix_length=reused
    )
    assert sharded_session.plan_for_layer(0).index_kind == plan_kind
    sharded = logits_trajectory(
        sharded_model, sharded_session, prompt_tokens[reused:], DECODE_FEED
    )
    sharded_session.close()

    # absolute tolerance carries the comparison: the suffix-prefill dense
    # path merges by log-sum-exp (vs the baseline's one concatenated
    # softmax), which reorders float32 ops even at one shard
    np.testing.assert_allclose(sharded, baseline, rtol=0, atol=1e-5)


@pytest.mark.parametrize("num_shards", [2, 4])
def test_full_reuse_prompt_matches_service(num_shards):
    """Prompt == stored tokens: the bos-driven first forward pass must match."""
    model = make_model((4, 2))
    service = InferenceService(model, make_config("coarse"))
    service.db.prefill_and_import(model, DOC, context_id="ctx")
    expected, _ = service.serve(DOC, max_new_tokens=6)

    sharded_model = make_model((4, 2))
    router = ShardedContextRouter(sharded_model, num_workers=2, config=make_config("coarse"))
    router.ingest(DOC, context_id="ctx", num_shards=num_shards)
    result = router.generate("ctx", max_new_tokens=6)
    assert result.generated_tokens == expected.generated_tokens
