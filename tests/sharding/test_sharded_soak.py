"""Sharded-serving soak: a seeded schedule of requests, rebalances and spills.

Drives the router/worker harness through the operations a rebalancing
deployment would see — generation against two sharded contexts, shard
reassignment to a cold spare worker, forced spills on shard owners, manifest
refreshes — and checks after every operation that generation still produces
exactly the token stream an unsharded :class:`InferenceService` produces for
the same prompt, and at the end that:

* every shard has exactly one owner, and the owner holds it resident;
* admission reservations sum to zero;
* the per-shard memory map accounts every shard of every context.

Marked ``slow`` + ``sharded``: the CI sharded job runs it alongside the
equivalence grid; tier-1 skips it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.sharding import ShardedContextRouter, WorkerGroup

pytestmark = [pytest.mark.slow, pytest.mark.sharded]

NUM_ROUNDS = 24

DOCS = {
    "ctx-a": "the quick brown fox jumps over the lazy dog. " * 10,
    "ctx-b": "pack my box with five dozen liquor jugs again. " * 8,
}
SUFFIXES = ["what did the fox do?", "who packed the box?", " and then it happened:"]


def _config() -> AlayaDBConfig:
    return AlayaDBConfig(
        short_context_threshold=128,
        coarse_block_size=32,
        coarse_num_blocks=4,
        window_initial_tokens=8,
        window_last_tokens=24,
        prefill_chunk_tokens=64,
        gpu_memory_budget_bytes=1024,  # force the DIPR (flat + fine) path
    )


def _model() -> TransformerModel:
    return TransformerModel(
        ModelConfig(dim=32, num_layers=2, num_query_heads=4, num_kv_heads=2, hidden_dim=64, seed=7)
    )


def test_sharded_soak():
    model = _model()
    group = WorkerGroup(model, config=_config(), num_workers=3)
    router = ShardedContextRouter(model, group=group)
    refs = {
        cid: router.ingest(doc, context_id=cid, num_shards=4) for cid, doc in DOCS.items()
    }

    baseline_model = _model()
    baseline = InferenceService(baseline_model, _config())
    for cid, doc in DOCS.items():
        baseline.db.prefill_and_import(baseline_model, doc, context_id=cid)

    rng = np.random.default_rng(1234)
    served = 0
    for round_id in range(NUM_ROUNDS):
        cid = rng.choice(list(DOCS))
        ref = refs[cid]
        action = rng.integers(0, 4)
        if action == 0:
            shard_id = int(rng.integers(0, ref.num_shards))
            worker_id = int(rng.integers(0, group.num_workers))
            router.reassign_shard(cid, shard_id, worker_id=worker_id)
        elif action == 1:
            shard_id = int(rng.integers(0, ref.num_shards))
            owner = router.shard_owner(cid, shard_id)
            owner.db.store_registry.spill(ref.shard_id_of(shard_id))
        elif action == 2:
            group.refresh()

        prompt = DOCS[cid] + SUFFIXES[int(rng.integers(0, len(SUFFIXES)))]
        expected, _ = baseline.serve(prompt, max_new_tokens=5)
        result = router.generate(cid, prompt=prompt, max_new_tokens=5)
        assert result.generated_tokens == expected.generated_tokens, (
            f"round {round_id}: sharded tokens diverged for {cid}"
        )
        served += 1

    assert served == NUM_ROUNDS
    assert router.admission.committed_bytes == 0

    report = router.memory_report()
    shards = report["shards"]
    expected_shards = {
        ref.shard_id_of(i) for ref in refs.values() for i in range(ref.num_shards)
    }
    assert set(shards) == expected_shards
    for shard_cid, row in shards.items():
        assert row["owner"] is not None, f"{shard_cid} lost its owner"
        owner = next(w for w in group.workers if w.name == row["owner"])
        assert shard_cid in owner.owned
        assert owner.db.store_registry.get(shard_cid).is_resident
        assert row["owner"] in row["resident_on"]
