"""Behavioral tests of the router/worker harness (placement, failover, memory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import AdmissionRejectedError, ContextNotFoundError
from repro.llm.model import ModelConfig, TransformerModel
from repro.sharding import ShardedContextRouter, WorkerGroup
from repro.storage.backend import InMemoryBackend

DOC = "the quick brown fox jumps over the lazy dog. " * 6
PROMPT = DOC + "what did the fox do?"


def make_config(**overrides) -> AlayaDBConfig:
    kwargs = dict(
        short_context_threshold=128,
        coarse_block_size=32,
        coarse_num_blocks=4,
        window_initial_tokens=8,
        window_last_tokens=24,
        prefill_chunk_tokens=64,
    )
    kwargs.update(overrides)
    return AlayaDBConfig(**kwargs)


def make_model(seed: int = 7) -> TransformerModel:
    return TransformerModel(
        ModelConfig(dim=32, num_layers=2, num_query_heads=4, num_kv_heads=2, hidden_dim=64, seed=seed)
    )


@pytest.fixture()
def router():
    return ShardedContextRouter(make_model(), num_workers=2, config=make_config())


class TestPlacement:
    def test_round_robin_assignment(self, router):
        ref = router.ingest(DOC, context_id="ctx", num_shards=4)
        for shard_id in range(ref.num_shards):
            owner = router.shard_owner("ctx", shard_id)
            assert owner is router.workers[shard_id % 2]
            assert ref.shard_id_of(shard_id) in owner.owned

    def test_ingest_frees_router_side_copies(self, router):
        router.ingest(DOC, context_id="ctx", num_shards=2)
        store = router.db.store_registry
        # ingest-side copies are spilled, durable objects + manifest rows stay
        assert store.resident_kv_bytes == 0
        for context_id, _ in store.items():
            assert router.backend.exists(f"{context_id}.npz")

    def test_unknown_context_raises(self, router):
        with pytest.raises(ContextNotFoundError):
            router.generate("nope")

    def test_shards_do_not_pollute_prefix_trie(self, router):
        ref = router.ingest(DOC, context_id="ctx", num_shards=2)
        # a prompt equal to the *second shard's* tokens must not prefix-match
        shard_tokens = list(ref.tokens[ref.plan.ranges[1].start :])
        for worker in router.workers:
            match = worker.db.store_registry.find_longest_prefix(shard_tokens)
            assert not match.is_hit
        # the base context stays matchable on the router's ingest DB
        match = router.db.store_registry.find_longest_prefix(list(ref.tokens))
        assert match.is_hit and match.context.context_id == "ctx"

    def test_shard_contexts_marked_unmatchable(self, router):
        ref = router.ingest(DOC, context_id="ctx", num_shards=2)
        for shard_id in range(ref.num_shards):
            shard_cid = ref.shard_id_of(shard_id)
            owner = router.shard_owner("ctx", shard_id)
            assert owner.db.store_registry.get(shard_cid).prefix_matchable is False


class TestFailover:
    def test_zero_shard_worker_cold_loads(self):
        """A worker that never saw a shard serves it straight from storage."""
        model = make_model()
        group = WorkerGroup(model, config=make_config(), num_workers=3)
        router = ShardedContextRouter(model, group=group)
        ref = router.ingest(DOC, context_id="ctx", num_shards=2)
        before = router.generate("ctx", prompt=PROMPT, max_new_tokens=6)

        spare = group.worker(2)
        assert not spare.owned
        assert "ctx--shard000" not in spare.db.store_registry

        router.reassign_shard("ctx", 0, worker_id=2)
        assert router.shard_owner("ctx", 0) is spare
        assert spare.db.store_registry.get(ref.shard_id_of(0)).is_resident

        after = router.generate("ctx", prompt=PROMPT, max_new_tokens=6)
        assert after.generated_tokens == before.generated_tokens

    def test_reassign_frees_previous_owner(self, router):
        ref = router.ingest(DOC, context_id="ctx", num_shards=2)
        old = router.shard_owner("ctx", 0)
        shard_cid = ref.shard_id_of(0)
        router.reassign_shard("ctx", 0, worker_id=1)
        assert shard_cid not in old.owned
        # the replica is spilled on the old owner, resident on the new one
        assert not old.db.store_registry.get(shard_cid).is_resident
        assert router.workers[1].db.store_registry.get(shard_cid).is_resident

    def test_serving_survives_spill_and_reload(self, router):
        ref = router.ingest(DOC, context_id="ctx", num_shards=2)
        before = router.generate("ctx", prompt=PROMPT, max_new_tokens=6)
        owner = router.shard_owner("ctx", 0)
        owner.db.store_registry.spill(ref.shard_id_of(0))
        after = router.generate("ctx", prompt=PROMPT, max_new_tokens=6)
        assert after.generated_tokens == before.generated_tokens


class TestAdmission:
    def test_over_budget_request_rejected(self):
        config = make_config(scheduler_gpu_budget_bytes=64)
        router = ShardedContextRouter(make_model(), num_workers=2, config=config)
        router.ingest(DOC, context_id="ctx", num_shards=2)
        with pytest.raises(AdmissionRejectedError):
            router.generate("ctx", prompt=PROMPT, max_new_tokens=8)
        assert router.admission.committed_bytes == 0

    def test_reservation_released_after_request(self, router):
        router.ingest(DOC, context_id="ctx", num_shards=2)
        router.generate("ctx", prompt=PROMPT, max_new_tokens=2)
        assert router.admission.committed_bytes == 0


class TestMemoryReport:
    def test_per_worker_and_per_shard_rows(self, router):
        ref = router.ingest(DOC, context_id="ctx", num_shards=4)
        report = router.memory_report()

        workers = report["workers"]
        assert set(workers) == {"worker-0", "worker-1"}
        for row in workers.values():
            assert row["num_owned_shards"] == 2
            assert row["resident_kv_bytes"] > 0
            assert row["used_bytes"] >= row["resident_kv_bytes"]

        shards = report["shards"]
        assert set(shards) == {ref.shard_id_of(i) for i in range(4)}
        for shard_cid, row in shards.items():
            assert row["context_id"] == "ctx"
            assert row["kv_bytes"] > 0
            assert row["owner"] == f"worker-{row['shard_id'] % 2}"
            assert row["owner"] in row["resident_on"]

        assert report["router"]["num_contexts"] == 1
        assert report["router"]["num_placed_shards"] == 4
        assert report["router"]["admission_committed_bytes"] == 0

    def test_service_per_context_report(self):
        model = make_model()
        service = InferenceService(model, make_config())
        service.db.prefill_and_import(model, DOC, context_id="ctx")
        report = service.memory_report(per_context=True)
        assert report["contexts"]["ctx"]["resident"] is True
        assert report["contexts"]["ctx"]["kv_bytes"] > 0
        assert report["contexts"]["ctx"]["pin_count"] == 0
        assert report["contexts"]["ctx"]["prefix_matchable"] is True
        # the flat report keys stay intact alongside the per-context map
        assert report["resident_kv_bytes"] > 0
        assert "contexts" not in service.memory_report()


class TestWorkerGroup:
    def test_shared_backend_across_workers(self):
        backend = InMemoryBackend()
        group = WorkerGroup(make_model(), config=make_config(), backend=backend, num_workers=2)
        assert all(worker.db.store_registry.backend is backend for worker in group.workers)

    def test_refresh_adopts_new_manifest_entries(self):
        model = make_model()
        group = WorkerGroup(model, config=make_config(), num_workers=2)
        router = ShardedContextRouter(model, group=group)
        ref = router.ingest(DOC, context_id="ctx", num_shards=2)
        group.refresh()
        for worker in group.workers:
            for shard_id in range(ref.num_shards):
                assert ref.shard_id_of(shard_id) in worker.db.store_registry
