"""Unit tests of the token-range partitioning layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.kvcache.serialization import KVSnapshot
from repro.sharding import (
    ShardPlan,
    ShardRange,
    parse_shard_id,
    shard_context_id,
    slice_snapshot,
)


class TestShardRange:
    def test_basic_properties(self):
        rng = ShardRange(shard_id=1, start=10, stop=20)
        assert rng.num_tokens == 10
        assert rng.contains(10) and rng.contains(19)
        assert not rng.contains(9) and not rng.contains(20)

    def test_to_local_and_slice_global(self):
        rng = ShardRange(shard_id=0, start=8, stop=16)
        positions = np.asarray([2, 8, 12, 15, 16, 30])
        inside = rng.slice_global(positions)
        np.testing.assert_array_equal(inside, [8, 12, 15])
        np.testing.assert_array_equal(rng.to_local(inside), [0, 4, 7])

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ReproError):
            ShardRange(shard_id=0, start=5, stop=5)
        with pytest.raises(ReproError):
            ShardRange(shard_id=-1, start=0, stop=5)


class TestShardPlan:
    def test_even_split_tiles_context(self):
        plan = ShardPlan.even(100, 4)
        assert plan.num_shards == 4
        assert plan.ranges[0].start == 0
        assert plan.ranges[-1].stop == 100
        for left, right in zip(plan.ranges, plan.ranges[1:]):
            assert left.stop == right.start

    def test_alignment_rounds_boundaries_down(self):
        plan = ShardPlan.even(100, 3, align=32)
        # raw boundaries 33, 66 round down to 32, 64
        assert [(r.start, r.stop) for r in plan.ranges] == [(0, 32), (32, 64), (64, 100)]

    def test_collapsed_boundaries_drop_shards(self):
        # every raw boundary of a 40-token, 4-way split (10/20/30) rounds
        # down to 0 under align=32 — one shard survives, never an empty one
        plan = ShardPlan.even(40, 4, align=32)
        assert plan.num_shards == 1
        assert all(r.num_tokens > 0 for r in plan.ranges)
        plan = ShardPlan.even(100, 3, align=32)
        assert all(r.num_tokens > 0 for r in plan.ranges)

    def test_by_token_range(self):
        plan = ShardPlan.by_token_range(256, 64)
        assert plan.num_shards == 4

    def test_shard_of_position_and_split(self):
        plan = ShardPlan.even(100, 4)
        for rng in plan.ranges:
            assert plan.shard_of_position(rng.start) == rng.shard_id
            assert plan.shard_of_position(rng.stop - 1) == rng.shard_id
        parts = plan.split_positions(np.arange(100))
        assert sum(p.shape[0] for p in parts) == 100
        with pytest.raises(ReproError):
            plan.shard_of_position(100)

    def test_gap_or_misordered_ranges_rejected(self):
        with pytest.raises(ReproError):
            ShardPlan(num_tokens=10, ranges=(ShardRange(0, 0, 4), ShardRange(1, 5, 10)))
        with pytest.raises(ReproError):
            ShardPlan(num_tokens=10, ranges=(ShardRange(1, 0, 5), ShardRange(0, 5, 10)))


class TestShardIds:
    def test_roundtrip(self):
        cid = shard_context_id("ctx-0001", 2)
        assert parse_shard_id(cid) == ("ctx-0001", 2)

    def test_non_shard_ids_return_none(self):
        assert parse_shard_id("ctx-0001") is None
        assert parse_shard_id("ctx--shardX") is None


class TestSliceSnapshot:
    def test_slices_kv_and_stamps_metadata(self):
        rng_np = np.random.default_rng(0)
        keys = {0: rng_np.normal(size=(2, 32, 4)).astype(np.float32)}
        values = {0: rng_np.normal(size=(2, 32, 4)).astype(np.float32)}
        samples = {0: rng_np.normal(size=(4, 3, 4)).astype(np.float32)}
        snapshot = KVSnapshot(
            tokens=list(range(32)), keys=keys, values=values, query_samples=samples
        )
        plan = ShardPlan.even(32, 2)
        shard = slice_snapshot(snapshot, plan.ranges[1], plan)
        assert shard.tokens == list(range(16, 32))
        np.testing.assert_array_equal(shard.keys[0], keys[0][:, 16:32, :])
        np.testing.assert_array_equal(shard.values[0], values[0][:, 16:32, :])
        # query samples describe the probing distribution — kept whole
        np.testing.assert_array_equal(shard.query_samples[0], samples[0])
        assert shard.metadata["shard_id"] == "1"
        assert shard.metadata["shard_start"] == "16"
        assert shard.metadata["shard_stop"] == "32"
        assert shard.metadata["shard_count"] == "2"
        assert shard.metadata["shard_total_tokens"] == "32"

    def test_range_beyond_snapshot_rejected(self):
        snapshot = KVSnapshot(tokens=[1, 2], keys={}, values={})
        plan = ShardPlan.even(8, 2)
        with pytest.raises(ReproError):
            slice_snapshot(snapshot, plan.ranges[1], plan)
