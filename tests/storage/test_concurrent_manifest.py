"""Two ContextStore handles interleaving writes over one shared manifest.

The durable tier has no cross-process lock: each save atomically replaces
the whole manifest (content is last-writer-wins at file granularity) with a
generation stamp that every ``save`` floors against the persisted value
before bumping.  These tests pin down the guarantees the sharded serving
harness (one writing router + N refreshing workers over one backend)
relies on:

* the persisted generation is strictly monotonic no matter how two writers
  interleave add/remove — a reader can always order observations;
* a writer that lost an interleaving race reopens to a *consistent*
  catalog: exactly the winner's manifest, never a torn mix;
* a writer that refreshes before writing (the cooperative protocol) keeps
  the other writer's entries, so refresh-then-write converges to the union;
* ``refresh_from_manifest`` adopts the other writer's contexts cold without
  disturbing local residency.
"""

from __future__ import annotations

import pytest

from repro.core.context_store import ContextStore
from repro.storage.backend import InMemoryBackend
from repro.storage.manifest import ContextManifest

from tests.conftest import make_context


@pytest.fixture()
def backend():
    return InMemoryBackend()


def _open_two(backend):
    return ContextStore.open(backend), ContextStore.open(backend)


class TestConcurrentManifestWriters:
    def test_generations_monotonic_across_interleaved_writers(self, backend):
        alpha, beta = _open_two(backend)
        observed = []
        for step in range(6):
            writer = alpha if step % 2 == 0 else beta
            writer.add(make_context(context_id=f"ctx-{step}", seed=step, num_tokens=16))
            observed.append(ContextManifest.load(backend).generation)
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed), "every save must bump the generation"
        # both handles floor against the persisted generation before bumping,
        # so neither can publish a stamp at or below one already observed —
        # even though each handle only saw half the saves
        assert ContextManifest.load(backend).generation == observed[-1]

    def test_losers_reopen_is_consistent_with_the_winning_save(self, backend):
        alpha, beta = _open_two(backend)
        alpha.add(make_context(context_id="shared", seed=1, num_tokens=16))
        beta.refresh_from_manifest()

        # interleave: alpha adds and removes without beta noticing; beta's
        # later save wins the file. Content is last-writer-wins wholesale:
        # beta never adopted alpha's interim entries, so they do not survive
        alpha.add(make_context(context_id="alpha-only", seed=2, num_tokens=16))
        alpha.remove("shared")
        beta.add(make_context(context_id="beta-only", seed=3, num_tokens=16))

        durable = ContextManifest.load(backend)
        assert set(durable.entries) == {"shared", "beta-only"}

        # the losing writer (alpha) reopens to exactly the winning catalog —
        # consistent with the durable state, not a torn mix of both histories
        reopened = ContextStore.open(backend)
        assert {context_id for context_id, _ in reopened.items()} == {"shared", "beta-only"}
        assert reopened.manifest_generation == durable.generation

    def test_refresh_before_write_converges_to_the_union(self, backend):
        alpha, beta = _open_two(backend)
        for step in range(4):
            # the cooperative protocol the router/worker harness uses: adopt
            # the other writer's entries before publishing your own
            alpha.refresh_from_manifest()
            alpha.add(make_context(context_id=f"a-{step}", seed=10 + step, num_tokens=16))
            beta.refresh_from_manifest()
            beta.add(make_context(context_id=f"b-{step}", seed=20 + step, num_tokens=16))
        reopened = ContextStore.open(backend)
        ids = {context_id for context_id, _ in reopened.items()}
        assert ids == {f"a-{i}" for i in range(4)} | {f"b-{i}" for i in range(4)}
        assert ContextManifest.load(backend).generation >= 8

    def test_refresh_adopts_without_disturbing_residency(self, backend):
        alpha, beta = _open_two(backend)
        mine = make_context(context_id="mine", seed=4, num_tokens=16)
        alpha.add(mine)
        assert alpha.get("mine").is_resident

        beta.refresh_from_manifest()
        beta.add(make_context(context_id="theirs", seed=5, num_tokens=16))
        adopted = alpha.refresh_from_manifest()
        assert adopted == ["theirs"]
        # the adopted entry is cold (loaded on first use); the local one is
        # untouched — same object, still resident
        assert not alpha.get("theirs").is_resident
        assert alpha.get("mine") is mine
        assert alpha.get("mine").is_resident
        # adopting again is a no-op
        assert alpha.refresh_from_manifest() == []
