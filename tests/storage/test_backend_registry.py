"""Backend-factory registry and list_keys key-prefix contract regressions."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.backend import (
    FilesystemBackend,
    InMemoryBackend,
    StorageBackend,
    available_backends,
    make_backend,
    register_backend,
    unregister_backend,
)


class TracingBackend(InMemoryBackend):
    """Toy backend: records the path its factory received."""

    def __init__(self, path=None):
        super().__init__()
        self.path = path


class TestBackendRegistry:
    def test_register_make_unregister_roundtrip(self):
        register_backend("tracing", TracingBackend)
        try:
            assert "tracing" in available_backends()
            backend = make_backend("tracing", "some/where")
            assert isinstance(backend, TracingBackend)
            assert backend.path == "some/where"
        finally:
            assert unregister_backend("tracing")
        assert "tracing" not in available_backends()
        assert not unregister_backend("tracing")  # idempotent

    def test_duplicate_registration_needs_overwrite(self):
        register_backend("dup", TracingBackend)
        try:
            with pytest.raises(StorageError):
                register_backend("dup", TracingBackend)
            register_backend("dup", TracingBackend, overwrite=True)
        finally:
            unregister_backend("dup")

    def test_builtins_protected(self):
        with pytest.raises(StorageError):
            register_backend("memory", TracingBackend)
        with pytest.raises(StorageError):
            unregister_backend("filesystem")
        with pytest.raises(StorageError):
            register_backend("", TracingBackend)

    def test_factory_must_return_backend(self):
        register_backend("broken", lambda path=None: object())
        try:
            with pytest.raises(StorageError):
                make_backend("broken")
        finally:
            unregister_backend("broken")

    def test_registered_backend_usable_by_config(self):
        # AlayaDBConfig validates storage_backend against the live registry
        from repro.core.config import AlayaDBConfig

        register_backend("toy", TracingBackend)
        try:
            config = AlayaDBConfig(storage_backend="toy")
            assert config.storage_backend == "toy"
        finally:
            unregister_backend("toy")
        with pytest.raises(Exception):
            AlayaDBConfig(storage_backend="toy")


@pytest.fixture(params=["filesystem", "memory"])
def backend(request, tmp_path) -> StorageBackend:
    if request.param == "filesystem":
        return FilesystemBackend(tmp_path / "db")
    return InMemoryBackend()


class TestListKeysPrefixContract:
    """``prefix`` is a string prefix of the *key*, never a directory filter."""

    def test_prefix_spans_directory_boundaries(self, backend):
        backend.write_bytes("ctx-1.npz", b"a")
        backend.write_bytes("ctx-1/part-0.npz", b"b")
        backend.write_bytes("ctx-10.npz", b"c")
        backend.write_bytes("ctx-2.npz", b"d")
        assert backend.list_keys("ctx-1") == [
            "ctx-1.npz",
            "ctx-1/part-0.npz",
            "ctx-10.npz",
        ]
        assert backend.total_bytes("ctx-1") == 3

    def test_nested_keys_listed_with_posix_separators(self, backend):
        backend.write_bytes("a/b/c.bin", b"xy")
        backend.write_bytes("a/b.bin", b"z")
        assert backend.list_keys("a/") == ["a/b.bin", "a/b/c.bin"]
        assert backend.list_keys("a/b/") == ["a/b/c.bin"]
        assert backend.total_bytes("a/") == 3

    def test_key_merely_ending_in_tmp_stays_visible(self, backend):
        # only the atomic-write temps (".<name>.*.tmp") are hidden
        backend.write_bytes("snapshot.tmp", b"legit")
        assert backend.list_keys() == ["snapshot.tmp"]
        assert backend.total_bytes() == 5

    def test_empty_prefix_lists_everything(self, backend):
        backend.write_bytes("x", b"1")
        backend.write_bytes("dir/y", b"2")
        assert backend.list_keys() == ["dir/y", "x"]

    def test_escaping_keys_rejected_not_listed(self, tmp_path):
        backend = FilesystemBackend(tmp_path / "root")
        (tmp_path / "outside.bin").write_bytes(b"secret")
        with pytest.raises(StorageError):
            backend.write_bytes("../outside2.bin", b"x")
        with pytest.raises(StorageError):
            backend.read_bytes("../outside.bin")
        backend.write_bytes("inside.bin", b"ok")
        assert backend.list_keys() == ["inside.bin"]
