"""Tests of the durable-tier storage backends and the persistent manifest."""

from __future__ import annotations

import json

import pytest

from repro.errors import ContextLoadError, StorageError
from repro.storage.backend import FilesystemBackend, InMemoryBackend, make_backend
from repro.storage.manifest import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_KEY,
    ContextManifest,
    ManifestEntry,
)


@pytest.fixture(params=["filesystem", "memory"])
def backend(request, tmp_path):
    if request.param == "filesystem":
        return FilesystemBackend(tmp_path / "db")
    return InMemoryBackend()


class TestBackendContract:
    """Both backends must satisfy the same blob-store contract."""

    def test_write_read_roundtrip(self, backend):
        backend.write_bytes("a.npz", b"hello")
        assert backend.read_bytes("a.npz") == b"hello"
        assert backend.exists("a.npz")
        assert backend.size_bytes("a.npz") == 5

    def test_overwrite_replaces(self, backend):
        backend.write_bytes("k", b"old")
        backend.write_bytes("k", b"newer")
        assert backend.read_bytes("k") == b"newer"

    def test_missing_key_raises_context_load_error(self, backend):
        with pytest.raises(ContextLoadError):
            backend.read_bytes("absent")
        assert not backend.exists("absent")
        assert backend.size_bytes("absent") == 0

    def test_delete(self, backend):
        backend.write_bytes("k", b"x")
        assert backend.delete("k")
        assert not backend.exists("k")
        assert not backend.delete("k")  # idempotent no-op

    def test_list_keys_prefix_and_order(self, backend):
        for key in ("ctx-2.npz", "ctx-1.npz", "ctx-1.indexes.npz", "manifest.json"):
            backend.write_bytes(key, b"x")
        assert backend.list_keys("ctx-") == ["ctx-1.indexes.npz", "ctx-1.npz", "ctx-2.npz"]
        assert backend.list_keys() == sorted(backend.list_keys())

    def test_total_bytes(self, backend):
        backend.write_bytes("a", b"12")
        backend.write_bytes("b", b"3456")
        backend.write_bytes("other", b"7")
        assert backend.total_bytes() == 7
        assert backend.total_bytes("a") == 2


class TestFilesystemBackend:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        for i in range(5):
            backend.write_bytes("blob", b"v%d" % i)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert backend.read_bytes("blob") == b"v4"

    def test_list_keys_skips_temp_files(self, tmp_path):
        backend = FilesystemBackend(tmp_path)
        backend.write_bytes("real", b"x")
        (tmp_path / ".real.abc123.tmp").write_bytes(b"torn write")
        assert backend.list_keys() == ["real"]

    def test_key_escape_rejected(self, tmp_path):
        backend = FilesystemBackend(tmp_path / "root")
        with pytest.raises(StorageError):
            backend.write_bytes("../escape", b"x")

    def test_location_is_root(self, tmp_path):
        assert FilesystemBackend(tmp_path).location == str(tmp_path)


class TestMakeBackend:
    def test_filesystem_requires_path(self):
        with pytest.raises(StorageError):
            make_backend("filesystem")

    def test_kinds(self, tmp_path):
        assert isinstance(make_backend("filesystem", tmp_path), FilesystemBackend)
        assert isinstance(make_backend("memory"), InMemoryBackend)
        with pytest.raises(StorageError):
            make_backend("s3")


def _entry(cid="ctx-0000", tokens=(1, 2, 3)):
    return ManifestEntry(
        context_id=cid,
        tokens=list(tokens),
        num_layers=2,
        kv_bytes=4096,
        snapshot_key=f"{cid}.npz",
        index_key=f"{cid}.indexes.npz",
        index_bytes=512,
        metadata={"source": "test"},
    )


class TestManifest:
    def test_roundtrip(self, backend):
        manifest = ContextManifest()
        manifest.upsert(_entry("ctx-0000", [1, 2, 3]))
        manifest.upsert(_entry("ctx-0001", [4, 5]))
        manifest.save(backend)

        loaded = ContextManifest.load(backend)
        assert len(loaded) == 2
        entry = loaded.get("ctx-0000")
        assert entry.tokens == [1, 2, 3]
        assert entry.num_layers == 2
        assert entry.snapshot_key == "ctx-0000.npz"
        assert entry.index_key == "ctx-0000.indexes.npz"
        assert entry.metadata == {"source": "test"}
        assert entry.num_tokens == 3

    def test_generation_bumps_and_survives_reopen(self, backend):
        manifest = ContextManifest()
        manifest.upsert(_entry())
        assert manifest.save(backend) == 1
        assert manifest.save(backend) == 2
        reopened = ContextManifest.load(backend)
        assert reopened.generation == 2
        # the reopened manifest continues the sequence, not resets it
        assert reopened.save(backend) == 3

    def test_load_or_empty_on_fresh_storage(self, backend):
        manifest = ContextManifest.load_or_empty(backend)
        assert len(manifest) == 0
        assert manifest.generation == 0

    def test_corrupted_manifest_raises(self, backend):
        backend.write_bytes(MANIFEST_KEY, b"{not json")
        with pytest.raises(ContextLoadError):
            ContextManifest.load(backend)
        with pytest.raises(ContextLoadError):
            ContextManifest.load_or_empty(backend)  # corruption is not "empty"

    def test_unknown_format_version_raises(self, backend):
        payload = {"format_version": MANIFEST_FORMAT_VERSION + 1, "generation": 1, "contexts": []}
        backend.write_bytes(MANIFEST_KEY, json.dumps(payload).encode())
        with pytest.raises(ContextLoadError):
            ContextManifest.load(backend)

    def test_malformed_entry_raises(self):
        with pytest.raises(ContextLoadError):
            ManifestEntry.from_json({"context_id": "x"})  # missing required fields

    def test_remove(self, backend):
        manifest = ContextManifest()
        manifest.upsert(_entry("gone"))
        assert manifest.remove("gone")
        assert not manifest.remove("gone")
        assert "gone" not in manifest
