"""Tests of the vector file system, blocks and buffer manager."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BlockNotFoundError, BufferPoolExhaustedError, StorageError
from repro.storage.blocks import BlockId, BlockType, DataBlock, IndexBlock
from repro.storage.buffer_manager import BufferManager
from repro.storage.filesystem import VectorFileKey, VectorFileSystem
from repro.storage.io_model import IOModel
from repro.storage.vector_file import VectorFile


def _vectors(n=100, dim=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim)).astype(np.float32)


def _data_block(number=0, n=10, start=0, seed=0):
    return DataBlock(
        block_id=BlockId("file", number),
        start_position=start,
        vectors=_vectors(n, seed=seed),
    )


class TestBlocks:
    def test_data_block_lookup(self):
        block = _data_block(n=10, start=20)
        assert block.contains(25)
        assert not block.contains(30)
        np.testing.assert_array_equal(block.vector_at(20), block.vectors[0])
        with pytest.raises(IndexError):
            block.vector_at(31)

    def test_index_block_lookup(self):
        block = IndexBlock(
            block_id=BlockId("file", 0),
            start_node=5,
            neighbor_lists=[np.asarray([1, 2]), np.asarray([3])],
        )
        assert block.num_nodes == 2
        np.testing.assert_array_equal(block.neighbors_of(6), [3])
        with pytest.raises(IndexError):
            block.neighbors_of(10)


class TestVectorFile:
    def test_append_and_read_all(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8, block_capacity=16)
        vectors = _vectors(40)
        file.append_vectors(vectors)
        assert file.num_vectors == 40
        assert file.num_data_blocks == 3
        np.testing.assert_allclose(file.read_all_vectors(), vectors, atol=1e-6)

    def test_incremental_append_tops_up_last_block(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8, block_capacity=16)
        file.append_vectors(_vectors(10))
        file.append_vectors(_vectors(10, seed=1))
        assert file.num_data_blocks == 2
        assert file.num_vectors == 20

    def test_read_by_position(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8, block_capacity=7)
        vectors = _vectors(30)
        file.append_vectors(vectors)
        out = file.read_vectors(np.asarray([0, 13, 29]))
        np.testing.assert_allclose(out, vectors[[0, 13, 29]], atol=1e-6)

    def test_out_of_range_position(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8)
        file.append_vectors(_vectors(5))
        with pytest.raises(BlockNotFoundError):
            file.read_vectors(np.asarray([10]))

    def test_adjacency_roundtrip(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8)
        file.append_vectors(_vectors(5))
        adjacency = [[1, 2], [0], [0, 1], [4], []]
        file.write_adjacency(adjacency, nodes_per_block=2)
        restored = file.read_adjacency()
        assert [list(a) for a in restored] == adjacency

    def test_manifest_persistence(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8, block_capacity=16)
        file.append_vectors(_vectors(20))
        reopened = VectorFile(tmp_path, "head0", dim=8)
        assert reopened.num_vectors == 20
        with pytest.raises(StorageError):
            VectorFile(tmp_path, "head0", dim=4)

    def test_dimension_check(self, tmp_path):
        file = VectorFile(tmp_path, "head0", dim=8)
        with pytest.raises(StorageError):
            file.append_vectors(_vectors(5, dim=4))

    def test_delete(self, tmp_path):
        file = VectorFile(tmp_path, "gone", dim=8)
        file.append_vectors(_vectors(5))
        file.delete()
        assert not (tmp_path / "gone").exists()


class TestBufferManager:
    def test_hit_miss_accounting(self):
        pool = BufferManager(capacity_bytes=10**6)
        block = _data_block()
        pool.get(block.block_id, loader=lambda: block)
        pool.get(block.block_id)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_eviction_prefers_data_blocks(self):
        block_bytes = _data_block().nbytes
        pool = BufferManager(capacity_bytes=block_bytes * 3 + 100)
        index_block = IndexBlock(BlockId("f", 100), 0, [np.arange(block_bytes // 4, dtype=np.int32)])
        pool.put(index_block)
        pool.put(_data_block(number=0))
        pool.put(_data_block(number=1))
        pool.put(_data_block(number=2))  # forces eviction
        assert str(index_block.block_id) in pool
        assert pool.stats.evictions >= 1

    def test_pinned_blocks_never_evicted(self):
        block_bytes = _data_block().nbytes
        pool = BufferManager(capacity_bytes=block_bytes * 2 + 10)
        pool.put(_data_block(number=0), pin=True)
        pool.put(_data_block(number=1))
        pool.put(_data_block(number=2))
        assert BlockId("file", 0) in pool

    def test_oversized_block_rejected(self):
        pool = BufferManager(capacity_bytes=10)
        with pytest.raises(BufferPoolExhaustedError):
            pool.put(_data_block())

    def test_all_pinned_pool_exhausted(self):
        block_bytes = _data_block().nbytes
        pool = BufferManager(capacity_bytes=block_bytes + 10)
        pool.put(_data_block(number=0), pin=True)
        with pytest.raises(BufferPoolExhaustedError):
            pool.put(_data_block(number=1))

    def test_unpin_allows_eviction(self):
        block_bytes = _data_block().nbytes
        pool = BufferManager(capacity_bytes=block_bytes + 10)
        pool.put(_data_block(number=0), pin=True)
        pool.unpin(BlockId("file", 0))
        pool.put(_data_block(number=1))
        assert BlockId("file", 1) in pool

    def test_missing_loader_raises(self):
        pool = BufferManager()
        with pytest.raises(BufferPoolExhaustedError):
            pool.get("nope")

    def test_concurrent_access(self):
        pool = BufferManager(capacity_bytes=10**7)
        errors = []

        def worker(worker_id):
            try:
                for i in range(50):
                    block = _data_block(number=worker_id * 100 + i, seed=worker_id)
                    pool.put(block)
                    pool.get(block.block_id)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    @settings(deadline=None, max_examples=20)
    @given(capacity_blocks=st.integers(min_value=1, max_value=8), inserts=st.integers(min_value=1, max_value=30))
    def test_property_used_bytes_never_exceed_capacity(self, capacity_blocks, inserts):
        block_bytes = _data_block().nbytes
        pool = BufferManager(capacity_bytes=block_bytes * capacity_blocks + 1)
        for i in range(inserts):
            pool.put(_data_block(number=i))
            assert pool.used_bytes <= pool.capacity_bytes

    def test_used_bytes_counter_matches_frames(self):
        """The maintained counter agrees with a recount after every operation."""
        block_bytes = _data_block().nbytes
        pool = BufferManager(capacity_bytes=block_bytes * 4 + 1)

        def recount():
            return sum(frame.nbytes for frame in pool._frames.values())

        for i in range(6):  # wraps: forces evictions
            pool.put(_data_block(number=i))
            assert pool.used_bytes == recount()
        pool.put(_data_block(number=3))  # replacement of a resident block
        assert pool.used_bytes == recount()
        assert pool.remove(BlockId("file", 3))
        assert not pool.remove(BlockId("file", 3))
        assert pool.used_bytes == recount()
        pool.clear()
        assert pool.used_bytes == 0

    def test_concurrent_misses_load_once(self):
        """Two threads missing the same block must run the loader only once."""
        pool = BufferManager(capacity_bytes=10**6)
        load_count = 0
        barrier = threading.Barrier(2)
        results = []

        def loader():
            nonlocal load_count
            load_count += 1
            import time

            time.sleep(0.05)  # widen the race window
            return _data_block(number=42)

        def worker():
            barrier.wait()
            results.append(pool.get(BlockId("file", 42), loader=loader))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert load_count == 1
        assert len(results) == 2
        assert results[0] is results[1]
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_failed_loader_releases_inflight_slot(self):
        pool = BufferManager(capacity_bytes=10**6)

        def broken():
            raise RuntimeError("backing storage offline")

        with pytest.raises(RuntimeError):
            pool.get(BlockId("file", 7), loader=broken)
        # the failure did not wedge the single-flight slot: a retry succeeds
        block = pool.get(BlockId("file", 7), loader=lambda: _data_block(number=7))
        assert block.block_id == BlockId("file", 7)


class TestVectorFileSystem:
    def test_store_and_gather(self, tmp_path):
        fs = VectorFileSystem(tmp_path, block_capacity=16)
        keys = np.random.default_rng(0).normal(size=(2, 40, 8)).astype(np.float32)
        values = np.random.default_rng(1).normal(size=(2, 40, 8)).astype(np.float32)
        fs.store_context_layer("ctx", 0, keys, values)
        assert len(fs.list_files()) == 4
        out = fs.read_vectors(VectorFileKey("ctx", 0, 1, "key"), np.asarray([0, 17, 39]))
        np.testing.assert_allclose(out, keys[1][[0, 17, 39]], atol=1e-6)
        assert fs.io.stats.num_writes > 0
        assert fs.io.stats.num_reads > 0

    def test_buffer_reuse_avoids_repeated_io(self, tmp_path):
        fs = VectorFileSystem(tmp_path, block_capacity=64)
        keys = np.random.default_rng(0).normal(size=(1, 64, 8)).astype(np.float32)
        fs.write_head_vectors(VectorFileKey("ctx", 0, 0, "key"), keys[0])
        fs.read_vectors(VectorFileKey("ctx", 0, 0, "key"), np.asarray([1]))
        reads_after_first = fs.io.stats.num_reads
        fs.read_vectors(VectorFileKey("ctx", 0, 0, "key"), np.asarray([2, 3]))
        assert fs.io.stats.num_reads == reads_after_first  # served from the buffer

    def test_adjacency_through_fs(self, tmp_path):
        fs = VectorFileSystem(tmp_path)
        key = VectorFileKey("ctx", 0, 0, "key")
        fs.write_head_vectors(key, _vectors(10))
        fs.write_head_adjacency(key, [[1], [0, 2], [1], [4], [3], [6], [5], [8], [7], [0]])
        np.testing.assert_array_equal(fs.read_adjacency(key, 1), [0, 2])

    def test_unopened_file_raises(self, tmp_path):
        fs = VectorFileSystem(tmp_path)
        with pytest.raises(StorageError):
            fs.read_vectors(VectorFileKey("ctx", 0, 0, "key"), np.asarray([0]))

    def test_spdk_io_model_is_faster(self):
        spdk = IOModel(use_spdk=True)
        kernel = IOModel(use_spdk=False)
        assert spdk.record_read(4096) < kernel.record_read(4096)
