"""Tests of the multi-tenant policy layer: DRR fairness, quotas, backpressure.

Unit tests drive :class:`TenantGovernor` directly (a synthetic admission loop
around ``select``/``on_admitted``); integration tests run it inside a real
:class:`RequestScheduler` over the model-free ``FakeBackend`` and inside a
full :class:`InferenceService`.
"""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import ConfigError, TenantThrottledError, UnknownTenantError
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import (
    DEFAULT_TENANT,
    AdmissionController,
    FCFSPolicy,
    Request,
    RequestScheduler,
    RequestState,
    SLOAwarePolicy,
    TenantGovernor,
    TenantSpec,
)
from repro.simulator.slo import SLO

from test_scheduler import FakeBackend


def _request(request_id, tenant, num_tokens=4, max_new_tokens=4, **kwargs):
    return Request(
        request_id=request_id,
        prompt_tokens=list(range(num_tokens)),
        max_new_tokens=max_new_tokens,
        tenant=tenant,
        **kwargs,
    )


class TestTenantSpec:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="")
        with pytest.raises(ConfigError):
            TenantSpec(name="a", weight=0)
        with pytest.raises(ConfigError):
            TenantSpec(name="a", max_inflight=0)
        with pytest.raises(ConfigError):
            TenantSpec(name="a", max_queued=-1)
        with pytest.raises(ConfigError):
            TenantSpec(name="a", reserved_bytes_budget=0)

    def test_governor_rejects_duplicates_and_bad_quantum(self):
        with pytest.raises(ConfigError):
            TenantGovernor(specs=[TenantSpec(name="a"), TenantSpec(name="a")])
        with pytest.raises(ConfigError):
            TenantGovernor(quantum_tokens=0)


class TestResolve:
    def test_strict_rejects_unknown(self):
        governor = TenantGovernor(specs=[TenantSpec(name="a")], strict=True)
        assert governor.resolve("a").name == "a"
        with pytest.raises(UnknownTenantError):
            governor.resolve("mystery")

    def test_auto_registers_with_default_spec_limits(self):
        governor = TenantGovernor(
            default_spec=TenantSpec(name=DEFAULT_TENANT, max_queued=7)
        )
        spec = governor.resolve("new-tenant")
        assert spec.name == "new-tenant"
        assert spec.max_queued == 7
        assert "new-tenant" in governor.known_tenants()

    def test_none_maps_to_default(self):
        governor = TenantGovernor()
        assert governor.resolve(None).name == DEFAULT_TENANT


def _drain_admissions(governor, queue, rounds, refill=None):
    """Synthetic admission loop: select, admit, optionally refill the backlog."""
    policy = FCFSPolicy()
    admitted = []
    for _ in range(rounds):
        index = governor.select(queue, policy, now=0.0)
        if index is None:
            break
        request = queue.pop(index)
        governor.on_admitted(request, reserved_bytes=10)
        admitted.append(request)
        # model the request finishing immediately (frees quota for the next)
        stats = governor.stats(request.tenant)
        stats.inflight -= 1
        stats.reserved_bytes -= 10
        if refill is not None:
            queue.append(refill(request))
    return admitted


class TestDeficitRoundRobin:
    def test_admitted_share_matches_weights(self):
        """Saturated 3:1 tenants split admissions exactly 3:1 (cost == quantum x 1)."""
        governor = TenantGovernor(
            specs=[TenantSpec(name="a", weight=3), TenantSpec(name="b", weight=1)],
            quantum_tokens=8,
        )
        counter = [0]

        def refill(request):
            counter[0] += 1
            return _request(1000 + counter[0], request.tenant)

        queue = [_request(i, "a" if i % 2 else "b") for i in range(8)]
        admitted = _drain_admissions(governor, queue, rounds=80, refill=refill)
        share_a = sum(1 for r in admitted if r.tenant == "a")
        share_b = sum(1 for r in admitted if r.tenant == "b")
        assert share_a + share_b == 80
        assert share_a / share_b == pytest.approx(3.0, rel=0.1)

    def test_large_request_saves_deficit_across_cycles(self):
        """A request costlier than one quantum is admitted after enough visits,
        not starved forever and not admitted on credit."""
        governor = TenantGovernor(
            specs=[TenantSpec(name="big"), TenantSpec(name="small")], quantum_tokens=8
        )
        queue = [
            _request(1, "big", num_tokens=20, max_new_tokens=4),  # cost 24 = 3 quanta
            _request(2, "small"),  # cost 8 = 1 quantum
        ]
        policy = FCFSPolicy()
        order = []
        for _ in range(4):
            index = governor.select(queue, policy, now=0.0)
            if index is None:
                continue
            request = queue.pop(index)
            governor.on_admitted(request, reserved_bytes=0)
            governor.stats(request.tenant).inflight -= 1
            order.append(request.request_id)
        # small admits on its first visit; big needs three replenishments
        assert order == [2, 1]

    def test_idle_tenant_deficit_resets(self):
        governor = TenantGovernor(
            specs=[TenantSpec(name="a"), TenantSpec(name="b")], quantum_tokens=100
        )
        queue = [_request(1, "a")]
        assert governor.select(queue, FCFSPolicy(), now=0.0) == 0
        # b has no backlog: its deficit must stay reset, not accumulate
        assert governor.stats("b").deficit_tokens == 0.0

    def test_quota_blocked_tenant_is_skipped_without_replenishment(self):
        governor = TenantGovernor(
            specs=[TenantSpec(name="a", max_inflight=1), TenantSpec(name="b")],
            quantum_tokens=8,
        )
        governor.stats("a").inflight = 1  # a is at quota
        queue = [_request(1, "a"), _request(2, "b")]
        for _ in range(5):
            index = governor.select(queue, FCFSPolicy(), now=0.0)
            assert queue[index].tenant == "b"  # only b is eligible
        # being blocked earned a no credit to burst with later
        assert governor.stats("a").deficit_tokens == 0.0

    def test_returns_none_when_every_backlogged_tenant_is_blocked(self):
        governor = TenantGovernor(specs=[TenantSpec(name="a", max_inflight=1)])
        governor.stats("a").inflight = 1
        queue = [_request(1, "a")]
        assert governor.select(queue, FCFSPolicy(), now=0.0) is None

    def test_byte_budget_blocks_admission(self):
        governor = TenantGovernor(
            specs=[TenantSpec(name="a", reserved_bytes_budget=100)]
        )
        governor.stats("a").reserved_bytes = 100
        queue = [_request(1, "a")]
        assert governor.select(queue, FCFSPolicy(), now=0.0) is None

    def test_intra_tenant_order_uses_wrapped_policy(self):
        """Inside one tenant's slice the SLO policy still picks urgency."""
        governor = TenantGovernor(specs=[TenantSpec(name="a")], quantum_tokens=64)
        relaxed = _request(1, "a", slo=SLO(ttft_seconds=60.0))
        urgent = _request(2, "a", slo=SLO(ttft_seconds=0.01))
        for request in (relaxed, urgent):
            request.submitted_at = 0.0
        queue = [relaxed, urgent]
        index = governor.select(queue, SLOAwarePolicy(), now=0.1)
        assert queue[index] is urgent

    def test_adopts_tenants_submitted_around_the_governor(self):
        governor = TenantGovernor()
        queue = [_request(1, "stranger")]
        index = governor.select(queue, FCFSPolicy(), now=0.0)
        assert index == 0
        assert "stranger" in governor.known_tenants()


class TestBackpressure:
    def test_throttles_at_max_queued(self):
        governor = TenantGovernor(specs=[TenantSpec(name="a", max_queued=2)])
        governor.check_backpressure("a", queued=1)  # under the limit: fine
        with pytest.raises(TenantThrottledError) as excinfo:
            governor.check_backpressure("a", queued=2)
        error = excinfo.value
        assert error.tenant == "a"
        assert error.queue_depth == 2
        assert error.queue_position == 3
        assert error.retry_after_seconds >= 1.0
        assert governor.stats("a").throttled == 1

    def test_no_limit_never_throttles(self):
        governor = TenantGovernor(specs=[TenantSpec(name="a")])
        governor.check_backpressure("a", queued=10_000)


class TestSchedulerIntegration:
    def _scheduler(self, governor, max_inflight=1):
        backend = FakeBackend(chunk_tokens=8)
        scheduler = RequestScheduler(
            backend=backend,
            policy=FCFSPolicy(),
            admission=AdmissionController(),
            max_inflight=max_inflight,
            tenants=governor,
        )
        return backend, scheduler

    def test_weighted_fairness_under_saturation(self):
        """A saturated scheduler serves tenants proportionally to weight."""
        governor = TenantGovernor(
            specs=[TenantSpec(name="gold", weight=3), TenantSpec(name="bronze", weight=1)],
            quantum_tokens=8,
        )
        backend, scheduler = self._scheduler(governor, max_inflight=2)
        for i in range(40):
            scheduler.submit(_request(i + 1, "gold" if i % 2 else "bronze"))
        # run until half the work is done; the share so far shows the order
        while scheduler.stats.completed < 20:
            scheduler.step()
        gold = governor.stats("gold")
        bronze = governor.stats("bronze")
        assert gold.completed + bronze.completed >= 20
        assert gold.completed / max(bronze.completed, 1) == pytest.approx(3.0, rel=0.25)
        scheduler.drain()
        # both tenants fully served in the end; counters consistent
        assert gold.completed == 20
        assert bronze.completed == 20
        assert gold.inflight == bronze.inflight == 0
        assert gold.reserved_bytes == bronze.reserved_bytes == 0
        assert gold.tokens_served == bronze.tokens_served > 0

    def test_max_inflight_quota_caps_a_tenant(self):
        governor = TenantGovernor(
            specs=[TenantSpec(name="capped", max_inflight=1), TenantSpec(name="free")]
        )
        backend, scheduler = self._scheduler(governor, max_inflight=4)
        for i in range(4):
            scheduler.submit(_request(i + 1, "capped", num_tokens=32))
        for i in range(2):
            scheduler.submit(_request(10 + i, "free", num_tokens=32))
        scheduler.step()
        assert governor.stats("capped").inflight == 1
        assert governor.stats("free").inflight == 2
        scheduler.drain()
        assert governor.stats("capped").completed == 4

    def test_cancel_updates_tenant_counters(self):
        governor = TenantGovernor()
        backend, scheduler = self._scheduler(governor, max_inflight=1)
        running = _request(1, "t", num_tokens=32)
        queued = _request(2, "t", num_tokens=32)
        scheduler.submit(running)
        scheduler.submit(queued)
        scheduler.step()
        assert scheduler.cancel(running.request_id)
        assert scheduler.cancel(queued.request_id)
        stats = governor.stats("t")
        assert stats.cancelled == 2
        assert stats.inflight == 0
        assert stats.reserved_bytes == 0


def _service(tmp_path, **config_kwargs):
    model = TransformerModel(ModelConfig.tiny())
    config = AlayaDBConfig(**config_kwargs)
    return InferenceService(model, config, storage_dir=tmp_path)


class TestServiceIntegration:
    def test_governance_off_by_default(self, tmp_path):
        service = _service(tmp_path)
        assert service.tenants is None
        assert "tenants" not in service.memory_report()

    def test_memory_report_has_tenant_rows(self, tmp_path):
        service = _service(tmp_path, tenant_fairness=True)
        service.submit("hello alpha", max_new_tokens=2, tenant="alpha").result()
        service.submit("hello default", max_new_tokens=2).result()
        rows = service.memory_report()["tenants"]
        assert rows["alpha"]["completed"] == 1
        assert rows["alpha"]["tokens_served"] == 2
        assert rows[DEFAULT_TENANT]["completed"] == 1
        assert rows["alpha"]["inflight"] == 0
        assert service.stats.tenant_rows()["alpha"]["completed"] == 1

    def test_strict_tenants_reject_unknown(self, tmp_path):
        service = _service(
            tmp_path,
            strict_tenants=True,
            tenants=(TenantSpec(name="declared"),),
        )
        service.submit("fine", max_new_tokens=1, tenant="declared").result()
        with pytest.raises(UnknownTenantError):
            service.submit("nope", max_new_tokens=1, tenant="undeclared")

    def test_backpressure_throttles_submissions(self, tmp_path):
        service = _service(
            tmp_path,
            tenants=(TenantSpec(name="busy", max_queued=2),),
            max_inflight_requests=1,
        )
        # one in flight + two queued; the next submission must throttle
        handles = [
            service.submit("prompt %d" % i, max_new_tokens=4, tenant="busy")
            for i in range(2)
        ]
        service.step()  # admit the first so the queue frees a slot
        handles.append(service.submit("prompt 2", max_new_tokens=4, tenant="busy"))
        with pytest.raises(TenantThrottledError) as excinfo:
            service.submit("one too many", max_new_tokens=4, tenant="busy")
        assert excinfo.value.queue_position == 3
        assert service.stats.throttled == 1
        assert service.memory_report()["tenants"]["busy"]["throttled_429"] == 1
        service.drain()
        for handle in handles:
            assert handle.status == RequestState.FINISHED

    def test_default_tenant_queue_limit(self, tmp_path):
        service = _service(tmp_path, tenant_default_max_queued=1, max_inflight_requests=1)
        service.submit("a", max_new_tokens=2)  # queue depth 0 at submit: fine
        with pytest.raises(TenantThrottledError):
            service.submit("b", max_new_tokens=2)  # depth 1 == limit: throttled
        service.drain()
