"""Serving-path correctness tests: batched decode through the service,
zero-token requests, mid-round session-setup failures, EOS termination,
wall-clock TTFT accounting, result retention, and preemption end to end."""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import ConfigError, RequestFailedError
from repro.llm.model import ModelConfig, TransformerModel
from repro.llm.tokenizer import ByteTokenizer, SpecialTokens
from repro.scheduler import RequestState
from repro.simulator.slo import BATCH_SLO, SLO

SPARSE_CONFIG = dict(
    window_initial_tokens=8,
    window_last_tokens=16,
    short_context_threshold=64,
    gpu_memory_budget_bytes=1,
    max_retrieved_tokens=64,
)


def _make_service(seed=71, **overrides):
    model = TransformerModel(ModelConfig.tiny(seed=seed))
    return InferenceService(model, AlayaDBConfig(**overrides))


class TestZeroAndOneTokenRequests:
    def test_zero_max_new_tokens_through_submit_drain(self):
        service = _make_service()
        request_id = service.submit("a prompt that wants no completion", max_new_tokens=0)
        service.drain()
        result, record = service.result(request_id)
        assert result.generated_tokens == []
        assert record.generated_tokens == 0
        assert record.ttft_seconds > 0  # prefill still ran

    def test_one_max_new_token_through_submit_drain(self):
        service = _make_service()
        request_id = service.submit("a prompt that wants one token", max_new_tokens=1)
        service.drain()
        result, record = service.result(request_id)
        assert result.num_generated == 1
        assert record.generated_tokens == 1

    def test_negative_max_new_tokens_rejected_at_submit(self):
        service = _make_service()
        with pytest.raises(ValueError):
            service.submit("bad request", max_new_tokens=-3)


class TestBeginRequestFailureThroughService:
    def test_other_requests_survive_a_setup_failure(self, monkeypatch):
        service = _make_service()
        original = service.db.create_session
        calls = {"n": 0}

        def flaky_create_session(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("snapshot vanished from disk")
            return original(*args, **kwargs)

        monkeypatch.setattr(service.db, "create_session", flaky_create_session)
        ids = [service.submit(f"request number {i}", max_new_tokens=2) for i in range(3)]
        service.drain()
        ok_a, failed, ok_b = ids
        assert service.result(ok_a)[0].num_generated == 2
        assert service.result(ok_b)[0].num_generated == 2
        with pytest.raises(RequestFailedError, match="snapshot vanished"):
            service.result(failed)
        assert service.stats.failed == 1
        assert service.scheduler.stats.failed == 1
        # the failed request's reservation was released
        assert service.scheduler.admission.committed_bytes == 0

    def test_serve_surfaces_the_failure(self, monkeypatch):
        service = _make_service()

        def broken_create_session(*args, **kwargs):
            raise RuntimeError("session setup exploded")

        monkeypatch.setattr(service.db, "create_session", broken_create_session)
        with pytest.raises(RequestFailedError, match="session setup exploded"):
            service.serve("doomed request", max_new_tokens=2)


class TestEOSThroughScheduler:
    def test_eos_terminates_a_scheduled_request(self):
        # discover what the model greedily emits, then rebrand the second
        # generated token as EOS for a fresh service over the same weights
        probe = _make_service(seed=73)
        probe_id = probe.submit("the same deterministic prompt", max_new_tokens=4)
        probe.drain()
        tokens = probe.result(probe_id)[0].generated_tokens
        assert len(tokens) == 4

        service = _make_service(seed=73)
        service.loop.tokenizer = ByteTokenizer(special=SpecialTokens(eos=tokens[1]))
        request_id = service.submit("the same deterministic prompt", max_new_tokens=10)
        service.drain()
        result, record = service.result(request_id)
        assert result.finished_by_eos
        assert result.num_generated == 2  # stopped at the rebranded EOS
        assert record.generated_tokens == 2


class TestTTFTAccounting:
    def test_wall_clock_ttft_includes_parked_time(self):
        """With two interleaved chunked prefills, each request's wall-clock
        first-token latency must exceed its own prefill compute."""
        service = _make_service(prefill_chunk_tokens=16, max_inflight_requests=2)
        prompt = "a deliberately long prompt to force several prefill chunks. " * 8
        ids = [service.submit(prompt + str(i), max_new_tokens=1) for i in range(2)]
        service.drain()
        for request_id in ids:
            _, record = service.result(request_id)
            assert record.prefill_compute_seconds > 0
            assert record.ttft_seconds > record.prefill_compute_seconds

    def test_single_request_ttft_close_to_compute(self):
        service = _make_service(prefill_chunk_tokens=10_000)
        request_id = service.submit("a short prompt", max_new_tokens=1)
        service.drain()
        _, record = service.result(request_id)
        assert record.ttft_seconds >= record.prefill_compute_seconds


class TestResultRetention:
    def test_results_just_past_the_retention_cap(self):
        service = _make_service()
        service.MAX_RETAINED_RESULTS = 3
        ids = [service.submit(f"prompt {i}", max_new_tokens=1) for i in range(4)]
        service.drain()
        assert service.result(ids[0]) is None  # evicted, oldest first
        for request_id in ids[1:]:
            assert service.result(request_id) is not None


class TestBatchedDecodeThroughService:
    def test_batched_and_unbatched_generations_match(self):
        prompts = [f"shared weights, request {i}, distinct suffix" for i in range(3)]
        outputs = []
        for batching in (True, False):
            service = _make_service(decode_batching=batching, max_inflight_requests=4)
            ids = [service.submit(p, max_new_tokens=4) for p in prompts]
            service.drain()
            outputs.append([service.result(i)[0].generated_tokens for i in ids])
        assert outputs[0] == outputs[1]

    def test_batched_calls_counted(self):
        service = _make_service(max_inflight_requests=4)
        for i in range(3):
            service.submit(f"count my batches {i}", max_new_tokens=3)
        service.drain()
        assert service.scheduler.stats.batched_decode_calls > 0


class TestPreemptionThroughService:
    def test_preemption_requires_slo_policy(self):
        with pytest.raises(ConfigError):
            AlayaDBConfig(preemption=True, scheduler_policy="fcfs")

    def test_critical_arrival_preempts_and_victim_recovers(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=79))
        config = AlayaDBConfig(
            scheduler_policy="slo",
            preemption=True,
            max_inflight_requests=1,
            **SPARSE_CONFIG,
        )
        service = InferenceService(model, config, storage_dir=tmp_path)
        document = "a long stored reference the victim request reads from. " * 20
        service.ingest(document, context_id="doc")
        prompt = service.db.tokenizer.decode(service.db.get_context("doc").tokens)

        victim_id = service.submit(prompt + " victim", max_new_tokens=12, slo=BATCH_SLO)
        service.step()  # victim admitted and prefilling
        critical_id = service.submit(
            "an urgent unrelated question", max_new_tokens=2, slo=SLO(ttft_seconds=0.05)
        )
        service.step()
        victim = next(
            fl for fl in service.scheduler.preempted_requests()
            if fl.request.request_id == victim_id.request_id
        )
        assert victim.request.state == RequestState.PREEMPTED
        # the victim's stored context was unpinned: the store may spill it now
        service.db.store_registry.spill("doc")
        assert "doc" not in service.db.store_registry.resident_ids()

        service.drain()
        # both finished; the victim's context was transparently reloaded
        assert service.result(critical_id)[0].num_generated == 2
        victim_result, victim_record = service.result(victim_id)
        assert victim_result.num_generated == 12
        assert victim_record.preemptions == 1
        assert victim_record.reused_tokens > 0
        assert service.scheduler.stats.preemptions == 1
        assert service.scheduler.stats.resumes == 1
        assert "doc" in service.db.store_registry.resident_ids()
