"""Tests of the request scheduler: policies, admission control, step loop,
and the InferenceService serving path built on top of them."""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import AdmissionRejectedError
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import (
    AdmissionController,
    AdmissionDecision,
    FCFSPolicy,
    InFlightRequest,
    Request,
    RequestScheduler,
    RequestState,
    SLOAwarePolicy,
    make_policy,
)
from repro.simulator.slo import BATCH_SLO, INTERACTIVE_SLO, SLO


class FakeBackend:
    """A model-free backend: prefill consumes chunks, decode emits token 1."""

    def __init__(self, chunk_tokens=4, bytes_per_request=100):
        self.chunk_tokens = chunk_tokens
        self.bytes_per_request = bytes_per_request
        self.begun: list[int] = []
        self.finished: list[int] = []
        self.rejected: list[int] = []
        self.between_steps_calls = 0

    def estimate_request_bytes(self, request):
        return self.bytes_per_request

    def begin_request(self, request):
        self.begun.append(request.request_id)
        return InFlightRequest(
            request=request, session=None, pending_tokens=list(request.prompt_tokens)
        )

    def prefill_chunk(self, inflight):
        del inflight.pending_tokens[: self.chunk_tokens]
        if not inflight.pending_tokens:
            inflight.generated.append(1)

    def decode_step(self, inflight):
        inflight.generated.append(1)

    def finish_request(self, inflight):
        self.finished.append(inflight.request.request_id)

    def reject_request(self, request):
        self.rejected.append(request.request_id)

    def between_steps(self):
        self.between_steps_calls += 1


def _request(request_id, num_tokens=4, **kwargs):
    return Request(request_id=request_id, prompt_tokens=list(range(num_tokens)), **kwargs)


class TestPolicies:
    def test_make_policy(self):
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("slo"), SLOAwarePolicy)
        with pytest.raises(ValueError):
            make_policy("round-robin")

    def test_fcfs_selects_head(self):
        queue = [_request(1), _request(2)]
        assert FCFSPolicy().select(queue, now=0.0) == 0

    def test_slo_aware_prefers_tight_deadline(self):
        batch = _request(1, slo=BATCH_SLO)
        interactive = _request(2, slo=INTERACTIVE_SLO)
        for r in (batch, interactive):
            r.submitted_at = 0.0
        assert SLOAwarePolicy().select([batch, interactive], now=0.1) == 1

    def test_slo_aware_priority_dominates_slack(self):
        urgent_deadline = _request(1, slo=SLO(ttft_seconds=0.01))
        prioritized = _request(2, priority=5)
        for r in (urgent_deadline, prioritized):
            r.submitted_at = 0.0
        assert SLOAwarePolicy().select([urgent_deadline, prioritized], now=0.1) == 1

    def test_slo_aware_falls_back_to_arrival(self):
        first = _request(1)
        second = _request(2)
        first.arrival_order, second.arrival_order = 0, 1
        assert SLOAwarePolicy().select([second, first], now=0.0) == 1


class TestAdmissionController:
    def test_unbounded_always_admits(self):
        controller = AdmissionController(budget_bytes=None)
        assert controller.try_admit(10**12) == AdmissionDecision.ADMIT

    def test_oversized_request_rejected(self):
        controller = AdmissionController(budget_bytes=100)
        assert controller.try_admit(101) == AdmissionDecision.REJECT
        assert controller.committed_bytes == 0

    def test_defer_until_release(self):
        controller = AdmissionController(budget_bytes=100)
        assert controller.try_admit(60) == AdmissionDecision.ADMIT
        assert controller.try_admit(60) == AdmissionDecision.DEFER
        controller.release(60)
        assert controller.try_admit(60) == AdmissionDecision.ADMIT
        assert controller.stats.deferral_attempts == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            AdmissionController(budget_bytes=0)


class TestRequestScheduler:
    def test_fcfs_runs_in_arrival_order(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=1)
        for i in (1, 2, 3):
            scheduler.submit(_request(i))
        scheduler.drain()
        assert backend.begun == [1, 2, 3]
        assert backend.finished == [1, 2, 3]

    def test_holds_four_inflight(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = RequestScheduler(backend, max_inflight=4)
        for i in range(6):
            scheduler.submit(_request(i + 1, num_tokens=8))
        scheduler.step()
        assert scheduler.num_inflight == 4
        assert scheduler.queue_depth == 2
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2, 3, 4, 5, 6]

    def test_interleaves_prefill_and_decode(self):
        """A short request finishes while a long prefill is still in flight."""
        backend = FakeBackend(chunk_tokens=2)
        scheduler = RequestScheduler(backend, max_inflight=2)
        scheduler.submit(_request(1, num_tokens=40, max_new_tokens=1))
        scheduler.submit(_request(2, num_tokens=2, max_new_tokens=1))
        scheduler.drain()
        assert backend.finished[0] == 2
        assert backend.finished[-1] == 1
        assert scheduler.stats.prefill_chunks > scheduler.stats.decode_steps

    def test_admission_rejection_and_deferral(self):
        backend = FakeBackend()
        backend.bytes_per_request = 80
        scheduler = RequestScheduler(
            backend, admission=AdmissionController(budget_bytes=100), max_inflight=4
        )
        requests = [_request(i + 1, max_new_tokens=2) for i in range(3)]
        for request in requests:
            scheduler.submit(request)
        scheduler.step()
        # only one 80-byte request fits the 100-byte budget at a time
        assert scheduler.num_inflight == 1
        assert scheduler.stats.deferrals >= 1
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2, 3]
        assert backend.rejected == []

        backend.bytes_per_request = 101  # can never fit
        rejected = _request(9)
        scheduler.submit(rejected)
        scheduler.drain()
        assert backend.rejected == [9]
        assert rejected.state == RequestState.REJECTED

    def test_deferrals_count_unique_requests(self):
        """A request re-tried every step counts as one deferral, not many."""
        backend = FakeBackend()
        backend.bytes_per_request = 80
        scheduler = RequestScheduler(
            backend, admission=AdmissionController(budget_bytes=100), max_inflight=4
        )
        scheduler.submit(_request(1, num_tokens=40, max_new_tokens=1))  # long-running
        scheduler.submit(_request(2, max_new_tokens=1))  # waits on budget
        waiting = scheduler.queued_requests()[-1]
        for _ in range(5):
            scheduler.step()
        assert waiting.state == RequestState.DEFERRED
        assert scheduler.stats.deferrals == 1
        assert scheduler.admission.stats.deferral_attempts >= 5
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2]

    def test_between_steps_drains_when_enabled(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, drain_index_builds=True)
        scheduler.submit(_request(1, max_new_tokens=1))
        scheduler.drain()
        assert backend.between_steps_calls > 0

        quiet = FakeBackend()
        RequestScheduler(quiet, drain_index_builds=False).step()
        assert quiet.between_steps_calls == 0

    def test_request_states_progress(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend)
        request = _request(1, max_new_tokens=1)
        scheduler.submit(request)
        assert request.state == RequestState.QUEUED
        scheduler.drain()
        assert request.state == RequestState.FINISHED


@pytest.fixture(scope="module")
def concurrent_service():
    model = TransformerModel(ModelConfig.tiny(seed=53))
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        max_retrieved_tokens=64,
        max_inflight_requests=4,
        prefill_chunk_tokens=64,
    )
    service = InferenceService(model, config)
    service.ingest("a reference corpus about scheduling policies. " * 20, context_id="doc")
    return service


class TestServiceScheduling:
    def test_submit_step_drain(self, concurrent_service):
        service = concurrent_service
        document = service.db.get_context("doc")
        prompt = service.db.tokenizer.decode(document.tokens) + " tell me more"
        ids = [service.submit(prompt, max_new_tokens=2) for _ in range(5)]
        service.step()
        assert service.scheduler.num_inflight == 4  # the fifth waits its turn
        service.drain()
        for request_id in ids:
            result, record = service.result(request_id)
            assert result.num_generated == 2
            assert record.reused_tokens > 0

    def test_serve_wrapper_still_works(self, concurrent_service):
        result, record = concurrent_service.serve("an unrelated question", max_new_tokens=2)
        assert result.num_generated == 2
        assert record.reused_tokens == 0
        assert concurrent_service.result(record.request_id) is not None

    def test_chunked_prefill_matches_unchunked_generation(self):
        """Splitting prefill into chunks must not change greedy decode output."""
        model = TransformerModel(ModelConfig.tiny(seed=59))
        prompt = "the quick brown fox jumps over the lazy dog. " * 4
        outputs = []
        for chunk in (8, 10_000):
            config = AlayaDBConfig(prefill_chunk_tokens=chunk)
            service = InferenceService(model, config)
            result, _ = service.serve(prompt, max_new_tokens=4)
            outputs.append(result.generated_tokens)
        assert outputs[0] == outputs[1]

    def test_admission_rejection_surfaces(self):
        model = TransformerModel(ModelConfig.tiny(seed=61))
        config = AlayaDBConfig(scheduler_gpu_budget_bytes=8)  # nothing fits
        service = InferenceService(model, config)
        with pytest.raises(AdmissionRejectedError):
            service.serve("far too large for the budget", max_new_tokens=2)
        assert service.stats.rejected == 1

    def test_slo_policy_orders_admission(self):
        model = TransformerModel(ModelConfig.tiny(seed=67))
        config = AlayaDBConfig(scheduler_policy="slo", max_inflight_requests=1)
        service = InferenceService(model, config)
        service.submit("batch style request", max_new_tokens=1, slo=BATCH_SLO)
        urgent = service.submit("urgent request", max_new_tokens=1, slo=INTERACTIVE_SLO)
        finished = service.drain()
        assert finished[0][1].request_id == urgent
