"""Tests of the request scheduler: policies, admission control, step loop,
and the InferenceService serving path built on top of them."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import AdmissionRejectedError
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import (
    AdmissionController,
    AdmissionDecision,
    FCFSPolicy,
    InFlightRequest,
    Request,
    RequestScheduler,
    RequestState,
    SLOAwarePolicy,
    make_policy,
)
from repro.simulator.slo import BATCH_SLO, INTERACTIVE_SLO, SLO


class FakeBackend:
    """A model-free backend: prefill consumes chunks, decode emits token 1."""

    def __init__(self, chunk_tokens=4, bytes_per_request=100):
        self.chunk_tokens = chunk_tokens
        self.bytes_per_request = bytes_per_request
        self.bytes_overrides: dict[int, int] = {}
        """Per-request-id overrides of ``bytes_per_request``."""
        self.preempted_bytes = 0
        """What ``preempted_request_bytes`` reports a paused request retains."""
        self.begun: list[int] = []
        self.finished: list[int] = []
        self.rejected: list[int] = []
        self.failed: list[int] = []
        self.preempted: list[int] = []
        self.resumed: list[int] = []
        self.fail_request_ids: set[int] = set()
        """Requests whose ``begin_request`` raises (for failure-path tests)."""
        self.batch_sizes: list[int] = []
        """Size of every ``decode_batch`` call the scheduler issued."""
        self.between_steps_calls = 0

    def estimate_request_bytes(self, request):
        return self.bytes_overrides.get(request.request_id, self.bytes_per_request)

    def preempted_request_bytes(self, inflight):
        return self.preempted_bytes

    def begin_request(self, request):
        if request.request_id in self.fail_request_ids:
            raise RuntimeError(f"session setup exploded for {request.request_id}")
        self.begun.append(request.request_id)
        return InFlightRequest(
            request=request, session=None, pending_tokens=list(request.prompt_tokens)
        )

    def prefill_chunk(self, inflight):
        del inflight.pending_tokens[: self.chunk_tokens]
        if not inflight.pending_tokens and inflight.request.max_new_tokens > 0:
            inflight.generated.append(1)

    def decode_step(self, inflight):
        inflight.generated.append(1)

    def decode_batch(self, inflights):
        self.batch_sizes.append(len(inflights))
        for inflight in inflights:
            inflight.generated.append(1)

    def finish_request(self, inflight):
        self.finished.append(inflight.request.request_id)

    def reject_request(self, request):
        self.rejected.append(request.request_id)

    def fail_request(self, request, error):
        self.failed.append(request.request_id)

    def preempt_request(self, inflight):
        self.preempted.append(inflight.request.request_id)

    def resume_request(self, inflight):
        self.resumed.append(inflight.request.request_id)

    def between_steps(self):
        self.between_steps_calls += 1


def _request(request_id, num_tokens=4, **kwargs):
    return Request(request_id=request_id, prompt_tokens=list(range(num_tokens)), **kwargs)


class TestPolicies:
    def test_make_policy(self):
        assert isinstance(make_policy("fcfs"), FCFSPolicy)
        assert isinstance(make_policy("slo"), SLOAwarePolicy)
        with pytest.raises(ValueError):
            make_policy("round-robin")

    def test_fcfs_selects_head(self):
        queue = [_request(1), _request(2)]
        assert FCFSPolicy().select(queue, now=0.0) == 0

    def test_slo_aware_prefers_tight_deadline(self):
        batch = _request(1, slo=BATCH_SLO)
        interactive = _request(2, slo=INTERACTIVE_SLO)
        for r in (batch, interactive):
            r.submitted_at = 0.0
        assert SLOAwarePolicy().select([batch, interactive], now=0.1) == 1

    def test_slo_aware_priority_dominates_slack(self):
        urgent_deadline = _request(1, slo=SLO(ttft_seconds=0.01))
        prioritized = _request(2, priority=5)
        for r in (urgent_deadline, prioritized):
            r.submitted_at = 0.0
        assert SLOAwarePolicy().select([urgent_deadline, prioritized], now=0.1) == 1

    def test_slo_aware_falls_back_to_arrival(self):
        first = _request(1)
        second = _request(2)
        first.arrival_order, second.arrival_order = 0, 1
        assert SLOAwarePolicy().select([second, first], now=0.0) == 1


class TestAdmissionController:
    def test_unbounded_always_admits(self):
        controller = AdmissionController(budget_bytes=None)
        assert controller.try_admit(10**12) == AdmissionDecision.ADMIT

    def test_oversized_request_rejected(self):
        controller = AdmissionController(budget_bytes=100)
        assert controller.try_admit(101) == AdmissionDecision.REJECT
        assert controller.committed_bytes == 0

    def test_defer_until_release(self):
        controller = AdmissionController(budget_bytes=100)
        assert controller.try_admit(60) == AdmissionDecision.ADMIT
        assert controller.try_admit(60) == AdmissionDecision.DEFER
        controller.release(60)
        assert controller.try_admit(60) == AdmissionDecision.ADMIT
        assert controller.stats.deferral_attempts == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            AdmissionController(budget_bytes=0)


class TestRequestScheduler:
    def test_fcfs_runs_in_arrival_order(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=1)
        for i in (1, 2, 3):
            scheduler.submit(_request(i))
        scheduler.drain()
        assert backend.begun == [1, 2, 3]
        assert backend.finished == [1, 2, 3]

    def test_holds_four_inflight(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = RequestScheduler(backend, max_inflight=4)
        for i in range(6):
            scheduler.submit(_request(i + 1, num_tokens=8))
        scheduler.step()
        assert scheduler.num_inflight == 4
        assert scheduler.queue_depth == 2
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2, 3, 4, 5, 6]

    def test_interleaves_prefill_and_decode(self):
        """A short request finishes while a long prefill is still in flight."""
        backend = FakeBackend(chunk_tokens=2)
        scheduler = RequestScheduler(backend, max_inflight=2)
        scheduler.submit(_request(1, num_tokens=40, max_new_tokens=1))
        scheduler.submit(_request(2, num_tokens=2, max_new_tokens=1))
        scheduler.drain()
        assert backend.finished[0] == 2
        assert backend.finished[-1] == 1
        assert scheduler.stats.prefill_chunks > scheduler.stats.decode_steps

    def test_admission_rejection_and_deferral(self):
        backend = FakeBackend()
        backend.bytes_per_request = 80
        scheduler = RequestScheduler(
            backend, admission=AdmissionController(budget_bytes=100), max_inflight=4
        )
        requests = [_request(i + 1, max_new_tokens=2) for i in range(3)]
        for request in requests:
            scheduler.submit(request)
        scheduler.step()
        # only one 80-byte request fits the 100-byte budget at a time
        assert scheduler.num_inflight == 1
        assert scheduler.stats.deferrals >= 1
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2, 3]
        assert backend.rejected == []

        backend.bytes_per_request = 101  # can never fit
        rejected = _request(9)
        scheduler.submit(rejected)
        scheduler.drain()
        assert backend.rejected == [9]
        assert rejected.state == RequestState.REJECTED

    def test_deferrals_count_unique_requests(self):
        """A request re-tried every step counts as one deferral, not many."""
        backend = FakeBackend()
        backend.bytes_per_request = 80
        scheduler = RequestScheduler(
            backend, admission=AdmissionController(budget_bytes=100), max_inflight=4
        )
        scheduler.submit(_request(1, num_tokens=40, max_new_tokens=1))  # long-running
        scheduler.submit(_request(2, max_new_tokens=1))  # waits on budget
        waiting = scheduler.queued_requests()[-1]
        for _ in range(5):
            scheduler.step()
        assert waiting.state == RequestState.DEFERRED
        assert scheduler.stats.deferrals == 1
        assert scheduler.admission.stats.deferral_attempts >= 5
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2]

    def test_between_steps_drains_when_enabled(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, drain_index_builds=True)
        scheduler.submit(_request(1, max_new_tokens=1))
        scheduler.drain()
        assert backend.between_steps_calls > 0

        quiet = FakeBackend()
        RequestScheduler(quiet, drain_index_builds=False).step()
        assert quiet.between_steps_calls == 0

    def test_request_states_progress(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend)
        request = _request(1, max_new_tokens=1)
        scheduler.submit(request)
        assert request.state == RequestState.QUEUED
        scheduler.drain()
        assert request.state == RequestState.FINISHED


class TestBatchedDecode:
    def test_decode_ready_requests_share_one_batch(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=4)
        for i in range(3):
            scheduler.submit(_request(i + 1, num_tokens=4, max_new_tokens=3))
        scheduler.drain()
        # step 1: all three prefill; steps 2-3: all three decode in one batch
        assert backend.batch_sizes == [3, 3]
        assert scheduler.stats.batched_decode_calls == 2
        assert scheduler.stats.decode_steps == 6
        assert sorted(backend.finished) == [1, 2, 3]

    def test_single_decode_request_skips_batching(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=4)
        scheduler.submit(_request(1, num_tokens=4, max_new_tokens=3))
        scheduler.drain()
        assert backend.batch_sizes == []
        assert scheduler.stats.batched_decode_calls == 0
        assert scheduler.stats.decode_steps == 2

    def test_batching_disabled_falls_back_to_per_request(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=4, decode_batching=False)
        for i in range(3):
            scheduler.submit(_request(i + 1, num_tokens=4, max_new_tokens=3))
        scheduler.drain()
        assert backend.batch_sizes == []
        assert scheduler.stats.decode_steps == 6
        assert sorted(backend.finished) == [1, 2, 3]

    def test_backend_without_decode_batch_still_works(self):
        backend = FakeBackend()
        del FakeBackend.decode_batch  # simulate a legacy backend
        try:
            scheduler = RequestScheduler(backend, max_inflight=4)
            for i in range(2):
                scheduler.submit(_request(i + 1, num_tokens=4, max_new_tokens=2))
            scheduler.drain()
            assert sorted(backend.finished) == [1, 2]
        finally:
            FakeBackend.decode_batch = _FAKE_DECODE_BATCH

    def test_mixed_prefill_and_decode_round(self):
        """Prefilling requests keep chunking while the rest decode as a batch."""
        backend = FakeBackend(chunk_tokens=2)
        scheduler = RequestScheduler(backend, max_inflight=3)
        scheduler.submit(_request(1, num_tokens=2, max_new_tokens=4))
        scheduler.submit(_request(2, num_tokens=2, max_new_tokens=4))
        scheduler.submit(_request(3, num_tokens=12, max_new_tokens=1))
        scheduler.step()  # everyone prefills (1 and 2 finish theirs)
        scheduler.step()  # 1 and 2 decode as a batch of 2, 3 keeps prefilling
        assert backend.batch_sizes == [2]
        assert scheduler.stats.prefill_chunks == 4


class TestDecodeBatchHookResolution:
    """The decode_batch hook is resolved once, at construction (not re-probed
    with getattr every step, which hid backend mismatches as a silent
    per-request fallback)."""

    def test_missing_hook_warns_at_construction(self):
        backend = FakeBackend()
        del FakeBackend.decode_batch
        try:
            with pytest.warns(RuntimeWarning, match="no decode_batch hook"):
                scheduler = RequestScheduler(backend, max_inflight=4)
            assert scheduler._decode_batch is None
        finally:
            FakeBackend.decode_batch = _FAKE_DECODE_BATCH

    def test_missing_hook_is_silent_when_batching_disabled(self):
        backend = FakeBackend()
        del FakeBackend.decode_batch
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                scheduler = RequestScheduler(
                    backend, max_inflight=4, decode_batching=False
                )
            assert scheduler._decode_batch is None
        finally:
            FakeBackend.decode_batch = _FAKE_DECODE_BATCH

    def test_hook_resolved_once_not_per_step(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=4)
        del FakeBackend.decode_batch  # vanishing after construction is ignored
        try:
            for i in range(2):
                scheduler.submit(_request(i + 1, num_tokens=4, max_new_tokens=2))
            scheduler.drain()
            assert backend.batch_sizes == [2]  # still served by the bound hook
        finally:
            FakeBackend.decode_batch = _FAKE_DECODE_BATCH


class TestZeroTokenRequests:
    def test_zero_max_new_tokens_emits_nothing(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend)
        request = _request(1, num_tokens=4, max_new_tokens=0)
        scheduler.submit(request)
        scheduler.drain()
        assert backend.finished == [1]
        assert request.state == RequestState.FINISHED
        assert scheduler.stats.decode_steps == 0

    def test_negative_max_new_tokens_rejected(self):
        with pytest.raises(ValueError):
            _request(1, max_new_tokens=-1)


class TestBeginRequestFailure:
    def test_failure_does_not_poison_the_round(self):
        """One request's session-setup failure leaves the rest serving."""
        backend = FakeBackend()
        backend.fail_request_ids = {2}
        scheduler = RequestScheduler(backend, max_inflight=4)
        requests = [_request(i + 1, num_tokens=4, max_new_tokens=2) for i in range(3)]
        for request in requests:
            scheduler.submit(request)
        scheduler.drain()
        assert sorted(backend.finished) == [1, 3]
        assert backend.failed == [2]
        assert requests[1].state == RequestState.FAILED
        assert "session setup exploded" in requests[1].error
        assert scheduler.stats.failed == 1
        assert scheduler.stats.completed == 2

    def test_failure_releases_reservation(self):
        backend = FakeBackend()
        backend.fail_request_ids = {1}
        scheduler = RequestScheduler(
            backend, admission=AdmissionController(budget_bytes=100), max_inflight=4
        )
        scheduler.submit(_request(1, max_new_tokens=1))
        scheduler.drain()
        assert scheduler.admission.committed_bytes == 0

    def test_failure_without_fail_hook_falls_back_to_reject(self):
        backend = FakeBackend()
        backend.fail_request_ids = {1}
        del FakeBackend.fail_request
        try:
            scheduler = RequestScheduler(backend)
            request = _request(1, max_new_tokens=1)
            scheduler.submit(request)
            scheduler.drain()
            assert backend.rejected == [1]
            assert request.state == RequestState.FAILED
        finally:
            FakeBackend.fail_request = _FAKE_FAIL_REQUEST


class TestPreemption:
    def _scheduler(self, backend, **kwargs):
        kwargs.setdefault("policy", SLOAwarePolicy())
        kwargs.setdefault("preemption", True)
        kwargs.setdefault("preemption_slack_seconds", 0.5)
        return RequestScheduler(backend, **kwargs)

    def test_critical_arrival_preempts_slack_rich_victim(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = self._scheduler(backend, max_inflight=1)
        victim = _request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO)
        scheduler.submit(victim)
        scheduler.step()
        assert scheduler.num_inflight == 1
        critical = _request(2, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.1))
        scheduler.submit(critical)
        scheduler.step()
        # the batch request was paused and the critical one admitted
        assert victim.state == RequestState.PREEMPTED
        assert critical.state in (RequestState.RUNNING, RequestState.FINISHED)
        assert backend.preempted == [1]
        assert scheduler.stats.preemptions == 1
        scheduler.drain()
        # the victim resumed once the critical request finished, then completed
        assert backend.resumed == [1]
        assert scheduler.stats.resumes == 1
        assert sorted(backend.finished) == [1, 2]
        assert victim.state == RequestState.FINISHED

    def test_preempted_reservation_is_released_and_retaken(self):
        backend = FakeBackend(chunk_tokens=1, bytes_per_request=60)
        scheduler = self._scheduler(
            backend, max_inflight=1, admission=AdmissionController(budget_bytes=100)
        )
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO))
        scheduler.step()
        assert scheduler.admission.committed_bytes == 60
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=2, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        # victim released its 60 bytes; the critical request holds its own 60
        assert scheduler.num_preempted == 1
        assert scheduler.admission.committed_bytes == 60
        scheduler.drain()
        assert scheduler.admission.committed_bytes == 0

    def test_no_preemption_without_critical_arrival(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = self._scheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=4, slo=BATCH_SLO))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=1, slo=BATCH_SLO))
        scheduler.drain()
        assert scheduler.stats.preemptions == 0
        assert backend.finished == [1, 2]

    def test_critical_victim_is_never_preempted(self):
        """A victim near its own deadline has no slack to give."""
        backend = FakeBackend(chunk_tokens=1)
        scheduler = self._scheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=4, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        assert scheduler.stats.preemptions == 0

    def test_fcfs_policy_never_names_a_victim(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = RequestScheduler(
            backend, policy=FCFSPolicy(), preemption=True, max_inflight=1
        )
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=4, slo=BATCH_SLO))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.01)))
        scheduler.drain()
        assert scheduler.stats.preemptions == 0

    def test_no_preemption_when_policy_would_admit_someone_else(self):
        """If the next admission would go to a high-priority (non-critical)
        request, preempting for the min-slack one would evict a victim per
        step without ever serving it — so no victim is taken at all."""
        backend = FakeBackend(chunk_tokens=1)
        scheduler = self._scheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.1)))
        scheduler.submit(_request(3, num_tokens=1, max_new_tokens=1, priority=5))
        scheduler.step()
        # priority dominates slack in SLOAwarePolicy.select, so the freed slot
        # would go to request 3 — preempting for request 2 cannot help it
        assert scheduler.stats.preemptions == 0
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2, 3]

    def test_resumes_do_not_inflate_admission_stats(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = self._scheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.1)))
        scheduler.drain()
        assert scheduler.stats.resumes == 1
        # two unique requests were admitted; the resume is not a third
        assert scheduler.admission.stats.admitted == 2

    def test_no_preemption_when_budget_still_blocks_the_critical(self):
        """Pausing a victim that cannot free enough budget would only thrash
        (preempt, fail to admit, resume — every step), so it must not happen."""
        backend = FakeBackend(chunk_tokens=1, bytes_per_request=30)
        backend.bytes_overrides = {3: 80}
        scheduler = self._scheduler(
            backend, max_inflight=2, admission=AdmissionController(budget_bytes=100)
        )
        for i in (1, 2):
            scheduler.submit(_request(i, num_tokens=4, max_new_tokens=4, slo=BATCH_SLO))
        scheduler.step()
        assert scheduler.num_inflight == 2
        scheduler.submit(_request(3, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        # 80 > (100 - 60 available) + 30 releasable: preemption cannot help
        assert scheduler.stats.preemptions == 0
        scheduler.drain()
        assert sorted(backend.finished) == [1, 2, 3]

    def test_retained_footprint_stays_reserved_across_preemption(self):
        """Only the reservation beyond the session's still-resident bytes is
        released on preemption, and exactly that delta is re-taken on resume."""
        backend = FakeBackend(chunk_tokens=1, bytes_per_request=60)
        backend.preempted_bytes = 20
        scheduler = self._scheduler(
            backend, max_inflight=1, admission=AdmissionController(budget_bytes=100)
        )
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=2, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        # victim keeps 20 of its 60 on the books; the critical request holds 60
        assert scheduler.num_preempted == 1
        assert scheduler.preempted_requests()[0].reserved_bytes == 20
        assert scheduler.admission.committed_bytes == 80
        scheduler.drain()
        assert scheduler.admission.committed_bytes == 0
        assert sorted(backend.finished) == [1, 2]

    def test_preempted_counts_as_work(self):
        """drain() must not stop while a preempted request awaits resume."""
        backend = FakeBackend(chunk_tokens=1)
        scheduler = self._scheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO))
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=1, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        assert scheduler.num_preempted == 1
        assert scheduler.has_work
        scheduler.drain()
        assert not scheduler.has_work
        assert sorted(backend.finished) == [1, 2]


_FAKE_DECODE_BATCH = FakeBackend.decode_batch
_FAKE_FAIL_REQUEST = FakeBackend.fail_request


@pytest.fixture(scope="module")
def concurrent_service():
    model = TransformerModel(ModelConfig.tiny(seed=53))
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        max_retrieved_tokens=64,
        max_inflight_requests=4,
        prefill_chunk_tokens=64,
    )
    service = InferenceService(model, config)
    service.ingest("a reference corpus about scheduling policies. " * 20, context_id="doc")
    return service


class TestServiceScheduling:
    def test_submit_step_drain(self, concurrent_service):
        service = concurrent_service
        document = service.db.get_context("doc")
        prompt = service.db.tokenizer.decode(document.tokens) + " tell me more"
        ids = [service.submit(prompt, max_new_tokens=2) for _ in range(5)]
        service.step()
        assert service.scheduler.num_inflight == 4  # the fifth waits its turn
        service.drain()
        for request_id in ids:
            result, record = service.result(request_id)
            assert result.num_generated == 2
            assert record.reused_tokens > 0

    def test_serve_wrapper_still_works(self, concurrent_service):
        result, record = concurrent_service.serve("an unrelated question", max_new_tokens=2)
        assert result.num_generated == 2
        assert record.reused_tokens == 0
        assert concurrent_service.result(record.request_id) is not None

    def test_chunked_prefill_matches_unchunked_generation(self):
        """Splitting prefill into chunks must not change greedy decode output."""
        model = TransformerModel(ModelConfig.tiny(seed=59))
        prompt = "the quick brown fox jumps over the lazy dog. " * 4
        outputs = []
        for chunk in (8, 10_000):
            config = AlayaDBConfig(prefill_chunk_tokens=chunk)
            service = InferenceService(model, config)
            result, _ = service.serve(prompt, max_new_tokens=4)
            outputs.append(result.generated_tokens)
        assert outputs[0] == outputs[1]

    def test_admission_rejection_surfaces(self):
        model = TransformerModel(ModelConfig.tiny(seed=61))
        config = AlayaDBConfig(scheduler_gpu_budget_bytes=8)  # nothing fits
        service = InferenceService(model, config)
        with pytest.raises(AdmissionRejectedError):
            service.serve("far too large for the budget", max_new_tokens=2)
        assert service.stats.rejected == 1

    def test_slo_policy_orders_admission(self):
        model = TransformerModel(ModelConfig.tiny(seed=67))
        config = AlayaDBConfig(scheduler_policy="slo", max_inflight_requests=1)
        service = InferenceService(model, config)
        service.submit("batch style request", max_new_tokens=1, slo=BATCH_SLO)
        urgent = service.submit("urgent request", max_new_tokens=1, slo=INTERACTIVE_SLO)
        finished = service.drain()
        assert finished[0][1].request_id == urgent.request_id
