"""Cancellation races: cancel while queued, while preempted, after finish
(idempotent no-op), and mid-stream under the ``slo`` policy — at both the
scheduler level (FakeBackend) and through the full InferenceService."""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import RequestCancelledError
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import (
    AdmissionController,
    InFlightRequest,
    Request,
    RequestScheduler,
    RequestState,
    SLOAwarePolicy,
)
from repro.simulator.slo import BATCH_SLO, SLO


class FakeBackend:
    """Model-free backend (mirrors test_scheduler.FakeBackend, plus cancel)."""

    def __init__(self, chunk_tokens=4, bytes_per_request=100):
        self.chunk_tokens = chunk_tokens
        self.bytes_per_request = bytes_per_request
        self.finished: list[int] = []
        self.cancelled: list[int] = []
        self.preempted: list[int] = []
        self.resumed: list[int] = []

    def estimate_request_bytes(self, request):
        return self.bytes_per_request

    def preempted_request_bytes(self, inflight):
        return 0

    def begin_request(self, request):
        return InFlightRequest(
            request=request, session=None, pending_tokens=list(request.prompt_tokens)
        )

    def prefill_chunk(self, inflight):
        del inflight.pending_tokens[: self.chunk_tokens]
        if not inflight.pending_tokens and inflight.request.max_new_tokens > 0:
            inflight.generated.append(1)

    def decode_step(self, inflight):
        inflight.generated.append(1)

    def decode_batch(self, inflights):
        for inflight in inflights:
            inflight.generated.append(1)

    def finish_request(self, inflight):
        self.finished.append(inflight.request.request_id)

    def cancel_request(self, inflight):
        self.cancelled.append(inflight.request.request_id)

    def reject_request(self, request):
        pass

    def preempt_request(self, inflight):
        self.preempted.append(inflight.request.request_id)

    def resume_request(self, inflight):
        self.resumed.append(inflight.request.request_id)


def _request(request_id, num_tokens=4, **kwargs):
    return Request(request_id=request_id, prompt_tokens=list(range(1, num_tokens + 1)), **kwargs)


class TestSchedulerCancel:
    def test_cancel_while_queued(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=20, max_new_tokens=4))
        queued = _request(2, max_new_tokens=1)
        scheduler.submit(queued)
        scheduler.step()  # 1 in flight, 2 still queued
        assert queued.state == RequestState.QUEUED
        assert scheduler.cancel(2)
        assert queued.state == RequestState.CANCELLED
        assert scheduler.queue_depth == 0
        scheduler.drain()
        # the cancelled request never ran: no begin/finish, no backend cancel
        assert backend.finished == [1]
        assert backend.cancelled == []
        assert scheduler.stats.cancelled == 1

    def test_cancel_inflight_releases_reservation(self):
        backend = FakeBackend(chunk_tokens=1, bytes_per_request=60)
        scheduler = RequestScheduler(
            backend, admission=AdmissionController(budget_bytes=100), max_inflight=2
        )
        running = _request(1, num_tokens=8, max_new_tokens=4)
        scheduler.submit(running)
        scheduler.step()
        assert scheduler.admission.committed_bytes == 60
        assert scheduler.cancel(1)
        assert running.state == RequestState.CANCELLED
        assert scheduler.admission.committed_bytes == 0
        assert backend.cancelled == [1]
        assert not scheduler.has_work

    def test_cancel_while_preempted(self):
        backend = FakeBackend(chunk_tokens=1, bytes_per_request=40)
        scheduler = RequestScheduler(
            backend,
            policy=SLOAwarePolicy(),
            preemption=True,
            preemption_slack_seconds=0.5,
            max_inflight=1,
            admission=AdmissionController(budget_bytes=100),
        )
        victim = _request(1, num_tokens=8, max_new_tokens=8, slo=BATCH_SLO)
        scheduler.submit(victim)
        scheduler.step()
        scheduler.submit(_request(2, num_tokens=1, max_new_tokens=4, slo=SLO(ttft_seconds=0.1)))
        scheduler.step()
        assert victim.state == RequestState.PREEMPTED
        assert scheduler.cancel(1)
        assert victim.state == RequestState.CANCELLED
        assert scheduler.num_preempted == 0
        assert backend.cancelled == [1]
        scheduler.drain()
        # the victim never resumed; the critical request finished alone
        assert backend.resumed == []
        assert backend.finished == [2]
        assert scheduler.admission.committed_bytes == 0

    def test_cancel_after_finish_is_noop(self):
        backend = FakeBackend()
        scheduler = RequestScheduler(backend)
        request = _request(1, max_new_tokens=1)
        scheduler.submit(request)
        scheduler.drain()
        assert request.state == RequestState.FINISHED
        assert not scheduler.cancel(1)
        assert request.state == RequestState.FINISHED
        assert scheduler.stats.cancelled == 0

    def test_cancel_unknown_id_is_noop(self):
        scheduler = RequestScheduler(FakeBackend())
        assert not scheduler.cancel(999)

    def test_double_cancel_is_idempotent(self):
        backend = FakeBackend(chunk_tokens=1)
        scheduler = RequestScheduler(backend, max_inflight=1)
        scheduler.submit(_request(1, num_tokens=8, max_new_tokens=4))
        scheduler.step()
        assert scheduler.cancel(1)
        assert not scheduler.cancel(1)
        assert scheduler.stats.cancelled == 1
        assert backend.cancelled == [1]


SERVICE_CONFIG = dict(
    window_initial_tokens=8,
    window_last_tokens=16,
    short_context_threshold=64,
    gpu_memory_budget_bytes=1,
    max_retrieved_tokens=64,
)


class TestServiceCancel:
    def _service(self, seed=71, **overrides):
        model = TransformerModel(ModelConfig.tiny(seed=seed))
        config = AlayaDBConfig(**{**SERVICE_CONFIG, **overrides})
        return InferenceService(model, config)

    def test_cancel_queued_through_service(self):
        service = self._service(max_inflight_requests=1)
        service.submit("the first request runs " * 4, max_new_tokens=2)
        queued = service.submit("the second waits in the queue", max_new_tokens=2)
        service.step()
        assert queued.status == RequestState.QUEUED
        assert queued.cancel()
        assert queued.status == RequestState.CANCELLED
        service.drain()
        with pytest.raises(RequestCancelledError):
            queued.result()
        assert service.stats.cancelled == 1

    def test_cancel_running_frees_admission_budget_and_unpins(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=73))
        config = AlayaDBConfig(
            **SERVICE_CONFIG,
            scheduler_gpu_budget_bytes=1 << 30,
            prefill_chunk_tokens=16,
        )
        service = InferenceService(model, config, storage_dir=tmp_path)
        service.ingest("a pinned reference document for the victim. " * 15, context_id="doc")
        prompt = service.db.tokenizer.decode(service.db.get_context("doc").tokens)
        handle = service.submit(prompt + " question", max_new_tokens=8)
        service.step()  # admitted, mid-prefill, context pinned
        assert service.memory_report()["admission_committed_bytes"] > 0
        assert handle.cancel()
        assert handle.status == RequestState.CANCELLED
        assert service.memory_report()["admission_committed_bytes"] == 0
        # the stored context was unpinned by the session teardown: spillable
        service.db.store_registry.spill("doc")
        assert "doc" not in service.db.store_registry.resident_ids()

    def test_cancel_preempted_through_service(self, tmp_path):
        model = TransformerModel(ModelConfig.tiny(seed=79))
        config = AlayaDBConfig(
            **SERVICE_CONFIG,
            scheduler_policy="slo",
            preemption=True,
            max_inflight_requests=1,
        )
        service = InferenceService(model, config, storage_dir=tmp_path)
        service.ingest("a stored document the victim reuses. " * 15, context_id="doc")
        prompt = service.db.tokenizer.decode(service.db.get_context("doc").tokens)
        victim = service.submit(prompt + " victim", max_new_tokens=12, slo=BATCH_SLO)
        service.step()
        critical = service.submit(
            "urgent unrelated question", max_new_tokens=2, slo=SLO(ttft_seconds=0.05)
        )
        service.step()
        assert victim.status == RequestState.PREEMPTED
        assert victim.cancel()
        assert victim.status == RequestState.CANCELLED
        service.drain()
        assert critical.result()[0].num_generated == 2
        assert service.scheduler.stats.resumes == 0
        assert service.memory_report()["admission_committed_bytes"] == 0
        # cancelling the (already unpinned) preempted victim must not have
        # disturbed pin accounting: the context is spillable exactly once
        service.db.store_registry.spill("doc")
        assert "doc" not in service.db.store_registry.resident_ids()

    def test_cancel_preempted_does_not_steal_other_sessions_pin(self, tmp_path):
        """A preempted victim's cancel must not unpin a context still pinned
        by another live session reusing the same document."""
        model = TransformerModel(ModelConfig.tiny(seed=83))
        config = AlayaDBConfig(
            **SERVICE_CONFIG,
            scheduler_policy="slo",
            preemption=True,
            max_inflight_requests=2,
        )
        service = InferenceService(model, config, storage_dir=tmp_path)
        service.ingest("one document shared by two requests. " * 15, context_id="doc")
        prompt = service.db.tokenizer.decode(service.db.get_context("doc").tokens)
        victim = service.submit(prompt + " victim", max_new_tokens=12, slo=BATCH_SLO)
        survivor = service.submit(prompt + " other", max_new_tokens=12, slo=BATCH_SLO)
        service.step()  # both in flight, both pinning "doc"
        critical = service.submit(
            "urgent unrelated question", max_new_tokens=2, slo=SLO(ttft_seconds=0.05)
        )
        service.step()
        preempted = {fl.request.request_id for fl in service.scheduler.preempted_requests()}
        assert len(preempted) == 1
        paused, running = (
            (victim, survivor)
            if victim.request_id in preempted
            else (survivor, victim)
        )
        assert paused.cancel()
        # the running request still pins the context: spilling must refuse
        with pytest.raises(ValueError):
            service.db.store_registry.spill("doc")
        service.drain()
        assert running.result()[0].num_generated == 12
        assert critical.result()[0].num_generated == 2

    def test_cancel_during_streaming_under_slo_policy(self):
        service = self._service(seed=89, scheduler_policy="slo", max_inflight_requests=2)
        noisy = service.submit("a競 concurrent batch request " * 3, max_new_tokens=6, slo=BATCH_SLO)
        handle = service.submit("stream then cancel me", max_new_tokens=64, slo=BATCH_SLO)
        seen = []
        for token in handle.tokens():
            seen.append(token)
            if len(seen) == 3:
                assert handle.cancel()
        # the stream ended early, exactly at the cancellation point
        assert len(seen) == 3
        assert handle.status == RequestState.CANCELLED
        with pytest.raises(RequestCancelledError):
            handle.result()
        # the concurrent request is unaffected and completes
        service.drain()
        assert noisy.result()[0].num_generated == 6
        assert service.memory_report()["admission_committed_bytes"] == 0

    def test_cancelled_request_yields_no_result_record(self):
        service = self._service(seed=97)
        handle = service.submit("cancel before any step", max_new_tokens=2)
        assert handle.cancel()
        service.drain()
        assert service.result(handle) is None
        assert service.stats.num_requests == 0
