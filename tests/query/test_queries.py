"""Tests of the query types, DIPRS, top-k and filtered search."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.flat import FlatIndex
from repro.index.roargraph import RoarGraphIndex
from repro.query.dipr import DIPRSearchStats, diprs_search, exact_dipr
from repro.query.filtered import filtered_diprs_search, naive_filtered_diprs_search, predicate_mask
from repro.query.topk import flat_topk_search, graph_topk_search
from repro.query.types import (
    DIPRQuery,
    FilterPredicate,
    QuerySpec,
    TopKQuery,
    alpha_from_beta,
    beta_from_alpha,
)


def _clustered_keys(n=1200, dim=16, num_critical=60, seed=0):
    """Keys with a planted critical cluster (mimics attention key structure)."""
    rng = np.random.default_rng(seed)
    keys = rng.normal(0.0, 0.35, size=(n, dim)).astype(np.float32)
    direction = rng.normal(size=dim)
    direction /= np.linalg.norm(direction)
    critical = rng.choice(n, size=num_critical, replace=False)
    keys[critical] += (8.0 * direction).astype(np.float32)
    query = (direction * np.sqrt(dim) + rng.normal(0, 0.1, dim)).astype(np.float32)
    queries = (
        direction[None, :] * np.sqrt(dim)
        + rng.normal(0, 0.8, size=(400, dim))
    ).astype(np.float32)
    return keys, query, queries, critical


class TestQueryTypes:
    def test_beta_alpha_roundtrip(self):
        beta = beta_from_alpha(0.01, 128)
        assert alpha_from_beta(beta, 128) == pytest.approx(0.01, rel=1e-6)

    def test_theorem1_constant(self):
        # beta = -sqrt(d) * ln(alpha)
        assert beta_from_alpha(0.012, 128) == pytest.approx(-math.sqrt(128) * math.log(0.012))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            beta_from_alpha(0.0, 16)
        with pytest.raises(ValueError):
            beta_from_alpha(1.5, 16)

    def test_query_validation(self):
        with pytest.raises(ValueError):
            TopKQuery(k=0)
        with pytest.raises(ValueError):
            DIPRQuery(beta=-1.0)
        with pytest.raises(ValueError):
            FilterPredicate(max_position=0)

    def test_query_spec(self):
        spec = QuerySpec(query=DIPRQuery(beta=5.0), predicate=FilterPredicate(max_position=10))
        assert spec.kind == "dipr"
        assert spec.is_filtered

    def test_dipr_from_alpha(self):
        query = DIPRQuery.from_alpha(0.05, 64)
        assert query.beta == pytest.approx(beta_from_alpha(0.05, 64))


class TestExactDIPR:
    def test_always_contains_maximum(self):
        keys, query, _, _ = _clustered_keys()
        result = exact_dipr(keys, query, beta=0.0)
        assert len(result) >= 1
        assert result.indices[0] == int(np.argmax(keys @ query))

    def test_larger_beta_is_superset(self):
        keys, query, _, _ = _clustered_keys()
        small = set(exact_dipr(keys, query, 5.0).indices.tolist())
        large = set(exact_dipr(keys, query, 20.0).indices.tolist())
        assert small.issubset(large)

    def test_critical_cluster_selected(self):
        keys, query, _, critical = _clustered_keys()
        result = exact_dipr(keys, query, beta=15.0)
        assert set(critical.tolist()).issubset(set(result.indices.tolist()))


class TestDIPRS:
    def test_high_recall_on_clustered_data(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        truth = exact_dipr(keys, query, 15.0)
        approx, stats = diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], capacity_threshold=128
        )
        recall = len(set(truth.indices.tolist()) & set(approx.indices.tolist())) / len(truth)
        assert recall > 0.85
        assert stats.num_distance_computations < keys.shape[0]

    def test_results_respect_threshold(self):
        keys, query, queries, _ = _clustered_keys(seed=3)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        result, _ = diprs_search(keys, index.graph, query, 10.0, [index.entry_point])
        assert np.all(result.scores >= result.scores.max() - 10.0 - 1e-4)

    def test_window_seed_tightens_pruning(self):
        keys, query, queries, _ = _clustered_keys(seed=4)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        true_max = float((keys @ query).max())
        _, without_seed = diprs_search(keys, index.graph, query, 12.0, [index.entry_point])
        _, with_seed = diprs_search(
            keys, index.graph, query, 12.0, [index.entry_point], window_max_score=true_max
        )
        assert with_seed.num_appended <= without_seed.num_appended

    def test_max_tokens_cap(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        result, _ = diprs_search(keys, index.graph, query, 30.0, [index.entry_point], max_tokens=5)
        assert len(result) <= 5

    def test_dynamic_size_varies_with_cluster_size(self):
        sizes = []
        for num_critical in (10, 80):
            keys, query, queries, _ = _clustered_keys(num_critical=num_critical, seed=5)
            index = RoarGraphIndex()
            index.build(keys, query_sample=queries)
            result, _ = diprs_search(keys, index.graph, query, 15.0, [index.entry_point], capacity_threshold=128)
            sizes.append(len(result))
        assert sizes[1] > sizes[0]


def _decoy_setup(seed=11, n=600, dim=16, beta=6.0):
    """Keys where the *dominant* cluster is disallowed and a moderate one is allowed.

    The decoy cluster (positions >= 500) scores far above the allowed critical
    cluster — ``max_disallowed - beta > max_allowed`` — so any search that
    lets disallowed nodes set the DIPR threshold prunes every valid result.
    """
    rng = np.random.default_rng(seed)
    keys = rng.normal(0.0, 0.35, size=(n, dim)).astype(np.float32)
    direction = rng.normal(size=dim)
    direction /= np.linalg.norm(direction)
    cluster = rng.choice(500, size=30, replace=False)
    keys[cluster] += (4.0 * direction).astype(np.float32)
    decoys = np.arange(500, n)
    keys[decoys] += (6.0 * direction).astype(np.float32)
    query = (direction * np.sqrt(dim)).astype(np.float32)
    queries = (
        direction[None, :] * np.sqrt(dim) + rng.normal(0, 0.8, size=(300, dim))
    ).astype(np.float32)
    allowed = np.zeros(n, dtype=bool)
    allowed[:500] = True
    index = RoarGraphIndex()
    index.build(keys, query_sample=queries)
    entry_points = np.flatnonzero(allowed)[:8].tolist()
    return keys, query, index, allowed, entry_points, beta


def _legacy_masked_diprs(vectors, graph, query, beta, entry_points, capacity_threshold, allowed):
    """The pre-fix ``diprs_search`` masking semantics, kept as the regression foil.

    Disallowed nodes were skipped as candidates but still ran the
    ``best_score = max(best_score, score)`` update, tightening the final
    keep-threshold with scores of nodes that can never be returned.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    visited = np.zeros(graph.num_nodes, dtype=bool)
    candidate_ids: list[int] = []
    candidate_scores: list[float] = []
    best_score = -np.inf

    def try_append(node, score):
        nonlocal best_score
        if len(candidate_ids) < capacity_threshold or score >= best_score - beta:
            if allowed[node]:
                candidate_ids.append(int(node))
                candidate_scores.append(float(score))
            best_score = max(best_score, score)

    for entry in entry_points:
        entry = int(entry)
        if not visited[entry]:
            visited[entry] = True
            try_append(entry, float(vectors[entry] @ query))
    cursor = 0
    while cursor < len(candidate_ids):
        node = candidate_ids[cursor]
        cursor += 1
        neighbors = graph.neighbors(int(node))
        fresh = neighbors[~visited[neighbors]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        for neighbor, score in zip(fresh, vectors[fresh] @ query):
            try_append(int(neighbor), float(score))

    indices = np.asarray(candidate_ids, dtype=np.int64)
    scores = np.asarray(candidate_scores, dtype=np.float32)
    keep = scores >= best_score - beta
    return indices[keep]


def _reference_diprs(
    vectors,
    graph,
    query,
    beta,
    entry_points,
    capacity_threshold=32,
    window_max_score=None,
    allowed=None,
):
    """Scalar Algorithm-1 reference (correct ``allowed`` semantics).

    Kept as an executable spec for the hop-vectorized ``diprs_search``: one
    ``try_append`` per explored node, running best-so-far threshold, capacity
    grant, and disallowed nodes neither appended nor raising the maximum.
    Hops are scored with the same block matmul as the implementation so the
    float comparison is bit-identical.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    stats = DIPRSearchStats()
    visited = np.zeros(graph.num_nodes, dtype=bool)
    candidate_ids: list[int] = []
    candidate_scores: list[float] = []
    best_score = -np.inf if window_max_score is None else float(window_max_score)

    def try_append(node, score):
        nonlocal best_score
        stats.num_distance_computations += 1
        if allowed is not None and not allowed[node]:
            stats.num_pruned += 1
            return
        below_capacity = len(candidate_ids) < capacity_threshold
        critical = score >= best_score - beta
        if below_capacity or critical:
            candidate_ids.append(int(node))
            candidate_scores.append(float(score))
            stats.num_appended += 1
            best_score = max(best_score, score)
        else:
            stats.num_pruned += 1

    fresh_entries = []
    for entry in np.atleast_1d(np.asarray(entry_points, dtype=np.int64)):
        entry = int(entry)
        if not visited[entry]:
            visited[entry] = True
            fresh_entries.append(entry)
    if fresh_entries:
        entry_nodes = np.asarray(fresh_entries, dtype=np.int64)
        for node, score in zip(entry_nodes, vectors[entry_nodes] @ query):
            try_append(node, float(score))

    cursor = 0
    while cursor < len(candidate_ids):
        node = candidate_ids[cursor]
        cursor += 1
        stats.num_hops += 1
        neighbors = graph.neighbors(int(node))
        fresh = neighbors[~visited[neighbors]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        for neighbor, score in zip(fresh, vectors[fresh] @ query):
            try_append(int(neighbor), float(score))

    indices = np.asarray(candidate_ids, dtype=np.int64)
    scores = np.asarray(candidate_scores, dtype=np.float32)
    keep = scores >= best_score - beta
    indices, scores = indices[keep], scores[keep]
    order = np.argsort(-scores)
    return indices[order], scores[order], stats


class TestDIPRSMaskedThreshold:
    """Regression: disallowed nodes must not tighten the DIPRS prune threshold.

    ``diprs_search`` used to run the ``best_score = max(...)`` update even for
    nodes failing the ``allowed`` mask, so the final keep-threshold was defined
    over tokens that can never be returned and every valid candidate got
    pruned.  ``filtered_diprs_search`` always had the correct semantics; these
    tests pin ``diprs_search`` (and through it
    ``naive_filtered_diprs_search``, the Figure 12 ablation baseline) to it.
    """

    def test_masked_search_recovers_results_the_old_threshold_pruned(self):
        keys, query, index, allowed, entries, beta = _decoy_setup()
        result, _ = diprs_search(
            keys, index.graph, query, beta, entries,
            capacity_threshold=128, allowed=allowed,
        )
        # the pre-fix semantics prune every valid candidate on this data
        legacy = _legacy_masked_diprs(
            keys, index.graph, query, beta, entries,
            capacity_threshold=128, allowed=allowed,
        )
        assert legacy.shape[0] == 0
        assert len(result) >= 10
        assert np.all(allowed[result.indices])
        # the recovered results all sit below the *disallowed* maximum minus
        # beta: under the old threshold semantics every one of them was pruned
        decoy_max = float((keys[~allowed] @ query).max())
        assert float(result.scores.max()) < decoy_max - beta
        # and they substantially agree with the ground-truth masked DIPR
        truth = exact_dipr(keys, query, beta, allowed=allowed)
        recall = len(set(truth.indices.tolist()) & set(result.indices.tolist())) / len(truth)
        assert recall > 0.4

    def test_results_respect_threshold_over_allowed_tokens_only(self):
        keys, query, index, allowed, entries, beta = _decoy_setup(seed=12)
        result, _ = diprs_search(
            keys, index.graph, query, beta, entries,
            capacity_threshold=128, allowed=allowed,
        )
        assert len(result) > 0
        assert np.all(result.scores >= result.scores.max() - beta - 1e-4)

    @settings(deadline=None, max_examples=10)
    @given(
        seed=st.integers(0, 30),
        beta=st.floats(min_value=2.0, max_value=20.0),
        capacity=st.integers(min_value=4, max_value=64),
        masked=st.booleans(),
        seeded=st.booleans(),
    )
    def test_hop_vectorization_matches_scalar_reference(self, seed, beta, capacity, masked, seeded):
        """The vectorized hop appends reproduce the scalar loop exactly."""
        keys, query, queries, _ = _clustered_keys(n=400, num_critical=25, seed=seed)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries[:80])
        allowed = None
        if masked:
            allowed = np.zeros(keys.shape[0], dtype=bool)
            allowed[: keys.shape[0] // 2] = True
        window_max = float((keys @ query).max()) * 0.9 if seeded else None
        result, stats = diprs_search(
            keys, index.graph, query, beta, [index.entry_point],
            capacity_threshold=capacity, window_max_score=window_max, allowed=allowed,
        )
        ref_indices, ref_scores, ref_stats = _reference_diprs(
            keys, index.graph, query, beta, [index.entry_point],
            capacity_threshold=capacity, window_max_score=window_max, allowed=allowed,
        )
        np.testing.assert_array_equal(result.indices, ref_indices)
        np.testing.assert_array_equal(result.scores, ref_scores)
        assert stats.num_distance_computations == ref_stats.num_distance_computations
        assert stats.num_hops == ref_stats.num_hops
        assert stats.num_appended == ref_stats.num_appended
        assert stats.num_pruned == ref_stats.num_pruned


class TestTopKSearch:
    def test_flat_topk(self):
        keys, query, _, _ = _clustered_keys()
        index = FlatIndex()
        index.build(keys)
        result = flat_topk_search(index, query, 10)
        expected = np.argsort(-(keys @ query))[:10]
        np.testing.assert_array_equal(result.indices, expected)

    def test_graph_topk_recall(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        truth = set(np.argsort(-(keys @ query))[:20].tolist())
        found = set(graph_topk_search(keys, index.graph, query, 20, [index.entry_point]).indices.tolist())
        assert len(truth & found) / 20 > 0.8


class TestFilteredSearch:
    def test_predicate_mask(self):
        mask = predicate_mask(10, FilterPredicate(max_position=4))
        assert mask.sum() == 4
        assert predicate_mask(10, None) is None

    def test_filtered_results_respect_predicate(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        predicate = FilterPredicate(max_position=600)
        result, _ = filtered_diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], predicate, capacity_threshold=128
        )
        assert np.all(result.indices < 600)

    def test_two_hop_beats_naive_pruning(self):
        keys, query, queries, _ = _clustered_keys(seed=6)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        predicate = FilterPredicate(max_position=500)
        truth = set(exact_dipr(keys[:500], query, 15.0).indices.tolist())
        two_hop, _ = filtered_diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], predicate, capacity_threshold=128
        )
        naive, _ = naive_filtered_diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], predicate, capacity_threshold=128
        )
        recall_two_hop = len(truth & set(two_hop.indices.tolist())) / max(len(truth), 1)
        recall_naive = len(truth & set(naive.indices.tolist())) / max(len(truth), 1)
        assert recall_two_hop >= recall_naive

    def test_filtered_out_entry_point_falls_back(self):
        keys, query, queries, _ = _clustered_keys(seed=7)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        predicate = FilterPredicate(max_position=50)
        entry = keys.shape[0] - 1  # definitely filtered out
        result, _ = filtered_diprs_search(
            keys, index.graph, query, 15.0, [entry], predicate
        )
        assert np.all(result.indices < 50)

    @settings(deadline=None, max_examples=15)
    @given(max_position=st.integers(min_value=50, max_value=1100), seed=st.integers(0, 20))
    def test_property_filter_never_leaks(self, max_position, seed):
        keys, query, queries, _ = _clustered_keys(seed=seed)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries[:100])
        result, _ = filtered_diprs_search(
            keys, index.graph, query, 12.0, [index.entry_point], FilterPredicate(max_position=max_position)
        )
        assert np.all(result.indices < max_position)
