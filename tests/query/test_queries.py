"""Tests of the query types, DIPRS, top-k and filtered search."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.flat import FlatIndex
from repro.index.roargraph import RoarGraphIndex
from repro.query.dipr import diprs_search, exact_dipr
from repro.query.filtered import filtered_diprs_search, naive_filtered_diprs_search, predicate_mask
from repro.query.topk import flat_topk_search, graph_topk_search
from repro.query.types import (
    DIPRQuery,
    FilterPredicate,
    QuerySpec,
    TopKQuery,
    alpha_from_beta,
    beta_from_alpha,
)


def _clustered_keys(n=1200, dim=16, num_critical=60, seed=0):
    """Keys with a planted critical cluster (mimics attention key structure)."""
    rng = np.random.default_rng(seed)
    keys = rng.normal(0.0, 0.35, size=(n, dim)).astype(np.float32)
    direction = rng.normal(size=dim)
    direction /= np.linalg.norm(direction)
    critical = rng.choice(n, size=num_critical, replace=False)
    keys[critical] += (8.0 * direction).astype(np.float32)
    query = (direction * np.sqrt(dim) + rng.normal(0, 0.1, dim)).astype(np.float32)
    queries = (
        direction[None, :] * np.sqrt(dim)
        + rng.normal(0, 0.8, size=(400, dim))
    ).astype(np.float32)
    return keys, query, queries, critical


class TestQueryTypes:
    def test_beta_alpha_roundtrip(self):
        beta = beta_from_alpha(0.01, 128)
        assert alpha_from_beta(beta, 128) == pytest.approx(0.01, rel=1e-6)

    def test_theorem1_constant(self):
        # beta = -sqrt(d) * ln(alpha)
        assert beta_from_alpha(0.012, 128) == pytest.approx(-math.sqrt(128) * math.log(0.012))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            beta_from_alpha(0.0, 16)
        with pytest.raises(ValueError):
            beta_from_alpha(1.5, 16)

    def test_query_validation(self):
        with pytest.raises(ValueError):
            TopKQuery(k=0)
        with pytest.raises(ValueError):
            DIPRQuery(beta=-1.0)
        with pytest.raises(ValueError):
            FilterPredicate(max_position=0)

    def test_query_spec(self):
        spec = QuerySpec(query=DIPRQuery(beta=5.0), predicate=FilterPredicate(max_position=10))
        assert spec.kind == "dipr"
        assert spec.is_filtered

    def test_dipr_from_alpha(self):
        query = DIPRQuery.from_alpha(0.05, 64)
        assert query.beta == pytest.approx(beta_from_alpha(0.05, 64))


class TestExactDIPR:
    def test_always_contains_maximum(self):
        keys, query, _, _ = _clustered_keys()
        result = exact_dipr(keys, query, beta=0.0)
        assert len(result) >= 1
        assert result.indices[0] == int(np.argmax(keys @ query))

    def test_larger_beta_is_superset(self):
        keys, query, _, _ = _clustered_keys()
        small = set(exact_dipr(keys, query, 5.0).indices.tolist())
        large = set(exact_dipr(keys, query, 20.0).indices.tolist())
        assert small.issubset(large)

    def test_critical_cluster_selected(self):
        keys, query, _, critical = _clustered_keys()
        result = exact_dipr(keys, query, beta=15.0)
        assert set(critical.tolist()).issubset(set(result.indices.tolist()))


class TestDIPRS:
    def test_high_recall_on_clustered_data(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        truth = exact_dipr(keys, query, 15.0)
        approx, stats = diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], capacity_threshold=128
        )
        recall = len(set(truth.indices.tolist()) & set(approx.indices.tolist())) / len(truth)
        assert recall > 0.85
        assert stats.num_distance_computations < keys.shape[0]

    def test_results_respect_threshold(self):
        keys, query, queries, _ = _clustered_keys(seed=3)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        result, _ = diprs_search(keys, index.graph, query, 10.0, [index.entry_point])
        assert np.all(result.scores >= result.scores.max() - 10.0 - 1e-4)

    def test_window_seed_tightens_pruning(self):
        keys, query, queries, _ = _clustered_keys(seed=4)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        true_max = float((keys @ query).max())
        _, without_seed = diprs_search(keys, index.graph, query, 12.0, [index.entry_point])
        _, with_seed = diprs_search(
            keys, index.graph, query, 12.0, [index.entry_point], window_max_score=true_max
        )
        assert with_seed.num_appended <= without_seed.num_appended

    def test_max_tokens_cap(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        result, _ = diprs_search(keys, index.graph, query, 30.0, [index.entry_point], max_tokens=5)
        assert len(result) <= 5

    def test_dynamic_size_varies_with_cluster_size(self):
        sizes = []
        for num_critical in (10, 80):
            keys, query, queries, _ = _clustered_keys(num_critical=num_critical, seed=5)
            index = RoarGraphIndex()
            index.build(keys, query_sample=queries)
            result, _ = diprs_search(keys, index.graph, query, 15.0, [index.entry_point], capacity_threshold=128)
            sizes.append(len(result))
        assert sizes[1] > sizes[0]


class TestTopKSearch:
    def test_flat_topk(self):
        keys, query, _, _ = _clustered_keys()
        index = FlatIndex()
        index.build(keys)
        result = flat_topk_search(index, query, 10)
        expected = np.argsort(-(keys @ query))[:10]
        np.testing.assert_array_equal(result.indices, expected)

    def test_graph_topk_recall(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        truth = set(np.argsort(-(keys @ query))[:20].tolist())
        found = set(graph_topk_search(keys, index.graph, query, 20, [index.entry_point]).indices.tolist())
        assert len(truth & found) / 20 > 0.8


class TestFilteredSearch:
    def test_predicate_mask(self):
        mask = predicate_mask(10, FilterPredicate(max_position=4))
        assert mask.sum() == 4
        assert predicate_mask(10, None) is None

    def test_filtered_results_respect_predicate(self):
        keys, query, queries, _ = _clustered_keys()
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        predicate = FilterPredicate(max_position=600)
        result, _ = filtered_diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], predicate, capacity_threshold=128
        )
        assert np.all(result.indices < 600)

    def test_two_hop_beats_naive_pruning(self):
        keys, query, queries, _ = _clustered_keys(seed=6)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        predicate = FilterPredicate(max_position=500)
        truth = set(exact_dipr(keys[:500], query, 15.0).indices.tolist())
        two_hop, _ = filtered_diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], predicate, capacity_threshold=128
        )
        naive, _ = naive_filtered_diprs_search(
            keys, index.graph, query, 15.0, [index.entry_point], predicate, capacity_threshold=128
        )
        recall_two_hop = len(truth & set(two_hop.indices.tolist())) / max(len(truth), 1)
        recall_naive = len(truth & set(naive.indices.tolist())) / max(len(truth), 1)
        assert recall_two_hop >= recall_naive

    def test_filtered_out_entry_point_falls_back(self):
        keys, query, queries, _ = _clustered_keys(seed=7)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries)
        predicate = FilterPredicate(max_position=50)
        entry = keys.shape[0] - 1  # definitely filtered out
        result, _ = filtered_diprs_search(
            keys, index.graph, query, 15.0, [entry], predicate
        )
        assert np.all(result.indices < 50)

    @settings(deadline=None, max_examples=15)
    @given(max_position=st.integers(min_value=50, max_value=1100), seed=st.integers(0, 20))
    def test_property_filter_never_leaks(self, max_position, seed):
        keys, query, queries, _ = _clustered_keys(seed=seed)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries[:100])
        result, _ = filtered_diprs_search(
            keys, index.graph, query, 12.0, [index.entry_point], FilterPredicate(max_position=max_position)
        )
        assert np.all(result.indices < max_position)
