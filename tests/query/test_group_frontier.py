"""Equivalence suite for the group-frontier DIPRS traversal.

``diprs_search_group`` walks one shared frontier for a whole GQA group while
keeping per-head candidate lists, thresholds and masks.  Its contract against
the per-head ``diprs_search`` oracle:

* each head's returned (threshold-filtered) set is a **superset** of the
  per-head result — the union expansion policy means a head scores at least
  every node its solo walk would have scored;
* on clustered attention-like data the traversals align and the filtered top
  sets match **exactly** (ids, and scores up to gemm-vs-matvec rounding);
* the shared walk's distance computations are counted once per group, so at
  GQA ratios >= 4:1 the group does strictly less scoring work than the sum
  of the per-head walks.

The grid below sweeps GQA ratios x beta x ``allowed`` masks x window seeds x
capacity thresholds, plus degenerate graphs (single node, disconnected
components, all-masked) and the executor/session wiring.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AlayaDBConfig
from repro.core.context_store import StoredContext
from repro.core.planner import ExecutionPlan, LayerIndexData, PlanExecutor
from repro.core.session import Session
from repro.index.builder import LayerIndexes
from repro.index.graph import NeighborGraph
from repro.index.roargraph import RoarGraphIndex
from repro.kvcache.serialization import KVSnapshot
from repro.query.dipr import diprs_search, diprs_search_group
from repro.query.filtered import filtered_diprs_search, filtered_diprs_search_group
from repro.query.types import DIPRQuery, FilterPredicate, IndexKind, QueryKind

MAX_GROUP = 8


@lru_cache(maxsize=8)
def _group_data(n=600, dim=16, num_critical=35, seed=0):
    """Clustered keys + RoarGraph + MAX_GROUP query heads chasing the cluster."""
    rng = np.random.default_rng(seed)
    keys = rng.normal(0.0, 0.35, size=(n, dim)).astype(np.float32)
    direction = rng.normal(size=dim)
    direction /= np.linalg.norm(direction)
    critical = rng.choice(n, size=num_critical, replace=False)
    keys[critical] += (6.0 * direction).astype(np.float32)
    query_sample = (
        direction[None, :] * np.sqrt(dim) + rng.normal(0, 0.8, size=(300, dim))
    ).astype(np.float32)
    index = RoarGraphIndex()
    index.build(keys, query_sample=query_sample)
    queries = (
        direction[None, :] * np.sqrt(dim) + rng.normal(0, 0.5, size=(MAX_GROUP, dim))
    ).astype(np.float32)
    return keys, index, queries


def _mask(kind: str, n: int, seed: int) -> np.ndarray | None:
    if kind == "none":
        return None
    rng = np.random.default_rng(1000 + seed)
    fraction = 0.25 if kind == "sparse" else 0.9
    mask = rng.random(n) < fraction
    mask[:4] = True  # keep a toehold so masked runs are not trivially empty
    return mask


def _window_seeds(keys, queries, allowed, beta):
    """Realistic per-head seeds: a bit below each head's best allowed score."""
    scores = queries @ keys.T
    if allowed is not None:
        scores = np.where(allowed[None, :], scores, -np.inf)
    return (scores.max(axis=1) - beta / 2).astype(np.float32)


def _assert_head_matches(group_result, per_head_result):
    np.testing.assert_array_equal(
        np.sort(group_result.indices), np.sort(per_head_result.indices)
    )
    np.testing.assert_allclose(
        np.sort(group_result.scores), np.sort(per_head_result.scores), atol=1e-5
    )


class TestGroupFrontierGrid:
    """The headline grid: group-frontier vs per-head oracle, exact top sets."""

    @pytest.mark.parametrize("capacity", [8, 64])
    @pytest.mark.parametrize("seeded", [False, True], ids=["no-seed", "per-head-seed"])
    @pytest.mark.parametrize("mask_kind", ["none", "sparse", "dense"])
    @pytest.mark.parametrize("beta", [3.0, 9.0])
    @pytest.mark.parametrize("gqa", [1, 4, 8])
    def test_filtered_top_set_matches_per_head(self, gqa, beta, mask_kind, seeded, capacity):
        keys, index, all_queries = _group_data()
        queries = all_queries[:gqa]
        allowed = _mask(mask_kind, keys.shape[0], seed=gqa)
        seeds = _window_seeds(keys, queries, allowed, beta) if seeded else None

        group_results, group_stats = diprs_search_group(
            keys,
            index.graph,
            queries,
            beta,
            [index.entry_point],
            capacity_threshold=capacity,
            window_max_scores=seeds,
            allowed=allowed,
        )
        assert len(group_results) == gqa
        per_head_distance = 0
        for head in range(gqa):
            per_head_result, per_head_stats = diprs_search(
                keys,
                index.graph,
                queries[head],
                beta,
                [index.entry_point],
                capacity_threshold=capacity,
                window_max_score=None if seeds is None else float(seeds[head]),
                allowed=allowed,
            )
            per_head_distance += per_head_stats.num_distance_computations
            # superset by the union expansion policy...
            assert set(per_head_result.indices.tolist()) <= set(group_results[head].indices.tolist())
            # ...and on clustered data the filtered top sets match exactly
            _assert_head_matches(group_results[head], per_head_result)
            if allowed is not None:
                assert np.all(allowed[group_results[head].indices])
            scores = group_results[head].scores
            if scores.size:
                assert np.all(scores >= scores.max() - beta - 1e-4)
        if gqa >= 4:
            # the shared walk scores each node once for the whole group
            assert group_stats.num_distance_computations < per_head_distance
        else:
            assert group_stats.num_distance_computations <= per_head_distance

    def test_max_tokens_cap_is_per_head(self):
        keys, index, queries = _group_data()
        results, _ = diprs_search_group(
            keys, index.graph, queries[:4], 20.0, [index.entry_point], max_tokens=5
        )
        for result in results:
            assert len(result) <= 5

    def test_group_scores_are_true_inner_products(self):
        keys, index, queries = _group_data()
        results, _ = diprs_search_group(keys, index.graph, queries[:4], 8.0, [index.entry_point])
        for head, result in enumerate(results):
            expected = keys[result.indices] @ queries[head]
            np.testing.assert_allclose(result.scores, expected, atol=1e-5)


class TestGroupFrontierDegenerate:
    def test_single_node_graph(self):
        vectors = np.ones((1, 4), dtype=np.float32)
        graph = NeighborGraph.from_lists([[]])
        queries = np.asarray([[1.0, 0, 0, 0], [-1.0, 0, 0, 0]], dtype=np.float32)
        results, stats = diprs_search_group(vectors, graph, queries, 2.0, [0])
        for head, result in enumerate(results):
            per_head, _ = diprs_search(vectors, graph, queries[head], 2.0, [0])
            _assert_head_matches(result, per_head)
        assert stats.num_distance_computations == 1

    def test_disconnected_components_stay_unreached(self):
        # two 3-cliques with no edges between them; entries sit in the first
        rng = np.random.default_rng(5)
        vectors = rng.normal(size=(6, 8)).astype(np.float32)
        vectors[3:] += 10.0  # the unreachable component scores far higher
        adjacency = [[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]]
        graph = NeighborGraph.from_lists(adjacency)
        queries = rng.normal(size=(4, 8)).astype(np.float32)
        results, stats = diprs_search_group(vectors, graph, queries, 50.0, [0])
        for head, result in enumerate(results):
            assert np.all(result.indices < 3)
            per_head, _ = diprs_search(vectors, graph, queries[head], 50.0, [0])
            _assert_head_matches(result, per_head)
        assert stats.num_distance_computations <= 3

    def test_all_masked_returns_empty_everywhere(self):
        keys, index, queries = _group_data()
        allowed = np.zeros(keys.shape[0], dtype=bool)
        results, _ = diprs_search_group(
            keys, index.graph, queries[:4], 8.0, [index.entry_point], allowed=allowed
        )
        for result in results:
            assert len(result) == 0

    def test_one_to_one_group_is_the_scalar_walk(self):
        """g=1 shares nothing: traversal, stats and results equal the scalar."""
        keys, index, queries = _group_data()
        results, stats = diprs_search_group(
            keys, index.graph, queries[:1], 8.0, [index.entry_point], capacity_threshold=16
        )
        per_head, per_head_stats = diprs_search(
            keys, index.graph, queries[0], 8.0, [index.entry_point], capacity_threshold=16
        )
        _assert_head_matches(results[0], per_head)
        assert stats.num_distance_computations == per_head_stats.num_distance_computations
        assert stats.num_hops == per_head_stats.num_hops
        assert stats.per_head[0].num_appended == per_head_stats.num_appended
        assert stats.per_head[0].num_pruned == per_head_stats.num_pruned

    def test_rejects_mismatched_seed_count(self):
        keys, index, queries = _group_data()
        with pytest.raises(ValueError):
            diprs_search_group(
                keys, index.graph, queries[:4], 8.0, [index.entry_point],
                window_max_scores=np.zeros(3, dtype=np.float32),
            )


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(0, 40),
    gqa=st.sampled_from([1, 2, 4, 8]),
    beta=st.floats(min_value=2.0, max_value=15.0),
    capacity=st.integers(min_value=4, max_value=64),
    mask_kind=st.sampled_from(["none", "sparse", "dense"]),
    seeded=st.booleans(),
)
def test_group_frontier_properties(seed, gqa, beta, capacity, mask_kind, seeded):
    """Property suite: superset, threshold respect, mask respect, shared work."""
    keys, index, all_queries = _group_data(seed=seed % 4)
    rng = np.random.default_rng(seed)
    queries = all_queries[:gqa] + rng.normal(0, 0.05, size=(gqa, keys.shape[1])).astype(np.float32)
    allowed = _mask(mask_kind, keys.shape[0], seed=seed)
    seeds = _window_seeds(keys, queries, allowed, beta) if seeded else None

    results, stats = diprs_search_group(
        keys,
        index.graph,
        queries,
        beta,
        [index.entry_point],
        capacity_threshold=capacity,
        window_max_scores=seeds,
        allowed=allowed,
    )
    per_head_distance = 0
    for head in range(gqa):
        per_head_result, per_head_stats = diprs_search(
            keys,
            index.graph,
            queries[head],
            beta,
            [index.entry_point],
            capacity_threshold=capacity,
            window_max_score=None if seeds is None else float(seeds[head]),
            allowed=allowed,
        )
        per_head_distance += per_head_stats.num_distance_computations
        assert set(per_head_result.indices.tolist()) <= set(results[head].indices.tolist())
        scores = results[head].scores
        if scores.size:
            assert np.all(scores >= scores.max() - beta - 1e-4)
        if allowed is not None:
            assert np.all(allowed[results[head].indices])
    assert stats.num_distance_computations <= per_head_distance
    assert stats.num_heads == gqa


class TestFilteredGroupFrontier:
    def test_matches_per_head_filtered_search(self):
        keys, index, queries = _group_data()
        predicate = FilterPredicate(max_position=450)
        results, stats = filtered_diprs_search_group(
            keys, index.graph, queries[:4], 8.0, [index.entry_point], predicate,
            capacity_threshold=32,
        )
        per_head_distance = 0
        for head, result in enumerate(results):
            assert np.all(result.indices < 450)
            per_head, per_head_stats = filtered_diprs_search(
                keys, index.graph, queries[head], 8.0, [index.entry_point], predicate,
                capacity_threshold=32,
            )
            per_head_distance += per_head_stats.num_distance_computations
            assert set(per_head.indices.tolist()) <= set(result.indices.tolist())
            _assert_head_matches(result, per_head)
        assert stats.num_distance_computations < per_head_distance

    def test_filtered_out_entry_point_falls_back(self):
        keys, index, queries = _group_data()
        predicate = FilterPredicate(max_position=50)
        results, _ = filtered_diprs_search_group(
            keys, index.graph, queries[:4], 10.0, [keys.shape[0] - 1], predicate
        )
        for result in results:
            assert np.all(result.indices < 50)


class TestExecutorGroupWiring:
    def _layer_data(self, num_kv_heads=2, group_size=4, n=400, seed=3):
        rng = np.random.default_rng(seed)
        keys = rng.normal(0, 0.35, size=(num_kv_heads, n, 16)).astype(np.float32)
        queries = np.empty((num_kv_heads * group_size, 16), dtype=np.float32)
        fine = []
        for kv_head in range(num_kv_heads):
            direction = rng.normal(size=16)
            direction /= np.linalg.norm(direction)
            cluster = rng.choice(n, size=25, replace=False)
            keys[kv_head, cluster] += (5.0 * direction).astype(np.float32)
            sample = (
                direction[None, :] * 4.0 + rng.normal(0, 0.8, size=(200, 16))
            ).astype(np.float32)
            index = RoarGraphIndex()
            index.build(keys[kv_head], query_sample=sample)
            fine.append(index)
            for slot in range(group_size):
                queries[kv_head * group_size + slot] = (
                    direction * 4.0 + rng.normal(0, 0.4, 16)
                ).astype(np.float32)
        data = LayerIndexData(
            keys=keys, fine_indexes=fine, shared=True, gqa_group_size=group_size
        )
        return data, queries

    def test_group_path_matches_per_head_path(self):
        data, queries = self._layer_data()
        plan = ExecutionPlan(QueryKind.DIPR, IndexKind.FINE, query=DIPRQuery(beta=6.0))
        grouped = PlanExecutor(fine_frontier_batching=True).retrieve_heads(plan, data, queries)
        per_head = PlanExecutor(fine_frontier_batching=False).retrieve_heads(plan, data, queries)
        assert sum(o.num_distance_computations for o in grouped) < sum(
            o.num_distance_computations for o in per_head
        )
        for group_outcome, head_outcome in zip(grouped, per_head):
            np.testing.assert_array_equal(
                np.sort(group_outcome.positions), np.sort(head_outcome.positions)
            )

    def test_group_path_threads_window_seeds(self):
        data, queries = self._layer_data()
        plan = ExecutionPlan(QueryKind.DIPR, IndexKind.FINE, query=DIPRQuery(beta=6.0))
        executor = PlanExecutor(fine_frontier_batching=True)
        num_heads = queries.shape[0]
        # a seed far above every score prunes everything, proving delivery
        huge = np.full(num_heads, 1e9, dtype=np.float32)
        outcomes = executor.retrieve_heads(plan, data, queries, window_max_scores=huge)
        assert all(outcome.num_selected == 0 for outcome in outcomes)

    def test_per_query_head_indexes_fall_back_to_per_head_walks(self):
        data, queries = self._layer_data(num_kv_heads=1, group_size=2)
        data.shared = False
        data.gqa_group_size = 1
        data.fine_indexes = [data.fine_indexes[0], data.fine_indexes[0]]
        plan = ExecutionPlan(QueryKind.DIPR, IndexKind.FINE, query=DIPRQuery(beta=6.0))
        executor = PlanExecutor(fine_frontier_batching=True)
        outcomes = executor.retrieve_heads(plan, data, queries)
        oracle = PlanExecutor(fine_frontier_batching=False).retrieve_heads(plan, data, queries)
        for outcome, expected in zip(outcomes, oracle):
            np.testing.assert_array_equal(outcome.positions, expected.positions)
            assert outcome.num_distance_computations == expected.num_distance_computations

    @pytest.mark.parametrize("bad_shape", [(4, 1), (1, 4), (5,), ()], ids=str)
    def test_window_max_scores_shape_is_validated(self, bad_shape):
        """Regression: a (g, 1) seed array used to index as 1-element rows."""
        data, queries = self._layer_data()
        plan = ExecutionPlan(QueryKind.DIPR, IndexKind.FINE, query=DIPRQuery(beta=6.0))
        executor = PlanExecutor(fine_frontier_batching=False)
        heads = queries[:4]
        seeds = np.zeros(bad_shape, dtype=np.float32)
        with pytest.raises(ValueError, match="window_max_scores"):
            executor.retrieve_heads(plan, data, heads, window_max_scores=seeds)


class TestSessionGroupFrontier:
    def _context(self, rng, num_kv_heads=2, group_size=4, num_tokens=192, head_dim=8):
        keys = rng.normal(0, 0.35, size=(num_kv_heads, num_tokens, head_dim)).astype(np.float32)
        values = rng.normal(size=(num_kv_heads, num_tokens, head_dim)).astype(np.float32)
        directions = []
        indexes = []
        for kv_head in range(num_kv_heads):
            direction = rng.normal(size=head_dim)
            direction /= np.linalg.norm(direction)
            cluster = rng.choice(num_tokens, size=16, replace=False)
            keys[kv_head, cluster] += (4.0 * direction).astype(np.float32)
            directions.append(direction)
            sample = (
                direction[None, :] * 3.0 + rng.normal(0, 0.8, size=(96, head_dim))
            ).astype(np.float32)
            index = RoarGraphIndex()
            index.build(keys[kv_head], query_sample=sample)
            indexes.append(index)
        snapshot = KVSnapshot(tokens=list(range(num_tokens)), keys={0: keys}, values={0: values})
        context = StoredContext(context_id="group-frontier", snapshot=snapshot)
        context.fine_indexes[0] = LayerIndexes(
            layer=0, indexes=indexes, shared=True, gqa_group_size=group_size
        )
        return context, directions

    def test_session_outputs_match_per_head_fallback(self):
        """End-to-end decode: the group walk changes work counters, not outputs."""
        rng = np.random.default_rng(17)
        group_size, num_kv_heads, head_dim = 4, 2, 8
        num_heads = group_size * num_kv_heads
        context, directions = self._context(rng, num_kv_heads, group_size)
        config = AlayaDBConfig(
            short_context_threshold=16,
            window_initial_tokens=4,
            window_last_tokens=8,
            dipr_beta=5.0,
            scale_beta_to_head_dim=False,
            dipr_capacity_threshold=16,
            gpu_memory_budget_bytes=1,
            flat_index_layers=(),
        )

        def run(fine_frontier_batching: bool):
            session = Session(
                replace(config, fine_frontier_batching=fine_frontier_batching),
                context=context,
                reused_prefix_length=context.num_tokens,
                num_layers=1,
            )
            step_rng = np.random.default_rng(29)
            outputs = []
            for _ in range(3):
                q = np.stack(
                    [
                        directions[head // group_size] * 3.0
                        + step_rng.normal(0, 0.4, head_dim)
                        for head in range(num_heads)
                    ]
                ).astype(np.float32)[:, None, :]
                k = step_rng.normal(0, 0.35, size=(num_kv_heads, 1, head_dim)).astype(np.float32)
                v = step_rng.normal(size=(num_kv_heads, 1, head_dim)).astype(np.float32)
                session.update_query(q, k, v, layer=0)
                outputs.append(session.attention(q, layer=0))
            return outputs, session.total_decode_stats, session.plan_for_layer(0)

        group_outputs, group_stats, plan = run(fine_frontier_batching=True)
        per_head_outputs, per_head_stats, _ = run(fine_frontier_batching=False)
        assert plan.index_kind == IndexKind.FINE
        for group_output, per_head_output in zip(group_outputs, per_head_outputs):
            np.testing.assert_allclose(group_output, per_head_output, atol=1e-4)
        assert group_stats.num_selected_tokens == per_head_stats.num_selected_tokens
        assert group_stats.num_distance_computations < per_head_stats.num_distance_computations
        assert group_stats.num_graph_hops <= per_head_stats.num_graph_hops
        assert group_stats.num_heads == per_head_stats.num_heads
