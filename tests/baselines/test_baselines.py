"""Tests of the baseline sparse-attention methods and the LMCache baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.alayadb_ttft import AlayaDBTTFTModel
from repro.baselines.base import RetrievalCache
from repro.baselines.diprs import DIPRSStrategy
from repro.baselines.full_attention import FullAttentionStrategy
from repro.baselines.infllm import InfLLMStrategy
from repro.baselines.lmcache import LMCacheStore, NoReusePrefill
from repro.baselines.streaming_llm import StreamingLLMStrategy
from repro.baselines.topk_retrieval import TopKRetrievalStrategy
from repro.errors import ContextNotFoundError
from repro.kvcache.serialization import KVSnapshot
from repro.simulator.cost_model import CostModel
from repro.workloads.evaluation import evaluate_strategy
from tests.conftest import make_context


class TestFullAttentionStrategy:
    def test_selects_everything(self, small_workload):
        strategy = FullAttentionStrategy()
        strategy.prepare(small_workload.context, 4)
        outcome = strategy.select(0, 0, small_workload.query_for(0, 0, 0), 1024)
        assert outcome.num_selected == 1024
        assert strategy.gpu_token_equivalent(1024) == 1024


class TestStreamingLLM:
    def test_window_only(self):
        strategy = StreamingLLMStrategy(initial_tokens=4, recent_tokens=8)
        resident = strategy.resident_positions(100)
        np.testing.assert_array_equal(resident, [0, 1, 2, 3, 92, 93, 94, 95, 96, 97, 98, 99])
        outcome = strategy.select(0, 0, np.zeros(16, dtype=np.float32), 100)
        assert outcome.num_selected == 0

    def test_fails_needle_task(self, small_workload):
        strategy = StreamingLLMStrategy(initial_tokens=16, recent_tokens=32)
        result = evaluate_strategy(strategy, small_workload)
        assert result.quality < 50.0


class TestInfLLM:
    def test_selects_block_multiples(self, small_workload):
        strategy = InfLLMStrategy(block_size=32, num_retrieved_blocks=4, initial_tokens=8, recent_tokens=16)
        strategy.prepare(small_workload.context, 4)
        outcome = strategy.select(0, 0, small_workload.query_for(0, 0, 0), 1024)
        assert outcome.num_selected == 4 * 32

    def test_gpu_tokens_include_blocks(self):
        strategy = InfLLMStrategy(block_size=32, num_retrieved_blocks=4, initial_tokens=8, recent_tokens=16)
        assert strategy.gpu_token_equivalent(1024) >= 4 * 32

    def test_quality_beats_streaming_on_needles(self, small_workload):
        infllm = evaluate_strategy(
            InfLLMStrategy(block_size=32, num_retrieved_blocks=8, initial_tokens=8, recent_tokens=16),
            small_workload,
        )
        streaming = evaluate_strategy(
            StreamingLLMStrategy(initial_tokens=8, recent_tokens=16), small_workload
        )
        assert infllm.quality >= streaming.quality


class TestTopKAndDIPRS:
    def test_topk_selects_fixed_count(self, small_workload):
        strategy = TopKRetrievalStrategy(k=20, initial_tokens=8, recent_tokens=16, reuse_context_indexes=False)
        strategy.prepare(small_workload.context, 4)
        outcome = strategy.select(0, 1, small_workload.query_for(0, 0, 1), 1024)
        assert outcome.num_selected == 20

    def test_diprs_selects_dynamic_count(self, recovery_workload):
        strategy = DIPRSStrategy(beta=18.0, initial_tokens=8, recent_tokens=16, reuse_context_indexes=False)
        strategy.prepare(recovery_workload.context, 4)
        sizes = {
            kv_head: strategy.select(0, kv_head * 2, recovery_workload.query_for(0, 0, kv_head * 2), 1024).num_selected
            for kv_head in range(2)
        }
        assert len(set(sizes.values())) > 1 or all(s > 0 for s in sizes.values())

    def test_diprs_quality_close_to_full(self, recovery_workload):
        diprs = evaluate_strategy(
            DIPRSStrategy(beta=18.0, capacity_threshold=128, initial_tokens=8, recent_tokens=16, reuse_context_indexes=False),
            recovery_workload,
        )
        assert diprs.quality > 70.0

    def test_diprs_selects_fewer_tokens_than_topk_at_same_quality_scale(self, recovery_workload):
        topk = evaluate_strategy(
            TopKRetrievalStrategy(k=100, initial_tokens=8, recent_tokens=16, reuse_context_indexes=False),
            recovery_workload,
        )
        diprs = evaluate_strategy(
            DIPRSStrategy(beta=18.0, capacity_threshold=128, initial_tokens=8, recent_tokens=16, reuse_context_indexes=False),
            recovery_workload,
        )
        assert diprs.mean_selected_per_head < topk.mean_selected_per_head

    def test_strategies_reuse_context_fine_indexes(self):
        from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
        from repro.workloads.generator import WorkloadSpec, generate_workload

        workload = generate_workload(
            WorkloadSpec(name="reuse", context_length=512, num_query_heads=4, num_kv_heads=2, head_dim=16, seed=21)
        )
        context = workload.context
        builder = ContextIndexBuilder(IndexBuildConfig())
        per_layer, _ = builder.build_context(
            context.snapshot.keys, {0: context.query_samples[0]}
        )
        context.fine_indexes = per_layer
        strategy = TopKRetrievalStrategy(k=10, reuse_context_indexes=True)
        strategy.prepare(context, 4)
        assert strategy._indexes[(0, 0)] is per_layer[0].index_for_kv_head(0)


class TestRetrievalCache:
    def test_drives_model_generation(self, tiny_model):
        from repro.core.db import DB
        from repro.core.config import AlayaDBConfig
        from repro.llm.generation import GenerationLoop

        db = DB(AlayaDBConfig(short_context_threshold=16))
        document = "numbers and letters " * 40
        context = db.prefill_and_import(tiny_model, document, build_fine_indexes=False)
        cache = RetrievalCache(StreamingLLMStrategy(initial_tokens=16, recent_tokens=64), context, 4)
        loop = GenerationLoop(tiny_model)
        result = loop.run_tokens(db._tokenize("what?"), cache=cache, max_new_tokens=3)
        assert result.num_generated == 3
        assert cache.sequence_length(0) > context.num_tokens


class TestLMCache:
    def _snapshot(self, num_tokens=64):
        context = make_context(num_tokens=num_tokens)
        return context.snapshot

    def test_store_and_load_roundtrip(self):
        store = LMCacheStore()
        snapshot = self._snapshot()
        stored_bytes = store.store("ctx", snapshot)
        assert 0 < stored_bytes < snapshot.nbytes
        keys, values, seconds = store.load("ctx")
        assert keys[0].shape == snapshot.keys[0].shape
        assert seconds > 0

    def test_missing_context(self):
        store = LMCacheStore()
        with pytest.raises(ContextNotFoundError):
            store.load("missing")

    def test_ttft_grows_with_context_length(self):
        store = LMCacheStore()
        short = store.ttft_for_length(40_000)
        long = store.ttft_for_length(200_000)
        assert long.load_seconds > 4 * short.load_seconds

    def test_alayadb_ttft_nearly_constant(self):
        model = AlayaDBTTFTModel()
        short = model.ttft_for_length(40_000)
        long = model.ttft_for_length(200_000)
        assert long.total_seconds < 2 * short.total_seconds

    def test_relative_ordering_matches_paper(self):
        cost = CostModel()
        length = 120_000
        no_reuse = NoReusePrefill(cost).ttft_for_length(length).total_seconds
        lmcache = LMCacheStore(cost).ttft_for_length(length).total_seconds
        alayadb = AlayaDBTTFTModel(cost).ttft_for_length(length).total_seconds
        assert alayadb < lmcache < no_reuse
        assert lmcache / alayadb > 5          # paper: 19-42x
        assert no_reuse / alayadb > 100       # paper: 2-3 orders of magnitude
