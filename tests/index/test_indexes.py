"""Tests of the vector indexes: flat, graph, HNSW, RoarGraph, coarse, builder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexNotBuiltError
from repro.index.base import SearchResult
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.index.coarse import CoarseBlockIndex
from repro.index.flat import FlatIndex
from repro.index.graph import NeighborGraph, beam_search
from repro.index.hnsw import HNSWIndex
from repro.index.knn_graph import cross_knn, exact_knn, nn_descent_knn
from repro.index.roargraph import RoarGraphConfig, RoarGraphIndex


def _vectors(n=500, dim=16, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim)).astype(np.float32)


class TestNeighborGraph:
    def test_from_lists_roundtrip(self):
        lists = [[1, 2], [0], [0, 1], []]
        graph = NeighborGraph.from_lists(lists)
        assert graph.num_nodes == 4
        assert graph.num_edges == 5
        assert graph.to_lists() == lists

    def test_neighbors_slice(self):
        graph = NeighborGraph.from_lists([[1], [0, 2], [1]])
        np.testing.assert_array_equal(graph.neighbors(1), [0, 2])
        assert graph.degree(1) == 2

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            NeighborGraph(np.asarray([1, 2]), np.asarray([1, 2]))

    def test_beam_search_finds_best_on_connected_graph(self):
        vectors = _vectors(200, 8)
        knn = exact_knn(vectors, 8)
        graph = NeighborGraph.from_lists([list(row) for row in knn])
        query = np.random.default_rng(1).normal(size=8).astype(np.float32)
        truth = int(np.argmax(vectors @ query))
        indices, scores, stats = beam_search(vectors, graph, query, ef=32, entry_points=[0])
        assert truth in indices[:5]
        assert stats.num_distance_computations > 0


class TestKNNConstruction:
    def test_exact_knn_correct(self):
        vectors = _vectors(50, 8)
        neighbors = exact_knn(vectors, 3)
        scores = vectors @ vectors.T
        np.fill_diagonal(scores, -np.inf)
        for node in range(50):
            expected = set(np.argsort(-scores[node])[:3].tolist())
            assert set(neighbors[node].tolist()) == expected

    def test_exact_knn_blocked_matches_unblocked(self):
        vectors = _vectors(100, 8)
        np.testing.assert_array_equal(exact_knn(vectors, 5, block_size=7), exact_knn(vectors, 5))

    def test_cross_knn_correct(self):
        base = _vectors(80, 8, seed=1)
        queries = _vectors(10, 8, seed=2)
        links = cross_knn(queries, base, 4)
        scores = queries @ base.T
        for i in range(10):
            assert set(links[i].tolist()) == set(np.argsort(-scores[i])[:4].tolist())

    def test_nn_descent_reasonable_recall(self):
        vectors = _vectors(300, 8)
        approx = nn_descent_knn(vectors, 8, num_iterations=6, seed=0)
        exact = exact_knn(vectors, 8)
        recall = np.mean([
            len(set(approx[i]) & set(exact[i])) / 8 for i in range(300)
        ])
        assert recall > 0.5


class TestFlatIndex:
    def test_topk_matches_numpy(self):
        vectors = _vectors()
        index = FlatIndex()
        index.build(vectors)
        query = np.random.default_rng(3).normal(size=16).astype(np.float32)
        result = index.search_topk(query, 10)
        expected = np.argsort(-(vectors @ query))[:10]
        np.testing.assert_array_equal(result.indices, expected)

    def test_range_query_semantics(self):
        vectors = _vectors()
        index = FlatIndex()
        index.build(vectors)
        query = np.random.default_rng(4).normal(size=16).astype(np.float32)
        beta = 2.0
        result = index.search_range(query, beta)
        scores = vectors @ query
        expected = np.flatnonzero(scores >= scores.max() - beta)
        assert set(result.indices.tolist()) == set(expected.tolist())

    def test_batch_searches_match_per_query(self):
        vectors = _vectors()
        index = FlatIndex()
        index.build(vectors)
        rng = np.random.default_rng(5)
        queries = rng.normal(size=(4, 16)).astype(np.float32)
        allowed = np.arange(vectors.shape[0]) < vectors.shape[0] // 2
        for masked in (None, allowed):
            range_results = index.search_range_batch(queries, 2.0, allowed=masked)
            topk_results = index.search_topk_batch(queries, 10, allowed=masked)
            for i, query in enumerate(queries):
                expected_range = index.search_range(query, 2.0, allowed=masked)
                np.testing.assert_array_equal(range_results[i].indices, expected_range.indices)
                assert range_results[i].num_distance_computations == vectors.shape[0]
                expected_topk = index.search_topk(query, 10, allowed=masked)
                np.testing.assert_array_equal(topk_results[i].indices, expected_topk.indices)

    def test_batch_rejects_bad_shape(self):
        index = FlatIndex()
        index.build(_vectors())
        with pytest.raises(ValueError):
            index.search_range_batch(np.zeros((2, 3), dtype=np.float32), 1.0)

    def test_allowed_mask_restricts_results(self):
        vectors = _vectors(100)
        index = FlatIndex()
        index.build(vectors)
        query = np.random.default_rng(5).normal(size=16).astype(np.float32)
        allowed = np.zeros(100, dtype=bool)
        allowed[:30] = True
        result = index.search_topk(query, 10, allowed=allowed)
        assert (result.indices < 30).all()

    def test_append(self):
        index = FlatIndex()
        index.build(_vectors(10))
        index.append(_vectors(5, seed=9))
        assert index.num_vectors == 15

    def test_unbuilt_raises(self):
        with pytest.raises(IndexNotBuiltError):
            FlatIndex().search_topk(np.zeros(4, dtype=np.float32), 1)

    @settings(deadline=None, max_examples=25)
    @given(beta=st.floats(min_value=0.0, max_value=10.0), seed=st.integers(0, 50))
    def test_property_range_results_within_beta(self, beta, seed):
        vectors = _vectors(128, 8, seed=seed)
        index = FlatIndex()
        index.build(vectors)
        query = np.random.default_rng(seed + 1).normal(size=8).astype(np.float32)
        result = index.search_range(query, beta)
        scores = vectors @ query
        assert len(result) >= 1
        assert np.all(result.scores >= scores.max() - beta - 1e-5)
        # every non-returned vector is below the threshold
        excluded = np.setdiff1d(np.arange(128), result.indices)
        if excluded.size:
            assert np.all(scores[excluded] < scores.max() - beta + 1e-5)


class TestHNSW:
    def test_recall_against_brute_force(self):
        vectors = _vectors(400, 16)
        index = HNSWIndex(max_degree=12, ef_construction=48, seed=0)
        index.build(vectors)
        queries = _vectors(20, 16, seed=7)
        hits, total = 0, 0
        for query in queries:
            truth = set(index.exact_topk(query, 10).indices.tolist())
            found = set(index.search_topk(query, 10, ef=64).indices.tolist())
            hits += len(truth & found)
            total += 10
        assert hits / total > 0.7

    def test_memory_accounting(self):
        index = HNSWIndex()
        index.build(_vectors(100))
        assert index.memory_bytes > _vectors(100).nbytes


class TestRoarGraph:
    def test_recall_with_ood_queries(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=(1000, 16)).astype(np.float32)
        queries = (rng.normal(size=(300, 16)) + 0.8).astype(np.float32)
        index = RoarGraphIndex()
        index.build(keys, query_sample=queries[:200])
        assert index.recall_at_k(queries[200:220], 10) > 0.8

    def test_builds_without_query_sample(self):
        index = RoarGraphIndex()
        index.build(_vectors(200))
        assert index.graph.num_nodes == 200
        result = index.search_topk(np.random.default_rng(1).normal(size=16).astype(np.float32), 5)
        assert len(result) == 5

    def test_max_degree_respected(self):
        config = RoarGraphConfig(max_degree=8)
        index = RoarGraphIndex(config)
        index.build(_vectors(300), query_sample=_vectors(100, seed=2))
        degrees = [index.graph.degree(node) for node in range(index.graph.num_nodes)]
        assert max(degrees) <= 8

    def test_entry_point_is_max_norm(self):
        vectors = _vectors(100)
        vectors[42] *= 10.0
        index = RoarGraphIndex()
        index.build(vectors)
        assert index.entry_point == 42

    def test_graph_has_no_self_loops_after_prune(self):
        index = RoarGraphIndex(RoarGraphConfig(max_degree=6))
        index.build(_vectors(150))
        for node in range(index.graph.num_nodes):
            assert node not in set(index.graph.neighbors(node).tolist())


class TestCoarseIndex:
    def test_block_partitioning(self):
        index = CoarseBlockIndex(block_size=32)
        index.build(_vectors(100))
        assert index.num_blocks == 4
        assert index.blocks[-1].num_tokens == 4

    def test_selected_positions_are_block_aligned(self):
        index = CoarseBlockIndex(block_size=25)
        index.build(_vectors(100))
        query = np.random.default_rng(6).normal(size=16).astype(np.float32)
        positions = index.selected_positions(query, 2)
        assert positions.shape[0] == 50

    def test_batch_selected_positions_match_per_query(self):
        index = CoarseBlockIndex(block_size=25)
        index.build(_vectors(100))
        queries = np.random.default_rng(7).normal(size=(5, 16)).astype(np.float32)
        batched = index.selected_positions_batch(queries, 2)
        assert len(batched) == 5
        for i, query in enumerate(queries):
            np.testing.assert_array_equal(batched[i], index.selected_positions(query, 2))

    def test_topk_covers_best_token_when_block_found(self):
        vectors = _vectors(256)
        query = np.random.default_rng(8).normal(size=16).astype(np.float32)
        # plant an extreme token so its block is certainly selected
        vectors[100] = query * 10
        index = CoarseBlockIndex(block_size=32, num_representatives=4)
        index.build(vectors)
        result = index.search_topk(query, 5)
        assert 100 in result.indices

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            CoarseBlockIndex(block_size=0)


class TestContextIndexBuilder:
    def _layer_data(self, num_kv=2, num_q=4, n=300, dim=16, seed=0):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(num_kv, n, dim)).astype(np.float32)
        queries = rng.normal(size=(num_q, 64, dim)).astype(np.float32)
        return keys, queries

    def test_gqa_sharing_reduces_index_count(self):
        keys, queries = self._layer_data()
        shared_builder = ContextIndexBuilder(IndexBuildConfig(gqa_share=True))
        per_head_builder = ContextIndexBuilder(IndexBuildConfig(gqa_share=False))
        shared, shared_report = shared_builder.build_layer(0, keys, queries)
        per_head, per_head_report = per_head_builder.build_layer(0, keys, queries)
        assert shared_report.num_indexes == 2
        assert per_head_report.num_indexes == 4
        assert shared_report.index_memory_bytes < per_head_report.index_memory_bytes

    def test_index_lookup_by_query_head(self):
        keys, queries = self._layer_data()
        builder = ContextIndexBuilder(IndexBuildConfig(gqa_share=True))
        layer_indexes, _ = builder.build_layer(0, keys, queries)
        assert layer_indexes.index_for_query_head(0) is layer_indexes.index_for_query_head(1)
        assert layer_indexes.index_for_query_head(0) is not layer_indexes.index_for_query_head(2)

    def test_gpu_backend_models_speedup(self):
        keys, queries = self._layer_data()
        cpu = ContextIndexBuilder(IndexBuildConfig(backend="cpu", gqa_share=False))
        gpu = ContextIndexBuilder(IndexBuildConfig(backend="gpu", gqa_share=False))
        _, cpu_report = cpu.build_layer(0, keys, queries)
        _, gpu_report = gpu.build_layer(0, keys, queries)
        assert gpu_report.modeled_seconds < cpu_report.modeled_seconds

    def test_build_context_aggregates_layers(self):
        keys, queries = self._layer_data()
        builder = ContextIndexBuilder()
        layer_indexes, report = builder.build_context({0: keys, 1: keys}, {0: queries, 1: queries})
        assert set(layer_indexes) == {0, 1}
        assert report.num_indexes == 4

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            IndexBuildConfig(backend="tpu")

    def test_search_result_top(self):
        result = SearchResult(indices=np.arange(10), scores=np.arange(10, 0, -1).astype(np.float32))
        top = result.top(3)
        assert len(top) == 3
        np.testing.assert_array_equal(top.indices, [0, 1, 2])
