"""Tests of the versioned index serialization: a loaded index must be
*bit-identical* under search to the index that was saved — deserialization
reattaches the stored graph/vectors, it never re-runs a build."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ContextLoadError, IndexNotBuiltError
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.index.coarse import CoarseBlockIndex
from repro.index.roargraph import RoarGraphConfig, RoarGraphIndex
from repro.index.serialization import (
    deserialize_context_indexes,
    load_coarse,
    load_roargraph,
    save_coarse,
    save_roargraph,
    serialize_context_indexes,
)


def _vectors(n, dim, seed):
    return np.random.default_rng(seed).normal(size=(n, dim)).astype(np.float32)


def _built_roargraph(n=200, dim=16, seed=0):
    index = RoarGraphIndex(RoarGraphConfig(num_query_links=4, max_degree=8))
    index.build(_vectors(n, dim, seed), query_sample=_vectors(32, dim, seed + 1))
    return index


def _assert_search_identical(original, loaded, queries, k=10):
    """Exact (bitwise) agreement on ids *and* scores over a query grid."""
    for query in queries:
        a = original.search_topk(query, k=k)
        b = loaded.search_topk(query, k=k)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.scores, b.scores)


class TestRoarGraphSerialization:
    def test_roundtrip_search_bit_identical(self, tmp_path):
        index = _built_roargraph()
        path = save_roargraph(index, tmp_path / "rg.npz")
        loaded = load_roargraph(path)
        # the graph itself round-trips exactly
        np.testing.assert_array_equal(index.graph.neighbor_ids, loaded.graph.neighbor_ids)
        np.testing.assert_array_equal(index.graph.offsets, loaded.graph.offsets)
        np.testing.assert_array_equal(index.vectors, loaded.vectors)
        assert index.entry_point == loaded.entry_point
        assert index.config == loaded.config
        _assert_search_identical(index, loaded, _vectors(25, 16, 99))

    def test_index_save_load_methods(self, tmp_path):
        index = _built_roargraph(seed=3)
        index.save(tmp_path / "idx.npz")
        loaded = RoarGraphIndex.load(tmp_path / "idx.npz")
        _assert_search_identical(index, loaded, _vectors(10, 16, 42))

    def test_unbuilt_index_refuses_save(self, tmp_path):
        with pytest.raises(IndexNotBuiltError):
            save_roargraph(RoarGraphIndex(), tmp_path / "x.npz")

    def test_missing_file_raises_clean_error(self, tmp_path):
        with pytest.raises(ContextLoadError):
            load_roargraph(tmp_path / "nope.npz")

    def test_truncated_file_raises_clean_error(self, tmp_path):
        path = save_roargraph(_built_roargraph(n=80), tmp_path / "rg.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.raises(ContextLoadError):
            load_roargraph(path)

    def test_kind_mismatch_raises(self, tmp_path):
        coarse = CoarseBlockIndex(block_size=16)
        coarse.build(_vectors(64, 8, 0))
        path = save_coarse(coarse, tmp_path / "cb.npz")
        with pytest.raises(ContextLoadError):
            load_roargraph(path)


class TestCoarseSerialization:
    def test_roundtrip_search_bit_identical(self, tmp_path):
        index = CoarseBlockIndex(block_size=16, num_representatives=3)
        index.build(_vectors(130, 8, 5))  # ragged tail block on purpose
        loaded = load_coarse(save_coarse(index, tmp_path / "cb.npz"))
        for query in _vectors(20, 8, 6):
            a_blocks = [b.block_id for b in index.search_blocks(query, num_blocks=4)]
            b_blocks = [b.block_id for b in loaded.search_blocks(query, num_blocks=4)]
            assert a_blocks == b_blocks
            a = index.search_topk(query, k=8)
            b = loaded.search_topk(query, k=8)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_kind_mismatch_raises(self, tmp_path):
        path = save_roargraph(_built_roargraph(n=60, dim=8), tmp_path / "rg.npz")
        with pytest.raises(ContextLoadError):
            load_coarse(path)


class TestContextIndexBlob:
    """A whole context's indexes (fine + coarse + query samples) in one blob."""

    @pytest.fixture()
    def built(self):
        rng = np.random.default_rng(11)
        num_layers, num_kv_heads, n, dim = 2, 2, 96, 8
        keys = {
            layer: rng.normal(size=(num_kv_heads, n, dim)).astype(np.float32)
            for layer in range(num_layers)
        }
        queries = {
            layer: rng.normal(size=(4, 24, dim)).astype(np.float32)
            for layer in range(num_layers)
        }
        builder = ContextIndexBuilder(IndexBuildConfig())
        fine, _ = builder.build_context(keys, queries)
        coarse = {}
        for layer in range(num_layers):
            per_head = []
            for head in range(num_kv_heads):
                index = CoarseBlockIndex(block_size=16)
                index.build(keys[layer][head])
                per_head.append(index)
            coarse[layer] = per_head
        samples = {layer: queries[layer] for layer in range(num_layers)}
        return fine, coarse, samples, dim

    def test_roundtrip(self, built):
        fine, coarse, samples, dim = built
        blob = serialize_context_indexes(fine, coarse, samples)
        fine2, coarse2, samples2 = deserialize_context_indexes(blob)

        assert set(fine2) == set(fine)
        probes = _vectors(10, dim, 77)
        for layer, layer_indexes in fine.items():
            restored = fine2[layer]
            assert restored.shared == layer_indexes.shared
            assert restored.gqa_group_size == layer_indexes.gqa_group_size
            assert len(restored.indexes) == len(layer_indexes.indexes)
            for a, b in zip(layer_indexes.indexes, restored.indexes):
                _assert_search_identical(a, b, probes, k=5)

        assert set(coarse2) == set(coarse)
        for layer in coarse:
            assert len(coarse2[layer]) == len(coarse[layer])
            for a, b in zip(coarse[layer], coarse2[layer]):
                for query in probes:
                    ra = a.search_topk(query, k=6)
                    rb = b.search_topk(query, k=6)
                    np.testing.assert_array_equal(ra.indices, rb.indices)

        assert set(samples2) == set(samples)
        for layer, sample in samples.items():
            np.testing.assert_array_equal(samples2[layer], sample)

    def test_empty_context_roundtrips(self):
        fine, coarse, samples = deserialize_context_indexes(
            serialize_context_indexes({}, {}, {})
        )
        assert fine == {} and coarse == {} and samples == {}

    def test_truncated_blob_raises_clean_error(self, built):
        fine, coarse, samples, _ = built
        blob = serialize_context_indexes(fine, coarse, samples)
        with pytest.raises(ContextLoadError):
            deserialize_context_indexes(blob[: len(blob) // 2])

    def test_garbage_blob_raises_clean_error(self):
        with pytest.raises(ContextLoadError):
            deserialize_context_indexes(b"definitely not an npz archive")
