"""Tests of the exact attention kernels and the partial-attention merge."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.attention import (
    PartialAttention,
    attention_weights,
    decode_attention,
    full_attention,
    merge_partial_attention,
    partial_attention,
    repeat_kv,
    softmax,
    sparse_attention,
)


def _random_qkv(num_heads=4, num_kv_heads=2, seq=32, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(num_heads, dim)).astype(np.float32)
    k = rng.normal(size=(num_kv_heads, seq, dim)).astype(np.float32)
    v = rng.normal(size=(num_kv_heads, seq, dim)).astype(np.float32)
    return q, k, v


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(3, 7)).astype(np.float32)
        w = softmax(x)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, rtol=1e-5)

    def test_shift_invariance(self):
        x = np.asarray([1.0, 2.0, 3.0], dtype=np.float32)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-5)

    def test_handles_large_values_without_overflow(self):
        x = np.asarray([1e4, 1e4 - 1.0], dtype=np.float32)
        w = softmax(x)
        assert np.isfinite(w).all()


class TestRepeatKV:
    def test_identity_when_heads_match(self):
        kv = np.zeros((4, 3, 2), dtype=np.float32)
        assert repeat_kv(kv, 4) is kv

    def test_expansion_factor(self):
        kv = np.arange(2 * 3 * 2, dtype=np.float32).reshape(2, 3, 2)
        out = repeat_kv(kv, 6)
        assert out.shape == (6, 3, 2)
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[0], out[2])
        np.testing.assert_array_equal(out[3], kv[1])

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            repeat_kv(np.zeros((3, 2, 2), dtype=np.float32), 4)


class TestCausalAttention:
    def test_causal_mask_blocks_future(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(1, 4, 8)).astype(np.float32)
        k = rng.normal(size=(1, 4, 8)).astype(np.float32)
        w = attention_weights(q, k, causal=True)
        upper = np.triu_indices(4, k=1)
        assert np.allclose(w[0][upper], 0.0)

    def test_causal_offset_for_cached_prefix(self):
        # 2 new queries attending over 6 cached keys: the first query sees 5
        # keys (its own position), the second all 6.
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 2, 8)).astype(np.float32)
        k = rng.normal(size=(1, 6, 8)).astype(np.float32)
        w = attention_weights(q, k, causal=True)
        assert w[0, 0, 5] == 0.0
        assert w[0, 1, 5] > 0.0

    def test_full_attention_matches_manual(self):
        q, k, v = _random_qkv()
        out = decode_attention(q, k, v)
        k_r, v_r = repeat_kv(k, 4), repeat_kv(v, 4)
        for head in range(4):
            logits = k_r[head] @ q[head] / np.sqrt(8)
            weights = np.exp(logits - logits.max())
            weights /= weights.sum()
            expected = weights @ v_r[head]
            np.testing.assert_allclose(out[head], expected, rtol=1e-4)

    def test_gqa_equivalence_with_repeated_heads(self):
        q, k, v = _random_qkv(num_heads=4, num_kv_heads=2)
        grouped = decode_attention(q, k, v)
        expanded = decode_attention(q, repeat_kv(k, 4), repeat_kv(v, 4))
        np.testing.assert_allclose(grouped, expanded, rtol=1e-5)


class TestSparseAttention:
    def test_selecting_all_matches_full(self):
        q, k, v = _random_qkv(seq=16)
        full = decode_attention(q, k, v)
        sparse = sparse_attention(q, k, v, np.arange(16))
        np.testing.assert_allclose(full, sparse, rtol=1e-5)

    def test_subset_changes_output(self):
        q, k, v = _random_qkv(seq=16)
        sparse = sparse_attention(q, k, v, np.arange(4))
        full = decode_attention(q, k, v)
        assert not np.allclose(sparse, full)


class TestPartialAttentionMerge:
    def test_two_way_split_matches_full(self):
        q, k, v = _random_qkv(seq=50, seed=3)
        full = decode_attention(q, k, v)
        parts = [
            partial_attention(q, k[:, :20], v[:, :20]),
            partial_attention(q, k[:, 20:], v[:, 20:]),
        ]
        np.testing.assert_allclose(merge_partial_attention(parts), full, atol=1e-5)

    def test_many_way_split_matches_full(self):
        q, k, v = _random_qkv(seq=60, seed=4)
        full = decode_attention(q, k, v)
        parts = [partial_attention(q, k[:, i : i + 7], v[:, i : i + 7]) for i in range(0, 60, 7)]
        np.testing.assert_allclose(merge_partial_attention(parts), full, atol=1e-5)

    def test_empty_parts_are_ignored(self):
        q, k, v = _random_qkv(seq=10, seed=5)
        full = decode_attention(q, k, v)
        parts = [
            PartialAttention.empty(4, 8),
            partial_attention(q, k, v),
        ]
        np.testing.assert_allclose(merge_partial_attention(parts), full, atol=1e-5)

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            merge_partial_attention([PartialAttention.empty(2, 4)])

    def test_single_part_is_copied(self):
        q, k, v = _random_qkv(seq=10, seed=6)
        part = partial_attention(q, k, v)
        merged = merge_partial_attention([part])
        np.testing.assert_allclose(merged, part.output, atol=1e-6)
        merged[0, 0] = 42.0
        assert part.output[0, 0] != 42.0

    @settings(deadline=None, max_examples=30)
    @given(
        seq=st.integers(min_value=2, max_value=64),
        split=st.integers(min_value=1, max_value=63),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_split_anywhere_matches_full(self, seq, split, seed):
        split = min(split, seq - 1)
        q, k, v = _random_qkv(seq=seq, seed=seed)
        full = decode_attention(q, k, v)
        parts = [
            partial_attention(q, k[:, :split], v[:, :split]),
            partial_attention(q, k[:, split:], v[:, split:]),
        ]
        np.testing.assert_allclose(merge_partial_attention(parts), full, atol=1e-4)

    def test_prefill_full_attention_shapes(self):
        rng = np.random.default_rng(7)
        q = rng.normal(size=(4, 5, 8)).astype(np.float32)
        k = rng.normal(size=(2, 5, 8)).astype(np.float32)
        v = rng.normal(size=(2, 5, 8)).astype(np.float32)
        out = full_attention(q, k, v, causal=True)
        assert out.shape == (4, 5, 8)
