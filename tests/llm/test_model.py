"""Tests of the transformer substrate, RoPE, tokenizer, sampling, generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kvcache.cache import DynamicCache
from repro.llm.generation import GenerationLoop, generate
from repro.llm.model import ModelConfig, TransformerModel
from repro.llm.rope import RotaryEmbedding, apply_rotary
from repro.llm.sampling import SamplingConfig, greedy, sample_token
from repro.llm.tokenizer import ByteTokenizer


class TestRotaryEmbedding:
    def test_rotation_preserves_norm(self):
        rope = RotaryEmbedding(head_dim=8, max_positions=16)
        x = np.random.default_rng(0).normal(size=(2, 5, 8)).astype(np.float32)
        rotated = rope.rotate(x, np.arange(5))
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-4
        )

    def test_position_zero_is_identity(self):
        rope = RotaryEmbedding(head_dim=8)
        x = np.random.default_rng(1).normal(size=(1, 1, 8)).astype(np.float32)
        rotated = rope.rotate(x, np.asarray([0]))
        np.testing.assert_allclose(rotated, x, atol=1e-6)

    def test_relative_position_property(self):
        # q(m) . k(n) depends only on (m - n): rotating both by the same
        # offset leaves the inner product unchanged.
        rope = RotaryEmbedding(head_dim=16)
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 1, 16)).astype(np.float32)
        k = rng.normal(size=(1, 1, 16)).astype(np.float32)
        q5, k3 = rope.rotate(q, np.asarray([5])), rope.rotate(k, np.asarray([3]))
        q15, k13 = rope.rotate(q, np.asarray([15])), rope.rotate(k, np.asarray([13]))
        np.testing.assert_allclose(
            float(q5[0, 0] @ k3[0, 0]), float(q15[0, 0] @ k13[0, 0]), rtol=1e-4
        )

    def test_table_grows_on_demand(self):
        rope = RotaryEmbedding(head_dim=4, max_positions=4)
        cos, sin = rope.tables(np.asarray([100]))
        assert cos.shape == (1, 2) and sin.shape == (1, 2)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(head_dim=7)

    def test_apply_rotary_shape(self):
        cos = np.ones((3, 2), dtype=np.float32)
        sin = np.zeros((3, 2), dtype=np.float32)
        x = np.random.default_rng(3).normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(apply_rotary(x, cos, sin), x, atol=1e-6)


class TestTokenizer:
    def test_roundtrip(self):
        tok = ByteTokenizer()
        text = "AlayaDB stores KV caches. Ünïcödé too."
        assert tok.decode(tok.encode(text)) == text

    def test_bos_eos(self):
        tok = ByteTokenizer()
        ids = tok.encode("hi", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id and ids[-1] == tok.eos_id

    def test_vocab_size(self):
        assert ByteTokenizer().vocab_size == 259

    def test_batch_encode(self):
        tok = ByteTokenizer()
        batch = tok.encode_batch(["a", "bc"])
        assert len(batch) == 2 and len(batch[1]) == 3  # bos + 2 bytes


class TestSampling:
    def test_greedy_picks_argmax(self):
        logits = np.asarray([0.1, 5.0, -2.0])
        assert greedy(logits) == 1

    def test_zero_temperature_is_greedy(self):
        logits = np.asarray([0.1, 5.0, -2.0])
        assert sample_token(logits, SamplingConfig(temperature=0.0)) == 1

    def test_sampling_is_deterministic_with_seed(self):
        logits = np.random.default_rng(0).normal(size=50)
        config = SamplingConfig(temperature=1.0, seed=42)
        assert sample_token(logits, config) == sample_token(logits, config)

    def test_top_k_restricts_support(self):
        logits = np.asarray([10.0, 9.0, -50.0, -50.0])
        config = SamplingConfig(temperature=1.0, top_k=2, seed=0)
        tokens = {sample_token(logits, config, np.random.default_rng(i)) for i in range(20)}
        assert tokens.issubset({0, 1})

    def test_top_p_restricts_support(self):
        logits = np.asarray([10.0, 1.0, 0.0, -1.0])
        config = SamplingConfig(temperature=1.0, top_p=0.5, seed=0)
        tokens = {sample_token(logits, config, np.random.default_rng(i)) for i in range(20)}
        assert tokens == {0}


class TestModelConfig:
    def test_head_dim(self):
        assert ModelConfig(dim=64, num_query_heads=8).head_dim == 8

    def test_invalid_dim_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(dim=65, num_query_heads=8)

    def test_invalid_gqa_rejected(self):
        with pytest.raises(ConfigError):
            ModelConfig(num_query_heads=8, num_kv_heads=3)

    def test_llama_like_ratios(self):
        config = ModelConfig.llama_like()
        assert config.num_query_heads == 32 and config.num_kv_heads == 8
        assert config.gqa_group_size == 4


class TestTransformerModel:
    def test_deterministic_weights(self):
        a = TransformerModel(ModelConfig.tiny(seed=5))
        b = TransformerModel(ModelConfig.tiny(seed=5))
        np.testing.assert_array_equal(a.lm_head.weight, b.lm_head.weight)

    def test_forward_shape(self, tiny_model):
        logits = tiny_model.forward([1, 2, 3])
        assert logits.shape == (3, tiny_model.config.vocab_size)

    def test_incremental_decode_matches_full_forward(self, tiny_model):
        tokens = [10, 20, 30, 40, 50]
        full_logits = tiny_model.forward(np.asarray(tokens))
        cache = DynamicCache()
        _, cache = tiny_model.prefill(tokens[:3], cache)
        l4 = tiny_model.decode_step(tokens[3], cache)
        l5 = tiny_model.decode_step(tokens[4], cache)
        np.testing.assert_allclose(l4, full_logits[3], atol=1e-4)
        np.testing.assert_allclose(l5, full_logits[4], atol=1e-4)

    def test_capture_activations(self, tiny_model):
        _, acts = tiny_model.forward([1, 2, 3], capture_activations=True)
        assert len(acts) == tiny_model.config.num_layers
        assert acts[0].queries.shape == (4, 3, tiny_model.config.head_dim)
        assert acts[0].keys.shape == (2, 3, tiny_model.config.head_dim)

    def test_rejects_2d_input(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.forward(np.zeros((2, 3), dtype=np.int64))

    def test_kv_bytes_per_token(self, tiny_model):
        config = tiny_model.config
        expected = 2 * config.num_kv_heads * config.head_dim * 4 * config.num_layers
        assert tiny_model.kv_bytes_per_token() == expected

    def test_parameter_count_positive(self, tiny_model):
        assert tiny_model.num_parameters > 0
        assert tiny_model.num_bytes == pytest.approx(tiny_model.num_parameters * 4, rel=0.01)


class TestBatchedDecode:
    def test_matches_per_request_decode(self, tiny_model):
        """decode_batch row i must equal decode_step on request i's own cache."""
        prompts = [[1, 2, 3, 4], [5, 6, 7], [8, 9, 10, 11, 12], [1, 2]]
        next_tokens = [20, 21, 22, 23]
        sequential, seq_caches = [], []
        for prompt in prompts:
            cache = DynamicCache()
            tiny_model.prefill(prompt, cache)
            seq_caches.append(cache)
        for token, cache in zip(next_tokens, seq_caches):
            sequential.append(tiny_model.decode_step(token, cache))
        batch_caches = []
        for prompt in prompts:
            cache = DynamicCache()
            tiny_model.prefill(prompt, cache)
            batch_caches.append(cache)
        batched = tiny_model.decode_batch(next_tokens, batch_caches)
        assert batched.shape == (len(prompts), tiny_model.config.vocab_size)
        for i in range(len(prompts)):
            np.testing.assert_allclose(batched[i], sequential[i], atol=1e-4)
        # each request's KV cache advanced exactly as in the sequential path
        for seq_cache, batch_cache in zip(seq_caches, batch_caches):
            for layer in range(tiny_model.config.num_layers):
                assert batch_cache.sequence_length(layer) == seq_cache.sequence_length(layer)
                np.testing.assert_allclose(
                    batch_cache.keys(layer), seq_cache.keys(layer), atol=1e-5
                )

    def test_caches_at_different_positions(self, tiny_model):
        """Each batch member is rotated by its own cache position."""
        reference_cache = DynamicCache()
        tiny_model.prefill([1, 2, 3, 4, 5, 6, 7, 8], reference_cache)
        reference = tiny_model.decode_step(9, reference_cache)

        short, long = DynamicCache(), DynamicCache()
        tiny_model.prefill([1, 2], short)
        tiny_model.prefill([1, 2, 3, 4, 5, 6, 7, 8], long)
        batched = tiny_model.decode_batch([9, 9], [short, long])
        np.testing.assert_allclose(batched[1], reference, atol=1e-4)
        assert short.sequence_length(0) == 3
        assert long.sequence_length(0) == 9

    def test_empty_batch(self, tiny_model):
        logits = tiny_model.decode_batch([], [])
        assert logits.shape == (0, tiny_model.config.vocab_size)

    def test_mismatched_lengths_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.decode_batch([1, 2], [DynamicCache()])
        with pytest.raises(ValueError):
            tiny_model.decode_batch(np.zeros((2, 2), dtype=np.int64), [DynamicCache()] * 2)


class TestGeneration:
    def test_generates_requested_tokens(self, tiny_model):
        result = generate(tiny_model, "hello", max_new_tokens=5)
        assert result.num_generated <= 5
        assert result.ttft_seconds > 0

    def test_generation_is_deterministic(self, tiny_model):
        a = generate(tiny_model, "hello", max_new_tokens=5)
        b = generate(tiny_model, "hello", max_new_tokens=5)
        assert a.generated_tokens == b.generated_tokens

    def test_loop_with_pretokenised_prompt(self, tiny_model):
        loop = GenerationLoop(tiny_model)
        result = loop.run_tokens([1, 2, 3, 4], max_new_tokens=3)
        assert result.prompt_tokens == [1, 2, 3, 4]
        assert len(result.decode_seconds) <= 2

    def test_tpot_property(self, tiny_model):
        result = generate(tiny_model, "abcdef", max_new_tokens=4)
        if result.decode_seconds:
            assert result.tpot_seconds == pytest.approx(float(np.mean(result.decode_seconds)))

    def test_zero_max_new_tokens_generates_nothing(self, tiny_model):
        loop = GenerationLoop(tiny_model)
        cache = DynamicCache()
        result = loop.run_tokens([1, 2, 3], cache=cache, max_new_tokens=0)
        assert result.generated_tokens == []
        assert result.text == ""
        assert not result.finished_by_eos
        # the prefill still ran and filled the cache
        assert cache.sequence_length(0) == 3
        assert result.ttft_seconds > 0

    def test_one_max_new_token(self, tiny_model):
        result = GenerationLoop(tiny_model).run_tokens([1, 2, 3], max_new_tokens=1)
        assert result.num_generated == 1
        assert result.decode_seconds == []

    def test_negative_max_new_tokens_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            GenerationLoop(tiny_model).run_tokens([1, 2, 3], max_new_tokens=-1)
