"""Integration tests: the whole stack working together.

These tests follow the paper's usage pattern end to end: import a long
context into AlayaDB, create sessions that reuse it (fully and partially),
generate with the NumPy transformer through the decoupled attention path, and
compare against the coupled full-attention baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DIPRSStrategy,
    FullAttentionStrategy,
    InfLLMStrategy,
    StreamingLLMStrategy,
    TopKRetrievalStrategy,
)
from repro.core.config import AlayaDBConfig
from repro.core.db import DB
from repro.kvcache.cache import DynamicCache
from repro.llm.attention import decode_attention
from repro.llm.generation import GenerationLoop
from repro.llm.model import ModelConfig, TransformerModel
from repro.query.types import beta_from_alpha
from repro.simulator.cost_model import CostModel
from repro.simulator.slo import SLO
from repro.workloads.evaluation import evaluate_strategy
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.infinite_bench import infinite_bench_task


@pytest.fixture(scope="module")
def serving_stack():
    model = TransformerModel(ModelConfig.tiny())
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=24,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        topk_k=16,
    )
    db = DB(config)
    document = "Long documents need long context inference support in databases. " * 20
    context = db.prefill_and_import(model, document)
    return model, db, document, context


class TestDecoupledInference:
    def test_sparse_attention_output_close_to_full(self, serving_stack):
        """The decoupled sparse path approximates the coupled full path."""
        model, db, document, context = serving_stack
        prompt = document + "Question: why?"
        loop = GenerationLoop(model)

        session, truncated = db.create_session(prompt)
        sparse = loop.run_tokens(truncated, cache=session, max_new_tokens=4)

        full = loop.run_tokens(db._tokenize(prompt), cache=DynamicCache(), max_new_tokens=4)
        # greedy first token must match; later tokens may diverge slightly
        assert sparse.generated_tokens[0] == full.generated_tokens[0]

    def test_memory_savings_vs_full_cache(self, serving_stack):
        model, db, document, context = serving_stack
        prompt = document + "Q"
        session, truncated = db.create_session(prompt)
        loop = GenerationLoop(model)
        loop.run_tokens(truncated, cache=session, max_new_tokens=2)

        full_cache = DynamicCache()
        loop.run_tokens(db._tokenize(prompt), cache=full_cache, max_new_tokens=2)

        assert session.gpu_memory_bytes() < full_cache.nbytes

    def test_store_then_reuse_round_trip(self, serving_stack):
        model, db, document, _ = serving_stack
        prompt = document + "First question?"
        loop = GenerationLoop(model)
        session, truncated = db.create_session(prompt)
        loop.run_tokens(truncated, cache=session, max_new_tokens=2)
        stored = db.store(session, context_id="conversation-1")

        # a second session over the stored conversation reuses all of it
        follow_up, truncated2 = db.create_session(stored.tokens)
        assert follow_up.reused_prefix_length == stored.num_tokens
        assert truncated2 == []


class TestMethodComparison:
    """The Table 5-style comparison at test scale: orderings must hold."""

    @pytest.fixture(scope="class")
    def results(self):
        spec = infinite_bench_task("En.QA", context_length=2048, num_decode_steps=3)
        workload = generate_workload(spec)
        beta = beta_from_alpha(0.012, spec.head_dim)
        methods = {
            "full": FullAttentionStrategy(),
            "streaming": StreamingLLMStrategy(initial_tokens=32, recent_tokens=128),
            "infllm": InfLLMStrategy(block_size=64, num_retrieved_blocks=4, initial_tokens=32, recent_tokens=128),
            "top50": TopKRetrievalStrategy(k=50, initial_tokens=32, recent_tokens=128, reuse_context_indexes=False),
            "diprs": DIPRSStrategy(beta=beta, capacity_threshold=128, initial_tokens=32, recent_tokens=128, reuse_context_indexes=False),
        }
        return {name: evaluate_strategy(m, workload) for name, m in methods.items()}

    def test_full_attention_is_best_quality(self, results):
        assert results["full"].quality >= max(r.quality for r in results.values()) - 1e-6

    def test_streaming_llm_is_worst_quality(self, results):
        others = [r.quality for name, r in results.items() if name != "streaming"]
        assert results["streaming"].quality <= min(others)

    def test_diprs_beats_fixed_topk_with_fewer_tokens(self, results):
        assert results["diprs"].quality >= results["top50"].quality - 5.0
        assert results["diprs"].mean_selected_per_head < 4 * results["top50"].mean_selected_per_head

    def test_diprs_meets_slo_while_full_violates_at_paper_scale(self, results):
        cost = CostModel()
        slo = SLO()
        paper_context = 192_600
        assert results["diprs"].meets_slo(cost, slo, paper_context)
        assert not results["full"].meets_slo(cost, slo, paper_context, is_full_attention=True)

    def test_diprs_uses_less_gpu_memory_than_infllm(self, results):
        cost = CostModel()
        assert results["diprs"].gpu_memory_bytes(cost) < results["infllm"].gpu_memory_bytes(cost)


class TestSessionAttentionCorrectness:
    def test_session_full_plan_matches_exact_attention(self):
        """When the optimizer picks full attention the session output is exact."""
        config = AlayaDBConfig(short_context_threshold=10_000)
        db = DB(config)
        model = TransformerModel(ModelConfig.tiny())
        document = "abcdefgh " * 30
        context = db.prefill_and_import(model, document, build_fine_indexes=False, build_coarse_indexes=False)
        session, truncated = db.create_session(document + "tail")
        rng = np.random.default_rng(0)
        head_dim = model.config.head_dim
        q = rng.normal(size=(4, 1, head_dim)).astype(np.float32)
        k = rng.normal(size=(2, 1, head_dim)).astype(np.float32)
        v = rng.normal(size=(2, 1, head_dim)).astype(np.float32)
        session.update_query(q, k, v, layer=0)
        out = session.attention(q, layer=0)
        keys = np.concatenate([context.keys(0), k], axis=1)
        values = np.concatenate([context.values(0), v], axis=1)
        expected = decode_attention(q[:, 0, :], keys, values)
        np.testing.assert_allclose(out[:, 0, :], expected, atol=1e-4)
