"""Workload-engine soak: seeded traces replayed against the full stack.

Tier-1 covers the engine's pieces (``tests/workloads/test_engine.py``); this
module runs the expensive end-to-end passes the CI ``workloads`` job
executes with ``-m workloads``:

* a mixed multi-tenant trace — chat sessions, RAG over a shared Zipf
  library, agent loops with mid-stream cancellations and disconnects —
  replayed through the scheduler, over real TCP through the HTTP frontend
  (which must drain clean), and through the sharded router;
* cross-entry-point determinism: on a cancellation-free trace the
  scheduler and HTTP replays must agree on every deterministic-summary
  count (greedy decoding, token-identical batching), and the router must
  generate the same number of tokens;
* the quality gate scored on the same trace's task mix.
"""

from __future__ import annotations

import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.sharding.router import ShardedContextRouter
from repro.workloads.engine import (
    TenantMixSpec,
    WorkloadEngineSpec,
    generate_replay_trace,
    replay_http,
    replay_router,
    replay_scheduler,
    score_quality_gate,
    tenant_specs,
)
from repro.workloads.trace import TraceSpec

pytestmark = [pytest.mark.slow, pytest.mark.workloads]


def soak_spec(**overrides) -> WorkloadEngineSpec:
    defaults = dict(
        duration_seconds=40.0,
        base_rate=0.8,
        diurnal_amplitude=0.6,
        diurnal_period_seconds=20.0,
        burstiness=0.8,
        tenants=(
            TenantMixSpec(name="finance", weight=2, rate_share=2.0,
                          chat_fraction=0.25, rag_fraction=0.5, agent_fraction=0.15),
            TenantMixSpec(name="legal", weight=1, rate_share=1.0,
                          chat_fraction=0.45, rag_fraction=0.2, agent_fraction=0.25,
                          max_queued=8),
        ),
        corpus=TraceSpec(
            num_documents=3, document_repeats=5, num_requests=1,
            fresh_request_fraction=0.0,
        ),
        chat_prompt_median_chars=300,
        chat_prompt_max_chars=1500,
        seed=42,
    )
    defaults.update(overrides)
    return WorkloadEngineSpec(**defaults)


def make_service(spec, tiny_model, **config_overrides) -> InferenceService:
    return InferenceService(
        tiny_model, AlayaDBConfig(tenants=tenant_specs(spec), **config_overrides)
    )


class TestMixedTraceSoak:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_replay_trace(
            soak_spec(cancel_fraction=0.25, disconnect_fraction=0.5)
        )

    def test_trace_covers_every_kind_and_tenant(self, trace):
        counts = trace.kind_counts()
        assert all(counts[kind] > 0 for kind in ("chat", "rag", "agent", "fresh"))
        assert set(trace.tenant_counts()) == {"finance", "legal"}
        assert any(e.cancel_after_tokens is not None for e in trace.events)
        assert any(e.disconnect for e in trace.events)

    def test_scheduler_replay_soak(self, trace, tiny_model):
        report = replay_scheduler(trace, make_service(trace.spec, tiny_model))
        assert report.submitted == trace.num_events
        assert report.completed + report.cancelled + report.failed == report.submitted
        assert report.cancelled > 0  # virtual-clock cancels fire deterministically
        assert report.failed == 0
        assert report.reuse_hit_requests > 0
        assert report.per_tenant["finance"]["tokens_served"] > 0
        assert report.per_tenant["legal"]["tokens_served"] > 0

    def test_http_replay_soak_drains_clean(self, trace, tiny_model):
        # shutdown(drain=True) inside replay_http runs check_drained: any
        # leaked pin/reservation/non-terminal request fails the test
        report = replay_http(
            trace, make_service(trace.spec, tiny_model), time_scale=0.004
        )
        assert report.entrypoint == "http"
        assert report.submitted > 0
        assert report.completed + report.cancelled + report.failed == report.submitted
        assert report.reuse_hit_requests > 0

    def test_router_replay_soak(self, trace, tiny_model):
        report = replay_router(trace, ShardedContextRouter(tiny_model, num_workers=2))
        assert report.completed + report.rejected == report.submitted
        assert report.completed > 0
        assert report.reuse_hit_requests > 0

    def test_quality_gate_on_trace_mix(self, trace):
        gate = score_quality_gate(
            trace.kinds_present(), context_length=1024, decode_steps=2
        )
        assert len(gate.per_task) == len(trace.kinds_present())
        assert gate.passes(threshold=0.95), gate.to_dict()


class TestCrossEntryDeterminism:
    @pytest.fixture(scope="class")
    def trace(self):
        # no cancellations: cancel timing is wall-clock under HTTP, so only
        # cancel-free traces replay identically across entry points
        return generate_replay_trace(
            soak_spec(duration_seconds=25.0, cancel_fraction=0.0, seed=13)
        )

    def test_scheduler_and_http_agree(self, trace, tiny_model):
        sched = replay_scheduler(trace, make_service(trace.spec, tiny_model))
        http = replay_http(
            trace, make_service(trace.spec, tiny_model), time_scale=0.004
        )
        assert sched.deterministic_summary() == http.deterministic_summary()

    def test_router_generates_identical_token_counts(self, trace, tiny_model):
        sched = replay_scheduler(trace, make_service(trace.spec, tiny_model))
        router = replay_router(trace, ShardedContextRouter(tiny_model, num_workers=2))
        assert router.completed == sched.completed
        assert router.generated_tokens == sched.generated_tokens
