"""Randomized serving-stack soak: drive every lifecycle path, drain clean.

A seeded schedule of ~200 submit / step / stream / cancel / chat-turn /
burst operations runs against a fully-featured service configuration (SLO
policy with preemption, a global admission budget small enough to defer and
reject, a context-store byte budget small enough to spill, lazy fine-index
builds drained between steps).  The point is not any single behaviour but
the *drain-time invariants* — after everything submitted has finished,
failed, or been cancelled:

* the scheduler has no work and no request is left in a non-terminal state;
* admission reservations sum to zero (nothing leaked a reservation);
* no stored context is left pinned (every session returned its pin, through
  every cancel/preempt/resume permutation the schedule produced);
* the buffer-manager residency mirror is consistent: ``used_bytes`` equals
  the mirrored blocks' bytes, and every mirrored block matches a context
  that is actually resident at its *current* size (chat-turn overwrites and
  spill/reload cycles may not leave stale frames behind).

Marked ``slow``: excluded from the tier-1 run (see pytest.ini), executed by
the CI soak job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.errors import (
    AdmissionRejectedError,
    RequestCancelledError,
    RequestFailedError,
)
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler.request import RequestState
from repro.simulator.slo import SLO

pytestmark = pytest.mark.slow

NUM_EVENTS = 200


def _make_service(tmp_path) -> InferenceService:
    """A BENCH_SMOKE-sized service with every governance feature enabled."""
    model = TransformerModel(ModelConfig.tiny())
    config = AlayaDBConfig(
        short_context_threshold=8,
        window_initial_tokens=4,
        window_last_tokens=8,
        dipr_beta=4.0,
        scale_beta_to_head_dim=False,
        dipr_capacity_threshold=8,
        min_reuse_tokens=4,
        prefill_chunk_tokens=16,
        max_inflight_requests=3,
        scheduler_policy="slo",
        preemption=True,
        preemption_slack_seconds=0.02,
        scheduler_gpu_budget_bytes=220_000,
        context_store_budget_bytes=150_000,
        lazy_index_build=True,
        scheduler_drain_index_builds=True,
    )
    return InferenceService(model, config, storage_dir=tmp_path)


def _random_prompt(rng, base_doc: str) -> str:
    length = int(rng.integers(8, 220))
    if rng.random() < 0.3:
        # share a prefix with an ingested document to exercise reuse + pins
        return base_doc[: max(length, 8)]
    return "".join(chr(97 + int(c)) for c in rng.integers(0, 26, size=length))


def test_soak_drains_to_a_clean_state(tmp_path):
    rng = np.random.default_rng(20260730)
    service = _make_service(tmp_path)

    # a library of documents larger than the context budget, so spills happen
    base_doc = "the quick brown fox jumps over the lazy dog. " * 8
    for doc in range(3):
        service.ingest(base_doc + f" copy {doc} " + "filler " * 40)
    registry = service.db.store_registry
    assert registry.spill_count > 0, "the soak config must actually spill"

    handles = []
    chats = [service.chat(max_new_tokens=3) for _ in range(2)]
    chat_errors = 0
    stream_errors = 0

    for _ in range(NUM_EVENTS):
        op = rng.choice(
            ["submit", "step", "cancel", "chat", "stream", "burst"],
            p=[0.3, 0.25, 0.1, 0.1, 0.1, 0.15],
        )
        if op == "submit":
            slo = None
            if rng.random() < 0.5:
                slo = SLO(ttft_seconds=float(rng.choice([0.01, 0.2, 5.0])))
            handles.append(
                service.submit(
                    _random_prompt(rng, base_doc),
                    max_new_tokens=int(rng.integers(0, 5)),
                    priority=int(rng.integers(0, 3)),
                    slo=slo,
                )
            )
        elif op == "step":
            service.step()
        elif op == "cancel" and handles:
            handles[int(rng.integers(len(handles)))].cancel()
        elif op == "chat":
            chat = chats[int(rng.integers(len(chats)))]
            if chat.pending is not None and rng.random() < 0.25:
                chat.cancel()
                continue
            try:
                chat.send(_random_prompt(rng, base_doc)[:40])
            except (AdmissionRejectedError, RequestFailedError):
                chat_errors += 1
        elif op == "stream" and handles:
            handle = handles[int(rng.integers(len(handles)))]
            try:
                for emitted, _token in enumerate(handle.tokens()):
                    if emitted >= 2:
                        break
            except (AdmissionRejectedError, RequestCancelledError, RequestFailedError):
                stream_errors += 1
        elif op == "burst":
            for _ in range(3):
                service.step()

    # deterministic coverage of the admission-reject and queued-cancel paths
    oversized = service.submit("x" * 1000, max_new_tokens=1)
    handles.append(oversized)
    cancelled_queued = service.submit("cancel me while queued", max_new_tokens=2)
    assert cancelled_queued.cancel()
    handles.append(cancelled_queued)

    service.drain(max_steps=5000)

    # --- drain-time invariants -----------------------------------------
    scheduler = service.scheduler
    assert not scheduler.has_work
    for chat in chats:
        if chat.pending is not None:
            handles.append(chat.pending)
    for handle in handles:
        assert handle.request.is_terminal, (
            f"request {handle.request_id} left in state {handle.status!r}"
        )
    assert cancelled_queued.status == RequestState.CANCELLED
    with pytest.raises(AdmissionRejectedError):
        oversized.result()

    # admission reservations sum to zero
    assert scheduler.admission.committed_bytes == 0

    # zero pinned contexts: every session returned its pin
    assert registry.num_pinned == 0, f"leaked pins: {registry.pinned_ids()}"
    assert service._live == {}

    # the residency mirror is exact: used_bytes == mirrored bytes, and every
    # mirrored block matches a context resident at its *current* size
    buffer = service.db.buffer_manager
    blocks = buffer.resident_blocks()
    assert buffer.used_bytes == sum(blocks.values())
    for key, nbytes in blocks.items():
        kind, context_id = key.split("/", 1)
        context = registry.get(context_id)  # raises if the context is gone
        assert context.is_resident, f"stale mirror block {key} for a spilled context"
        expected = context.kv_bytes if kind == "kv" else context.index_bytes
        assert nbytes == expected, (
            f"mirror block {key} holds {nbytes} bytes but the context has {expected}"
        )

    # context-store internal accounting is consistent too
    assert registry.resident_kv_bytes == sum(
        registry.get(context_id).kv_bytes for context_id in registry.resident_ids()
    )
    if registry.kv_budget_bytes is not None:
        # nothing is pinned any more, so the budget must hold again
        assert registry.resident_kv_bytes <= registry.kv_budget_bytes

    # the schedule actually exercised the interesting paths
    stats = scheduler.stats
    assert stats.completed > 20
    assert stats.cancelled >= 1
    assert stats.rejected >= 1
    assert service.stats.rejected >= 1
    assert any(chat.num_turns > 0 for chat in chats)


def test_soak_is_deterministic_per_seed(tmp_path):
    """Same seed, same terminal-state distribution (a guard against hidden
    wall-clock coupling in the soak harness itself, so failures reproduce)."""

    def run(storage_dir):
        rng = np.random.default_rng(7)
        service = _make_service(storage_dir)
        service.ingest("determinism " * 30)
        handles = [
            service.submit(
                "prompt " * int(rng.integers(2, 30)),
                max_new_tokens=int(rng.integers(0, 4)),
            )
            for _ in range(12)
        ]
        handles[3].cancel()
        service.drain(max_steps=2000)
        return [handle.status for handle in handles]

    first = run(tmp_path / "a")
    second = run(tmp_path / "b")
    assert first == second
