"""Package-level tests: public API surface, error hierarchy, version."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in ("DB", "Session", "AlayaDBConfig", "TransformerModel", "ModelConfig", "ReproError"):
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.index
        import repro.kvcache
        import repro.llm
        import repro.query
        import repro.simulator
        import repro.storage
        import repro.workloads

        for module in (
            repro.analysis,
            repro.baselines,
            repro.core,
            repro.index,
            repro.kvcache,
            repro.llm,
            repro.query,
            repro.simulator,
            repro.storage,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_subsystem_groups(self):
        assert issubclass(errors.SessionClosedError, errors.DatabaseError)
        assert issubclass(errors.BlockNotFoundError, errors.StorageError)
        assert issubclass(errors.OutOfDeviceMemoryError, errors.SimulatorError)
        assert issubclass(errors.UnsupportedQueryError, errors.QueryError)
        assert issubclass(errors.IndexNotBuiltError, errors.IndexError_)

    def test_errors_are_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ContextNotFoundError("x")
