"""Tests of the device simulator, cost model and SLO tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OutOfDeviceMemoryError, SLOViolationError
from repro.simulator.cost_model import CostModel, ModelShape
from repro.simulator.device import Device, DeviceSet, DeviceSpec, GIB
from repro.simulator.slo import HUMAN_READING_TPOT, SLO, SLOTracker


class TestDevice:
    def test_allocation_ledger(self):
        device = Device(DeviceSpec.l20_gpu())
        device.allocate("weights", 15 * GIB)
        device.allocate("kv", 10 * GIB)
        assert device.used_bytes == 25 * GIB
        device.free("kv")
        assert device.used_bytes == 15 * GIB

    def test_oom_raised(self):
        device = Device(DeviceSpec.l20_gpu())
        with pytest.raises(OutOfDeviceMemoryError):
            device.allocate("huge", 100 * GIB)

    def test_reallocation_replaces_tag(self):
        device = Device(DeviceSpec.l20_gpu())
        device.allocate("kv", 40 * GIB)
        device.allocate("kv", 45 * GIB)  # replaces, does not add
        assert device.used_bytes == 45 * GIB

    def test_allocate_array(self):
        device = Device(DeviceSpec.xeon_cpu())
        array = np.zeros((1024, 1024), dtype=np.float32)
        allocation = device.allocate_array("tensor", array)
        assert allocation.nbytes == array.nbytes

    def test_negative_allocation_rejected(self):
        device = Device(DeviceSpec.l20_gpu())
        with pytest.raises(ValueError):
            device.allocate("bad", -1)

    def test_device_set(self):
        devices = DeviceSet()
        assert devices.gpu.spec.capacity_bytes == 48 * GIB
        devices.gpu.allocate("x", GIB)
        devices.reset()
        assert devices.gpu.used_bytes == 0


class TestModelShape:
    def test_llama3_kv_bytes_per_token(self):
        shape = ModelShape.llama3_8b()
        # 2 (K+V) * 32 layers * 8 kv heads * 128 dim * 2 bytes
        assert shape.kv_bytes_per_token == 131072

    def test_weight_bytes_close_to_paper(self):
        shape = ModelShape.llama3_8b()
        # the paper reports 15.4 GB of weights in bfloat16
        assert 13 * GIB < shape.weight_bytes < 18 * GIB


class TestCostModel:
    def test_full_decode_scales_linearly(self):
        cost = CostModel()
        t40 = cost.full_decode_seconds(40_000)
        t200 = cost.full_decode_seconds(200_000)
        assert t200 > 3 * t40

    def test_sparse_decode_is_cheaper_than_full_on_long_context(self):
        cost = CostModel()
        sparse = cost.sparse_decode_seconds(num_selected_tokens=740, num_distance_computations=2000)
        full = cost.full_decode_seconds(200_000)
        assert sparse < full

    def test_prefill_superlinear_growth(self):
        cost = CostModel()
        t = [cost.prefill_seconds(n) for n in (10_000, 20_000, 40_000)]
        assert t[1] / t[0] > 2.0
        assert t[2] / t[0] > 5.0

    def test_kv_load_scales_with_tokens(self):
        cost = CostModel()
        assert cost.kv_load_seconds(200_000) > 4 * cost.kv_load_seconds(40_000)

    def test_gpu_knn_build_faster_than_cpu(self):
        cost = CostModel()
        cpu = cost.index_build_seconds(100_000, 40_000, num_indexes=32, on_gpu=False)
        gpu = cost.index_build_seconds(100_000, 40_000, num_indexes=32, on_gpu=True)
        assert gpu < cpu / 3

    def test_index_sharing_reduces_build_time(self):
        cost = CostModel()
        per_query_head = cost.index_build_seconds(100_000, 40_000, num_indexes=32, on_gpu=True)
        shared = cost.index_build_seconds(100_000, 40_000, num_indexes=8, on_gpu=True)
        assert shared < per_query_head / 3

    def test_spdk_faster_than_kernel_io(self):
        cost = CostModel()
        assert cost.disk_read_seconds(4096, use_spdk=True) < cost.disk_read_seconds(4096, use_spdk=False)


class TestSLO:
    def test_default_slo_is_human_reading_speed(self):
        assert SLO().tpot_seconds == HUMAN_READING_TPOT

    def test_check_and_require(self):
        slo = SLO(tpot_seconds=0.24)
        assert slo.check_tpot(0.2)
        assert not slo.check_tpot(0.3)
        with pytest.raises(SLOViolationError):
            slo.require_tpot(0.3)

    def test_ttft_optional(self):
        assert SLO().check_ttft(100.0)
        assert not SLO(ttft_seconds=1.0).check_ttft(2.0)

    def test_tracker_report(self):
        tracker = SLOTracker(SLO(tpot_seconds=0.24))
        for value in (0.1, 0.2, 0.15):
            tracker.record(tpot_seconds=value, ttft_seconds=1.0)
        report = tracker.report()
        assert report.num_requests == 3
        assert report.meets_tpot
        assert report.tpot_mean == pytest.approx(0.15)

    def test_tracker_detects_violation(self):
        tracker = SLOTracker(SLO(tpot_seconds=0.24))
        tracker.record(tpot_seconds=1.0)
        assert not tracker.report().meets_tpot

    def test_tracker_reset(self):
        tracker = SLOTracker()
        tracker.record(tpot_seconds=0.1)
        tracker.reset()
        assert tracker.num_samples == 0
