"""Tests of the trace-driven workload engine (generation + replay + gate)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.workloads.engine import (
    TenantMixSpec,
    WorkloadEngineSpec,
    generate_replay_trace,
    replay_scheduler,
    score_quality_gate,
    tenant_specs,
)
from repro.workloads.trace import (
    TraceSpec,
    diurnal_rate,
    heavy_tailed_lengths,
    sample_arrival_times,
)


def small_spec(**overrides) -> WorkloadEngineSpec:
    defaults = dict(
        duration_seconds=15.0,
        base_rate=0.6,
        burstiness=0.5,
        tenants=(
            TenantMixSpec(name="acme", weight=2, rate_share=2.0),
            TenantMixSpec(name="beta", weight=1, rate_share=1.0),
        ),
        corpus=TraceSpec(
            num_documents=2, document_repeats=4, num_requests=1, fresh_request_fraction=0.0
        ),
        chat_prompt_median_chars=150,
        chat_prompt_max_chars=600,
        seed=7,
    )
    defaults.update(overrides)
    return WorkloadEngineSpec(**defaults)


class TestSamplers:
    def test_diurnal_rate_envelope(self):
        times = np.linspace(0.0, 60.0, 200)
        rates = diurnal_rate(times, base_rate=2.0, amplitude=0.5, period_seconds=60.0)
        assert rates.min() >= 1.0 - 1e-9 and rates.max() <= 3.0 + 1e-9
        flat = diurnal_rate(times, base_rate=2.0, amplitude=0.0, period_seconds=60.0)
        assert np.allclose(flat, 2.0)

    def test_diurnal_rate_validation(self):
        with pytest.raises(ValueError):
            diurnal_rate(np.zeros(1), base_rate=0.0, amplitude=0.5, period_seconds=60.0)
        with pytest.raises(ValueError):
            diurnal_rate(np.zeros(1), base_rate=1.0, amplitude=1.5, period_seconds=60.0)
        with pytest.raises(ValueError):
            diurnal_rate(np.zeros(1), base_rate=1.0, amplitude=0.5, period_seconds=0.0)

    def test_arrival_times_sorted_within_duration(self):
        rng = np.random.default_rng(0)
        times = sample_arrival_times(rng, 120.0, 2.0, amplitude=0.5, burstiness=1.0)
        assert times.shape[0] > 0
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0 and times.max() <= 120.0

    def test_arrival_times_mean_rate(self):
        rng = np.random.default_rng(1)
        counts = [
            sample_arrival_times(rng, 200.0, 3.0, burstiness=b).shape[0]
            for b in (0.0, 1.0)
        ]
        for count in counts:  # 600 expected; bursty variance is large, so ±50%
            assert 300 < count < 900

    def test_arrival_times_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_arrival_times(rng, 0.0, 1.0)
        with pytest.raises(ValueError):
            sample_arrival_times(rng, 10.0, 1.0, burstiness=-0.1)

    def test_heavy_tailed_lengths(self):
        rng = np.random.default_rng(2)
        lengths = heavy_tailed_lengths(rng, 4000, median=500, sigma=0.9, maximum=8000)
        assert lengths.min() >= 1 and lengths.max() <= 8000
        assert 400 < np.median(lengths) < 625
        with pytest.raises(ValueError):
            heavy_tailed_lengths(rng, 10, median=0)


class TestTraceSpecValidation:
    # regression: non-positive counts and negative skew were silently accepted
    def test_rejects_non_positive_num_requests(self):
        with pytest.raises(ValueError, match="num_requests"):
            TraceSpec(num_requests=0)
        with pytest.raises(ValueError, match="num_requests"):
            TraceSpec(num_requests=-3)

    def test_rejects_non_positive_document_repeats(self):
        with pytest.raises(ValueError, match="document_repeats"):
            TraceSpec(document_repeats=0)

    def test_rejects_negative_popularity_skew(self):
        with pytest.raises(ValueError, match="document_popularity_skew"):
            TraceSpec(document_popularity_skew=-0.5)


class TestEngineSpecValidation:
    def test_tenant_mix_validation(self):
        with pytest.raises(ValueError, match="rate_share"):
            TenantMixSpec(name="t", rate_share=0.0)
        with pytest.raises(ValueError, match="fractions"):
            TenantMixSpec(name="t", chat_fraction=0.8, rag_fraction=0.5)
        with pytest.raises(ValueError, match="name"):
            TenantMixSpec(name="")

    def test_engine_spec_validation(self):
        with pytest.raises(ValueError, match="duration"):
            small_spec(duration_seconds=0.0)
        with pytest.raises(ValueError, match="base_rate"):
            small_spec(base_rate=-1.0)
        with pytest.raises(ValueError, match="tenant"):
            small_spec(tenants=())
        with pytest.raises(ValueError, match="duplicate"):
            small_spec(
                tenants=(TenantMixSpec(name="a"), TenantMixSpec(name="a"))
            )
        with pytest.raises(ValueError, match="cancel_fraction"):
            small_spec(cancel_fraction=1.5)
        with pytest.raises(ValueError, match="max_events"):
            small_spec(max_events=0)

    def test_tenant_specs_mapping(self):
        spec = small_spec(
            tenants=(TenantMixSpec(name="acme", weight=3, max_queued=5),)
        )
        (ts,) = tenant_specs(spec)
        assert ts.name == "acme" and ts.weight == 3 and ts.max_queued == 5


class TestTraceGeneration:
    def test_same_seed_same_digest(self):
        spec = small_spec(cancel_fraction=0.3, disconnect_fraction=0.5)
        a = generate_replay_trace(spec)
        b = generate_replay_trace(spec)
        assert a.digest() == b.digest()
        assert a.to_jsonable() == b.to_jsonable()

    def test_different_seed_different_digest(self):
        assert (
            generate_replay_trace(small_spec(seed=1)).digest()
            != generate_replay_trace(small_spec(seed=2)).digest()
        )

    def test_trace_structure(self):
        trace = generate_replay_trace(small_spec(cancel_fraction=0.3))
        assert trace.num_events > 0
        arrivals = [e.arrival_seconds for e in trace.events]
        assert arrivals == sorted(arrivals)
        assert [e.event_id for e in trace.events] == list(range(trace.num_events))
        for event in trace.events:
            assert event.tenant in ("acme", "beta")
            assert event.kind in ("chat", "rag", "agent", "fresh")
            assert event.max_new_tokens > 0
            if event.kind == "rag":
                assert event.document_id in trace.documents
                assert trace.documents[event.document_id] in event.prompt
            if event.session_id is None:
                assert event.turn == 0

    def test_session_turns_chain(self):
        trace = generate_replay_trace(small_spec(seed=11, duration_seconds=30.0))
        sessions: dict[str, list] = {}
        for event in trace.events:
            if event.session_id is not None:
                sessions.setdefault(event.session_id, []).append(event)
        assert sessions, "expected at least one chat/agent session"
        for chain in sessions.values():
            chain.sort(key=lambda e: e.turn)
            assert [e.turn for e in chain] == list(range(len(chain)))
            for earlier, later in zip(chain, chain[1:]):
                # each turn extends the previous turn's prompt (prefix reuse)
                assert later.prompt.startswith(earlier.prompt)
                assert later.arrival_seconds >= earlier.arrival_seconds

    def test_cancelled_turn_ends_its_session(self):
        trace = generate_replay_trace(
            small_spec(seed=3, cancel_fraction=0.6, disconnect_fraction=0.5)
        )
        cancels = [e for e in trace.events if e.cancel_after_tokens is not None]
        assert cancels, "expected cancellation events at this fraction"
        last_turn = {}
        for event in trace.events:
            if event.session_id is not None:
                last_turn[event.session_id] = max(
                    last_turn.get(event.session_id, 0), event.turn
                )
        for event in cancels:
            assert 1 <= event.cancel_after_tokens <= event.max_new_tokens
            assert event.turn == last_turn[event.session_id]

    def test_max_events_cap(self):
        trace = generate_replay_trace(small_spec(max_events=3, chat_mean_turns=1.0))
        root_events = {e.session_id or e.event_id for e in trace.events if e.turn == 0}
        assert len(root_events) <= 3

    def test_trace_is_json_serializable(self):
        trace = generate_replay_trace(small_spec())
        json.dumps(trace.to_jsonable())


class TestSchedulerReplay:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_replay_trace(small_spec(seed=5, cancel_fraction=0.2))

    def replay(self, trace, tiny_model):
        service = InferenceService(
            tiny_model, AlayaDBConfig(tenants=tenant_specs(trace.spec))
        )
        return replay_scheduler(trace, service)

    def test_replay_accounts_for_every_event(self, trace, tiny_model):
        report = self.replay(trace, tiny_model)
        assert report.entrypoint == "scheduler"
        assert report.num_events == trace.num_events
        assert report.submitted == trace.num_events
        assert report.completed + report.cancelled + report.failed == report.submitted
        assert report.completed > 0

    def test_replay_reuses_contexts_and_meets_slos(self, trace, tiny_model):
        report = self.replay(trace, tiny_model)
        # chat turns and repeated RAG documents must hit the token trie
        assert report.reuse_hit_requests > 0
        assert 0.0 < report.reused_token_ratio <= 1.0
        assert 0.0 <= report.slo_attainment <= 1.0
        assert report.ttft_seconds["p50"] <= report.ttft_seconds["p99"]
        json.dumps(report.to_dict())

    def test_replay_deterministic_across_runs(self, trace, tiny_model):
        first = self.replay(trace, tiny_model)
        second = self.replay(trace, tiny_model)
        assert first.deterministic_summary() == second.deterministic_summary()

    def test_backpressure_retries_surface_as_429s(self, tiny_model):
        spec = small_spec(
            duration_seconds=4.0,
            base_rate=4.0,
            burstiness=1.0,
            tenants=(
                TenantMixSpec(
                    name="hot", chat_fraction=0.0, rag_fraction=0.6,
                    agent_fraction=0.0, max_queued=1,
                ),
            ),
            seed=5,
        )
        trace = generate_replay_trace(spec)
        service = InferenceService(
            tiny_model,
            AlayaDBConfig(tenants=tenant_specs(spec), max_inflight_requests=1),
        )
        report = replay_scheduler(trace, service)
        assert report.throttled_429 > 0
        assert report.completed == report.submitted  # retries eventually landed


class TestQualityGate:
    def test_gate_passes_for_sparse_path(self):
        gate = score_quality_gate(["rag", "agent"], context_length=1024, decode_steps=2)
        assert set(gate.per_task) == {"Qasper", "Retr.KV"}
        for row in gate.per_task.values():
            assert row["dense"] == pytest.approx(100.0)
            assert 0.0 <= row["sparse"] <= 100.0 + 1e-9
        assert gate.passes(threshold=0.95)
        assert gate.min_ratio <= gate.mean_ratio + 1e-12
        json.dumps(gate.to_dict())

    def test_gate_is_deterministic(self):
        a = score_quality_gate(["chat"], context_length=1024, decode_steps=2)
        b = score_quality_gate(["chat"], context_length=1024, decode_steps=2)
        assert a.to_dict() == b.to_dict()

    def test_empty_gate_fails(self):
        gate = score_quality_gate([])
        assert not gate.passes()
