"""Tests of the synthetic workload generator, scoring and analysis tooling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.critical_tokens import count_critical_tokens, window_max_coverage
from repro.analysis.recovery import dipr_selection_count, head_recovery_profile, required_k_for_accuracy
from repro.analysis.reporting import format_series, format_table
from repro.workloads.evaluation import evaluate_strategy
from repro.workloads.generator import ScoringMode, WorkloadSpec, generate_workload
from repro.workloads.infinite_bench import INFINITE_BENCH_TASKS, infinite_bench_task
from repro.workloads.longbench import LONGBENCH_TASKS
from repro.workloads.scoring import needle_hit, recovery_ratio, softmax_weights, tokens_for_recovery
from repro.baselines.full_attention import FullAttentionStrategy


class TestScoring:
    def test_softmax_weights_sum_to_one(self):
        weights = softmax_weights(np.asarray([1.0, 2.0, 3.0]))
        assert weights.sum() == pytest.approx(1.0)

    def test_recovery_ratio_bounds(self):
        scores = np.asarray([10.0, 0.0, 0.0, 0.0])
        assert recovery_ratio(scores, np.asarray([0])) > 0.99
        assert recovery_ratio(scores, np.asarray([], dtype=np.int64)) == 0.0
        assert recovery_ratio(scores, np.arange(4)) == pytest.approx(1.0)

    def test_recovery_ratio_ignores_duplicates(self):
        scores = np.asarray([1.0, 1.0, 1.0, 1.0])
        assert recovery_ratio(scores, np.asarray([0, 0, 0])) == pytest.approx(0.25)

    def test_recovery_ratio_rejects_negative_positions(self):
        # regression: numpy fancy indexing wraps negative positions, silently
        # crediting the wrong token's probability mass to the selection
        scores = np.asarray([0.0, 0.0, 0.0, 100.0])
        with pytest.raises(ValueError, match="negative position"):
            recovery_ratio(scores, np.asarray([-1, 0]))

    def test_recovery_ratio_rejects_out_of_range_positions(self):
        scores = np.asarray([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="beyond the context length"):
            recovery_ratio(scores, np.asarray([0, 3]))

    def test_needle_hit_rejects_negative_positions(self):
        with pytest.raises(ValueError, match="evidence_positions"):
            needle_hit(np.asarray([-2]), np.asarray([1, 2]))
        with pytest.raises(ValueError, match="attended"):
            needle_hit(np.asarray([1]), np.asarray([-3, 1]))

    def test_needle_hit(self):
        assert needle_hit(np.asarray([3, 5]), np.asarray([1, 3, 5, 7]))
        assert not needle_hit(np.asarray([3, 5]), np.asarray([3]))

    def test_tokens_for_recovery_concentrated_vs_flat(self):
        concentrated = np.zeros(100)
        concentrated[7] = 20.0
        flat = np.zeros(100)
        assert tokens_for_recovery(concentrated, 0.9) == 1
        assert tokens_for_recovery(flat, 0.9) == 90

    @settings(deadline=None, max_examples=25)
    @given(target=st.floats(min_value=0.05, max_value=1.0), seed=st.integers(0, 100))
    def test_property_tokens_for_recovery_monotone_in_target(self, target, seed):
        scores = np.random.default_rng(seed).normal(size=200)
        smaller = tokens_for_recovery(scores, target * 0.5)
        larger = tokens_for_recovery(scores, target)
        assert smaller <= larger


class TestGenerator:
    def test_generated_shapes(self, small_workload):
        spec = small_workload.spec
        assert small_workload.context.keys(0).shape == (spec.num_kv_heads, spec.context_length, spec.head_dim)
        assert small_workload.decode_queries.shape == (
            spec.num_decode_steps, spec.num_layers, spec.num_query_heads, spec.head_dim
        )
        assert small_workload.evidence_positions.shape == (spec.num_decode_steps, spec.num_evidence_tokens)

    def test_determinism(self):
        spec = WorkloadSpec(name="det", context_length=512, seed=3)
        a = generate_workload(spec)
        b = generate_workload(spec)
        np.testing.assert_array_equal(a.context.keys(0), b.context.keys(0))
        np.testing.assert_array_equal(a.evidence_positions, b.evidence_positions)

    def test_evidence_positions_are_unique(self, small_workload):
        flat = small_workload.evidence_positions.reshape(-1)
        assert len(set(flat.tolist())) == flat.shape[0]

    def test_evidence_tokens_score_highest_for_evidence_head(self, small_workload):
        wl = small_workload
        for step in range(wl.spec.num_decode_steps):
            head = int(wl.evidence_heads[step])
            kv_head = head // wl.spec.gqa_group_size
            scores = wl.true_scores(step, 0, kv_head, head)
            evidence = wl.evidence_positions[step]
            threshold = np.sort(scores)[-(wl.spec.num_evidence_tokens + 5)]
            assert np.all(scores[evidence] >= threshold)

    def test_critical_counts_within_spec(self, recovery_workload):
        spec = recovery_workload.spec
        low = spec.critical_fraction_low * spec.context_length * 0.5
        high = spec.critical_fraction_high * spec.context_length * 2.0
        assert np.all(recovery_workload.critical_counts >= low)
        assert np.all(recovery_workload.critical_counts <= high)

    def test_query_samples_present_for_index_construction(self, small_workload):
        samples = small_workload.context.query_samples[0]
        assert samples.shape[0] == small_workload.spec.num_query_heads
        assert samples.shape[1] >= 16


class TestTaskCatalogs:
    def test_infinite_bench_has_eight_tasks(self):
        assert len(INFINITE_BENCH_TASKS) == 8
        assert set(INFINITE_BENCH_TASKS) == {
            "Retr.KV", "Retr.P", "Retr.N", "Code.D", "En.MC", "En.QA", "En.Sum", "Math.F",
        }

    def test_task_override(self):
        spec = infinite_bench_task("Retr.P", context_length=2048)
        assert spec.context_length == 2048
        assert spec.name == "Retr.P"

    def test_longbench_matches_paper_proportions(self):
        for name, task in LONGBENCH_TASKS.items():
            implied = task.paper_k / task.spec.context_length
            assert implied == pytest.approx(task.paper_proportion, rel=0.05), name

    def test_longbench_has_six_tasks(self):
        assert len(LONGBENCH_TASKS) == 6


class TestEvaluation:
    def test_full_attention_scores_100(self, small_workload):
        result = evaluate_strategy(FullAttentionStrategy(), small_workload)
        assert result.quality == pytest.approx(100.0)

    def test_evaluation_records_work(self, small_workload):
        result = evaluate_strategy(FullAttentionStrategy(), small_workload)
        assert result.num_steps == small_workload.spec.num_decode_steps
        assert result.mean_selected_per_head == small_workload.spec.context_length

    def test_modeled_metrics(self, small_workload):
        from repro.simulator.cost_model import CostModel
        from repro.simulator.slo import SLO

        result = evaluate_strategy(FullAttentionStrategy(), small_workload)
        cost = CostModel()
        tpot = result.modeled_full_tpot_seconds(cost, 200_000)
        assert tpot > 0
        assert result.gpu_memory_bytes(cost) > cost.shape.weight_bytes
        assert isinstance(result.meets_slo(cost, SLO(), 200_000, is_full_attention=True), bool)

    def test_modeled_tpot_rounds_fractional_work_up(self):
        # regression: int() floored a 0.9-token mean selection to zero work,
        # which then triggered the dense fallback and charged full attention
        from repro.simulator.cost_model import CostModel
        from repro.workloads.evaluation import MethodEvaluation

        cost = CostModel()
        fractional = MethodEvaluation(
            method="m", workload="w", quality=0.0,
            mean_selected_per_head=0.9, mean_distance_computations=0.0,
            resident_tokens=0, gpu_tokens=0, num_steps=1,
        )
        one_token = MethodEvaluation(
            method="m", workload="w", quality=0.0,
            mean_selected_per_head=1.0, mean_distance_computations=0.0,
            resident_tokens=0, gpu_tokens=0, num_steps=1,
        )
        tpot = fractional.modeled_tpot_seconds(cost, context_length=200_000)
        assert tpot == pytest.approx(one_token.modeled_tpot_seconds(cost, context_length=200_000))
        assert tpot < cost.full_decode_seconds(200_000)

    def test_modeled_tpot_empty_selection_modes(self):
        # regression: a zero-work run silently substituted dense attention even
        # for strategies that legitimately attend nothing
        from repro.simulator.cost_model import CostModel
        from repro.workloads.evaluation import MethodEvaluation

        cost = CostModel()
        empty = MethodEvaluation(
            method="m", workload="w", quality=0.0,
            mean_selected_per_head=0.0, mean_distance_computations=0.0,
            resident_tokens=0, gpu_tokens=0, num_steps=1,
        )
        with pytest.raises(ValueError, match="dense"):
            empty.modeled_tpot_seconds(cost)  # dense fallback needs a length
        dense = empty.modeled_tpot_seconds(cost, context_length=100_000)
        none = empty.modeled_tpot_seconds(cost, empty_selection="none")
        assert dense > none
        with pytest.raises(ValueError, match="empty_selection"):
            empty.modeled_tpot_seconds(cost, empty_selection="bogus")


class TestAnalysis:
    def test_count_critical_tokens(self):
        scores = np.asarray([10.0, 9.9, 0.0, -5.0])
        assert count_critical_tokens(scores, alpha=0.5) == 2
        assert count_critical_tokens(scores, alpha=1e-9) == 4

    def test_dipr_selection_count_monotone_in_beta(self):
        scores = np.random.default_rng(0).normal(size=500)
        assert dipr_selection_count(scores, 0.5) <= dipr_selection_count(scores, 2.0)

    def test_head_recovery_profile(self, recovery_workload):
        profiles = head_recovery_profile(recovery_workload, beta=18.0)
        assert len(profiles) == recovery_workload.spec.num_kv_heads
        for profile in profiles:
            assert profile.tokens_for_90pct >= 1
            assert profile.dipr_selected >= 1

    def test_required_k_varies_with_critical_fraction(self):
        sparse_spec = WorkloadSpec(
            name="sparse", context_length=2048, critical_fraction_low=0.004,
            critical_fraction_high=0.006, scoring=ScoringMode.RECOVERY, seed=1,
        )
        dense_spec = WorkloadSpec(
            name="dense", context_length=2048, critical_fraction_low=0.06,
            critical_fraction_high=0.08, scoring=ScoringMode.RECOVERY, seed=1,
        )
        k_sparse = required_k_for_accuracy(generate_workload(sparse_spec))
        k_dense = required_k_for_accuracy(generate_workload(dense_spec))
        assert k_dense > k_sparse

    def test_window_coverage_high_for_window_friendly_task(self):
        spec = infinite_bench_task("Math.F", context_length=2048, num_decode_steps=4)
        workload = generate_workload(spec)
        coverage = window_max_coverage(workload, initial_tokens=32, last_tokens=32)
        assert 0.0 <= coverage.coverage <= 1.0
        assert coverage.num_queries == 4 * spec.num_kv_heads

    def test_reporting_formats(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 0.0001]], title="T")
        assert "T" in table and "a" in table and "x" in table
        series = format_series("curve", [1, 2], [3.0, 4.0])
        assert "curve" in series and "(1, 3)" in series
