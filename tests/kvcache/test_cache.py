"""Tests of the KV cache implementations and serialisation."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ContextLoadError, StorageError
from repro.kvcache.cache import DynamicCache, LayerKVCache
from repro.kvcache.compression import compress_kv, decompress_kv, dequantize_tensor, quantize_tensor
from repro.kvcache.paged import PagedKVCache, PagedLayerCache
from repro.kvcache.serialization import (
    KVSnapshot,
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_from_cache,
    snapshot_to_bytes,
)


def _kv(num_heads=2, n=4, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(num_heads, n, dim)).astype(np.float32),
        rng.normal(size=(num_heads, n, dim)).astype(np.float32),
    )


class TestLayerKVCache:
    def test_append_and_read(self):
        cache = LayerKVCache(2, 8, initial_capacity=2)
        k1, v1 = _kv(n=3)
        cache.append(k1, v1)
        assert len(cache) == 3
        np.testing.assert_array_equal(cache.keys, k1)
        k2, v2 = _kv(n=5, seed=1)
        cache.append(k2, v2)
        assert len(cache) == 8
        np.testing.assert_array_equal(cache.keys[:, 3:], k2)

    def test_capacity_growth_is_amortised(self):
        cache = LayerKVCache(1, 4, initial_capacity=1)
        for i in range(20):
            k, v = _kv(num_heads=1, n=1, dim=4, seed=i)
            cache.append(k, v)
        assert len(cache) == 20
        assert cache._capacity >= 20

    def test_shape_mismatch_rejected(self):
        cache = LayerKVCache(2, 8)
        k, v = _kv(num_heads=3)
        with pytest.raises(ValueError):
            cache.append(k, v)

    def test_gather_and_slice(self):
        cache = LayerKVCache(2, 8)
        k, v = _kv(n=10)
        cache.append(k, v)
        gk, gv = cache.gather(np.asarray([0, 5, 9]))
        np.testing.assert_array_equal(gk, k[:, [0, 5, 9], :])
        sk, _ = cache.slice(2, 4)
        np.testing.assert_array_equal(sk, k[:, 2:4, :])

    def test_nbytes_tracks_used_portion(self):
        cache = LayerKVCache(1, 4, initial_capacity=128)
        k, v = _kv(num_heads=1, n=2, dim=4)
        cache.append(k, v)
        assert cache.nbytes == 2 * 2 * 4 * 4


class TestDynamicCache:
    def test_update_returns_full_kv(self):
        cache = DynamicCache()
        k1, v1 = _kv(n=3)
        keys, values = cache.update(k1, v1, layer=0)
        assert keys.shape == (2, 3, 8)
        k2, v2 = _kv(n=2, seed=1)
        keys, values = cache.update(k2, v2, layer=0)
        assert keys.shape == (2, 5, 8)

    def test_layers_are_independent(self):
        cache = DynamicCache()
        k, v = _kv(n=3)
        cache.update(k, v, layer=0)
        cache.update(k, v, layer=2)
        assert cache.sequence_length(0) == 3
        assert cache.sequence_length(1) == 0
        assert cache.sequence_length(2) == 3

    def test_nbytes(self):
        cache = DynamicCache()
        k, v = _kv(n=4)
        cache.update(k, v, layer=0)
        assert cache.nbytes == k.nbytes + v.nbytes


class TestPagedCache:
    def test_matches_contiguous_cache(self):
        paged = PagedLayerCache(2, 8, page_size=3)
        k, v = _kv(n=10)
        paged.append(k, v)
        mk, mv = paged.materialize()
        np.testing.assert_array_equal(mk, k)
        np.testing.assert_array_equal(mv, v)

    def test_page_count(self):
        paged = PagedLayerCache(1, 4, page_size=4, initial_pages=0)
        k, v = _kv(num_heads=1, n=10, dim=4)
        paged.append(k, v)
        assert paged.num_pages_in_use == 3

    def test_release_recycles_pages(self):
        paged = PagedLayerCache(1, 4, page_size=4, initial_pages=0)
        k, v = _kv(num_heads=1, n=8, dim=4)
        paged.append(k, v)
        total_before = paged.num_pages_total
        paged.release()
        paged.append(k, v)
        assert paged.num_pages_total == total_before

    def test_gather(self):
        paged = PagedLayerCache(2, 8, page_size=3)
        k, v = _kv(n=7)
        paged.append(k, v)
        gk, gv = paged.gather(np.asarray([6, 0, 3]))
        np.testing.assert_array_equal(gk, k[:, [6, 0, 3], :])

    def test_multi_layer_protocol(self):
        cache = PagedKVCache(page_size=4)
        k, v = _kv(n=5)
        keys, values = cache.update(k, v, layer=0)
        np.testing.assert_allclose(keys, k, atol=1e-6)
        assert cache.sequence_length(0) == 5

    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=1, max_value=40),
        page_size=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_paged_equals_contiguous(self, n, page_size, seed):
        paged = PagedLayerCache(1, 4, page_size=page_size)
        flat = LayerKVCache(1, 4)
        rng = np.random.default_rng(seed)
        remaining = n
        while remaining > 0:
            chunk = int(rng.integers(1, remaining + 1))
            k = rng.normal(size=(1, chunk, 4)).astype(np.float32)
            v = rng.normal(size=(1, chunk, 4)).astype(np.float32)
            paged.append(k, v)
            flat.append(k, v)
            remaining -= chunk
        pk, pv = paged.materialize()
        np.testing.assert_allclose(pk, flat.keys, atol=1e-6)
        np.testing.assert_allclose(pv, flat.values, atol=1e-6)


class TestCompression:
    def test_quantise_roundtrip_error_is_bounded(self):
        x = np.random.default_rng(0).normal(size=(4, 100, 16)).astype(np.float32)
        q = quantize_tensor(x)
        restored = dequantize_tensor(q)
        max_per_channel = np.abs(x).max(axis=(0, 1))
        assert np.all(np.abs(restored - x) <= max_per_channel / 127.0 + 1e-6)

    def test_compression_reduces_size(self):
        x = np.random.default_rng(0).normal(size=(4, 256, 32)).astype(np.float32)
        q = quantize_tensor(x)
        assert q.nbytes < x.nbytes / 3

    def test_compress_kv_roundtrip(self):
        k, v = _kv(n=32)
        compressed = compress_kv({0: k}, {0: v})
        keys, values = decompress_kv(compressed)
        assert keys[0].shape == k.shape
        assert np.abs(keys[0] - k).max() < 0.1

    def test_layer_mismatch_rejected(self):
        k, v = _kv(n=4)
        with pytest.raises(ValueError):
            compress_kv({0: k}, {1: v})


class TestSerialization:
    def test_snapshot_roundtrip(self, tmp_path):
        k, v = _kv(n=6)
        snapshot = KVSnapshot(tokens=list(range(6)), keys={0: k}, values={0: v})
        save_snapshot(snapshot, tmp_path, "ctx")
        loaded = load_snapshot(tmp_path, "ctx")
        assert loaded.tokens == list(range(6))
        np.testing.assert_allclose(loaded.keys[0], k, atol=1e-6)

    def test_validation_rejects_token_mismatch(self):
        k, v = _kv(n=6)
        snapshot = KVSnapshot(tokens=[1, 2], keys={0: k}, values={0: v})
        with pytest.raises(StorageError):
            snapshot.validate()

    def test_snapshot_from_cache(self):
        cache = DynamicCache()
        k, v = _kv(n=4)
        cache.update(k, v, layer=0)
        cache.update(k, v, layer=1)
        snapshot = snapshot_from_cache(list(range(4)), cache)
        assert snapshot.num_layers == 2
        assert snapshot.num_tokens == 4

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_snapshot(tmp_path, "nope")


class TestCrashSafety:
    """A crash mid-save or a torn file must never surface as a raw numpy or
    zipfile traceback — always a clean :class:`ContextLoadError`."""

    def _snapshot(self, n=6):
        k, v = _kv(n=n)
        return KVSnapshot(tokens=list(range(n)), keys={0: k}, values={0: v})

    def test_save_leaves_no_temp_files(self, tmp_path):
        for _ in range(3):
            save_snapshot(self._snapshot(), tmp_path, "ctx")
        assert [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []
        assert (tmp_path / "ctx.npz").exists()
        assert (tmp_path / "ctx.json").exists()  # human-readable sidecar

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        save_snapshot(self._snapshot(n=4), tmp_path, "ctx")
        save_snapshot(self._snapshot(n=8), tmp_path, "ctx")
        assert load_snapshot(tmp_path, "ctx").num_tokens == 8

    def test_truncated_snapshot_raises_context_load_error(self, tmp_path):
        path = save_snapshot(self._snapshot(), tmp_path, "ctx")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ContextLoadError):
            load_snapshot(tmp_path, "ctx")

    def test_garbage_snapshot_raises_context_load_error(self, tmp_path):
        (tmp_path / "ctx.npz").write_bytes(b"not an npz archive at all")
        with pytest.raises(ContextLoadError):
            load_snapshot(tmp_path, "ctx")

    def test_unknown_format_version_raises(self):
        import json

        meta = {"format_version": 999, "num_tokens": 0, "num_layers": 0, "metadata": {}}
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            tokens=np.asarray([], dtype=np.int64),
            __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ContextLoadError):
            snapshot_from_bytes(buffer.getvalue())

    def test_bytes_roundtrip(self):
        snapshot = self._snapshot()
        snapshot.metadata = {"origin": "unit-test"}
        loaded = snapshot_from_bytes(snapshot_to_bytes(snapshot))
        assert loaded.tokens == snapshot.tokens
        assert loaded.metadata == {"origin": "unit-test"}
        np.testing.assert_allclose(loaded.keys[0], snapshot.keys[0], atol=1e-7)

    def test_context_load_error_is_storage_error(self):
        # callers catching the historic StorageError keep working
        assert issubclass(ContextLoadError, StorageError)
