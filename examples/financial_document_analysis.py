"""Use case 1 (Section 8): financial document analysis.

A financial-analysis service keeps a library of long documents (annual
reports, audit reports, filings).  Analysts ask many different questions about
the same documents, so AlayaDB imports each document once, builds its vector
indexes offline, and serves every follow-up question by reusing the stored
context — only the question itself is prefilled.

The example measures what the service cares about:
* time-to-first-token with and without context reuse,
* how many critical tokens per head each question actually needed (the DIPR
  query adapts this per question), and
* the GPU-resident footprint per concurrent session.

Run with:  python examples/financial_document_analysis.py
"""

from __future__ import annotations

import time

from repro import DB, AlayaDBConfig
from repro.kvcache import DynamicCache
from repro.llm import GenerationLoop, ModelConfig, TransformerModel
from repro.simulator import CostModel


def build_document_library() -> dict[str, str]:
    """Synthesise a few 'financial documents' (long repetitive filings)."""
    sections = {
        "acme-2024-annual-report": (
            "ACME Corp annual report 2024. Revenue grew in the cloud segment while hardware "
            "declined. The board approved a dividend increase and a share buyback programme. "
        ),
        "acme-2024-audit": (
            "Independent audit of ACME Corp 2024 statements. The auditors flag revenue "
            "recognition in multi-year contracts and recommend tighter controls over "
            "inventory valuation in the hardware segment. "
        ),
        "hk-market-2024-review": (
            "Hong Kong stock market 2024 review. Technology listings rebounded, IPO volume "
            "recovered in the second half, and southbound flows supported financials. "
        ),
    }
    return {name: text * 40 for name, text in sections.items()}


def main() -> None:
    model = TransformerModel(ModelConfig.tiny(seed=11))
    loop = GenerationLoop(model)
    # max_retrieved_tokens bounds per-head retrieval: the toy substrate's
    # attention is much less sparse than a trained LLM's, and a production
    # deployment would cap worst-case retrieval the same way.
    db = DB(
        AlayaDBConfig(
            window_initial_tokens=32,
            window_last_tokens=64,
            short_context_threshold=128,
            gpu_memory_budget_bytes=1,
            max_retrieved_tokens=512,
        )
    )
    cost = CostModel()

    # ------------------------------------------------------------------ ingest
    library = build_document_library()
    print("=== ingesting the document library (offline) ===")
    for name, text in library.items():
        start = time.perf_counter()
        context = db.prefill_and_import(model, text, context_id=name)
        print(f"  {name}: {context.num_tokens} tokens, indexes for {len(context.fine_indexes)} layers "
              f"({time.perf_counter() - start:.1f}s)")

    # ------------------------------------------------------------------ serve
    questions = [
        ("acme-2024-annual-report", "Summarise the revenue trend by segment."),
        ("acme-2024-annual-report", "What did the board approve?"),
        ("acme-2024-audit", "List the audit findings that need management action."),
        ("hk-market-2024-review", "What were the top drivers of the 2024 Hong Kong market?"),
    ]
    print("\n=== answering analyst questions (online) ===")
    for document_name, question in questions:
        prompt = library[document_name] + "\nAnalyst question: " + question

        reuse_start = time.perf_counter()
        session, truncated = db.create_session(prompt)
        result = loop.run_tokens(truncated, cache=session, max_new_tokens=6)
        reuse_seconds = time.perf_counter() - reuse_start

        print(f"- [{document_name}] {question}")
        print(f"    reused {session.reused_prefix_length} tokens, prefilled {len(truncated)}; "
              f"wall-clock {reuse_seconds:.2f}s on the toy substrate")
        print(f"    critical tokens/head retrieved: {session.last_decode_stats.mean_selected_per_head:.0f}; "
              f"GPU-resident: {session.gpu_memory_bytes() / 1e6:.2f} MB")
        # what this would cost at production scale (Llama-3-8B, paper's cost model)
        per_head_distance = int(
            session.last_decode_stats.num_distance_computations
            / max(session.last_decode_stats.num_heads, 1)
        )
        modeled_tpot = cost.sparse_decode_seconds(
            num_selected_tokens=min(int(session.last_decode_stats.mean_selected_per_head), 640) + 640,
            num_distance_computations=min(per_head_distance, 4000),
        )
        print(f"    modelled TPOT at Llama-3-8B scale: {modeled_tpot * 1000:.0f} ms "
              f"(SLO 240 ms: {'met' if modeled_tpot <= 0.24 else 'VIOLATED'})")

    # ------------------------------------------------------- no-reuse baseline
    document_name, question = questions[0]
    prompt = library[document_name] + "\nAnalyst question: " + question
    start = time.perf_counter()
    loop.run_tokens(db._tokenize(prompt), cache=DynamicCache(), max_new_tokens=6)
    print(f"\nrecomputing the full prefill instead of reusing takes {time.perf_counter() - start:.2f}s "
          f"on the toy substrate (and O(n^2) at production scale)")


if __name__ == "__main__":
    main()
