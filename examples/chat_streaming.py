"""The client-facing serving API: streaming handles, chat, cancellation.

This example drives the three layers of the serving surface:

1. ``InferenceService.submit`` returns a ``RequestHandle`` — iterate
   ``handle.tokens()`` to stream tokens as scheduler steps produce them;
2. ``service.chat()`` opens a multi-turn ``ChatSession`` whose history lives
   in the context store, so every follow-up turn reuses the previous turns'
   KV through the token-trie prefix match instead of re-prefilling;
3. ``handle.cancel()`` tears a request down mid-flight, returning its
   admission reservation to the budget;
4. the OpenAI-style ``repro.api`` facade maps onto all of the above.

The tiny NumPy substrate generates byte gibberish — watch the counters
(reused tokens, prefill times, admission bytes), not the text.

Run with:  python examples/chat_streaming.py
"""

from __future__ import annotations

from repro import AlayaDBConfig, InferenceService, ModelConfig, TransformerModel
from repro.api import Client


def main() -> None:
    model = TransformerModel(ModelConfig.tiny(seed=41))
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=1 << 20,  # decode with full attention (tiny contexts)
        scheduler_gpu_budget_bytes=1 << 30,
    )
    service = InferenceService(model, config)

    # --- 1. streaming through a request handle --------------------------------
    print("=== streaming a single request ===")
    handle = service.submit("stream this classic opening line, please: ", max_new_tokens=6)
    print(f"submitted request {handle.request_id} (status: {handle.status})")
    streamed = []
    for token in handle.tokens():
        streamed.append(token)
        print(f"  token {len(streamed)}: {token}")
    result, record = handle.result()
    print(f"status: {handle.status}; stream == result: {streamed == result.generated_tokens}")

    # --- 2. a multi-turn chat with cross-turn KV reuse ------------------------
    print("\n=== multi-turn chat (cross-turn context reuse) ===")
    chat = service.chat(max_new_tokens=4)
    prompts = [
        "here is the incident report we will discuss: " + "the database fell over. " * 12,
        "what failed first?",
        "and how do we prevent it?",
    ]
    for prompt in prompts:
        turn = chat.ask(prompt)
        print(
            f"turn {chat.num_turns}: prompt {turn.record.prompt_tokens} tokens, "
            f"reused {turn.reused_tokens} (reuse_ratio {turn.reuse_ratio:.2f}), "
            f"prefill {turn.record.prefill_compute_seconds * 1000:.1f} ms"
        )
    print(f"conversation stored as {chat.context_id!r}: "
          f"{len(chat.transcript_tokens())} tokens of KV ready for the next turn")

    # --- 3. cancellation frees the admission reservation ----------------------
    print("\n=== cancellation ===")
    doomed = service.submit("a long request the client abandons " * 8, max_new_tokens=64)
    service.step()  # admitted and working
    before = service.memory_report()["admission_committed_bytes"]
    doomed.cancel()
    after = service.memory_report()["admission_committed_bytes"]
    print(f"admission bytes: {before} mid-flight -> {after} after cancel "
          f"(status: {doomed.status})")

    # --- 4. the OpenAI-style facade -------------------------------------------
    print("\n=== repro.api facade ===")
    client = Client(service)
    completion = client.completions.create("complete me " * 4, max_new_tokens=3)
    print(f"{completion.id}: {completion.usage.completion_tokens} tokens, "
          f"usage {completion.usage.prompt_tokens}+{completion.usage.completion_tokens}")
    chunks = list(client.completions.create("stream me " * 4, max_new_tokens=3, stream=True))
    print(f"streamed facade chunks: {[c.token_id for c in chunks]}")


if __name__ == "__main__":
    main()
