"""Quickstart: long-context inference with AlayaDB in a few lines.

This mirrors Figure 4 of the paper: an application that previously managed a
``DynamicCache`` itself switches to AlayaDB by (1) importing the long context
once, (2) asking the DB for a session, and (3) letting the session answer the
model's per-layer attention calls.  The model only ever prefills the part of
the prompt that was not reused.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import DB, AlayaDBConfig
from repro.kvcache import DynamicCache
from repro.llm import GenerationLoop, ModelConfig, TransformerModel


def main() -> None:
    # --- the "application" --------------------------------------------------
    model = TransformerModel(ModelConfig.tiny(seed=7))
    loop = GenerationLoop(model)

    # a long document every user question refers to
    document = (
        "AlayaDB decouples the KV cache and the attention computation from the "
        "LLM inference engine and manages both inside a vector database. "
    ) * 60
    question = "Question: what does AlayaDB decouple from the inference engine?"

    # --- set up AlayaDB -----------------------------------------------------
    # Note: the toy model's attention is far less sparse than a trained LLM's,
    # so the DIPR safety valve (max_retrieved_tokens) is set to keep the demo's
    # per-step retrieval bounded the way a production deployment would.
    config = AlayaDBConfig(
        window_initial_tokens=32,
        window_last_tokens=64,
        short_context_threshold=128,
        gpu_memory_budget_bytes=1,  # tiny budget -> the optimizer picks DIPR
        max_retrieved_tokens=512,
    )
    db = DB(config)

    # import the document once (prefill + index construction, offline)
    start = time.perf_counter()
    context = db.prefill_and_import(model, document)
    print(f"imported context {context.context_id!r}: {context.num_tokens} tokens, "
          f"{len(context.fine_indexes)} indexed layers, "
          f"{context.kv_bytes / 1e6:.1f} MB of KV cache "
          f"({time.perf_counter() - start:.1f}s)")

    # --- serve a request through AlayaDB ------------------------------------
    session, truncated_prompt = db.create_session(document + question)
    print(f"session reuses {session.reused_prefix_length} tokens; "
          f"only {len(truncated_prompt)} prompt tokens still need prefill")
    for layer in range(model.config.num_layers):
        print(f"  layer {layer} plan: {session.plan_for_layer(layer).describe()}")

    result = loop.run_tokens(truncated_prompt, cache=session, max_new_tokens=8)
    print(f"AlayaDB decode: {result.num_generated} tokens, "
          f"{session.last_decode_stats.mean_selected_per_head:.0f} critical tokens/head retrieved, "
          f"{session.gpu_memory_bytes() / 1e6:.2f} MB resident (window + local KV)")

    # --- the coupled-architecture baseline for comparison --------------------
    full_cache = DynamicCache()
    baseline = loop.run_tokens(db._tokenize(document + question), cache=full_cache, max_new_tokens=8)
    print(f"full-attention baseline: {baseline.num_generated} tokens, "
          f"{full_cache.nbytes / 1e6:.2f} MB of KV resident")
    print(f"first generated token identical: {result.generated_tokens[0] == baseline.generated_tokens[0]}")

    # --- store the conversation so a follow-up request reuses everything -----
    stored = db.store(session, context_id="conversation-0")
    follow_up, remaining = db.create_session(stored.tokens)
    print(f"stored conversation {stored.context_id!r} ({stored.num_tokens} tokens); "
          f"a follow-up session reuses all of it (remaining prompt: {len(remaining)} tokens)")


if __name__ == "__main__":
    main()
