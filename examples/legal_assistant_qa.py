"""Use case 2 (Section 8): a legal assistant answering questions over statutes.

A law firm stores its reference corpus (statutes, regulations, precedent
summaries) in AlayaDB.  Different clients ask questions over the *same*
statutes, and a client conversation keeps growing — which exercises two
AlayaDB features beyond plain reuse:

* **partial prefix reuse** — a new client's prompt shares only the statute
  part of a stored conversation, so the optimizer attaches an attribute
  filter and the filtered DIPRS search retrieves only from the shared prefix;
* **conversation storing** — after answering, ``DB.store`` persists the whole
  conversation (late materialization) so follow-ups reuse it entirely.

Run with:  python examples/legal_assistant_qa.py
"""

from __future__ import annotations

from repro import DB, AlayaDBConfig
from repro.llm import GenerationLoop, ModelConfig, TransformerModel


STATUTE = (
    "Data Protection Ordinance, consolidated text. Personal data shall be collected for "
    "lawful purposes, used only for the purpose of collection, kept accurate and no longer "
    "than necessary, and protected against unauthorised access. Data subjects may request "
    "access to and correction of their personal data. Exemptions apply to crime prevention "
    "and news activities. "
) * 35


def main() -> None:
    model = TransformerModel(ModelConfig.tiny(seed=23))
    loop = GenerationLoop(model)
    db = DB(
        AlayaDBConfig(
            window_initial_tokens=32,
            window_last_tokens=64,
            short_context_threshold=128,
            gpu_memory_budget_bytes=1,
            max_retrieved_tokens=512,
        )
    )

    # the statute corpus is imported once, offline
    statute_context = db.prefill_and_import(model, STATUTE, context_id="data-protection-ordinance")
    print(f"imported statute: {statute_context.num_tokens} tokens")

    # ---------------------------------------------------------------- client A
    question_a = "\nClient A asks: how long may personal data be retained?"
    session_a, truncated_a = db.create_session(STATUTE + question_a)
    answer_a = loop.run_tokens(truncated_a, cache=session_a, max_new_tokens=6)
    print(f"client A: reused {session_a.reused_prefix_length} tokens "
          f"({session_a.last_decode_stats.mean_selected_per_head:.0f} critical tokens/head per step)")
    conversation_a = db.store(session_a, context_id="client-a-conversation")
    print(f"stored client A conversation: {conversation_a.num_tokens} tokens")

    # ---------------------------------------------------------------- client B
    # client B asks about the same statute: their prompt shares only the
    # statute prefix of the stored client-A conversation, so AlayaDB reuses
    # that prefix and filters retrieval to it (attribute-filtered DIPRS).
    question_b = "\nClient B asks: can a data subject demand correction of errors?"
    session_b, truncated_b = db.create_session(STATUTE + question_b)
    reused_context_id = session_b.context.context_id if session_b.context else None
    print(f"client B: reuses {session_b.reused_prefix_length} tokens of stored context {reused_context_id!r}")
    answer_b = loop.run_tokens(truncated_b, cache=session_b, max_new_tokens=6)
    plan = session_b.plan_for_layer(model.config.num_layers - 1)
    print(f"client B retrieval plan: {plan.describe()}")
    if plan.predicate is not None:
        print(f"  -> retrieval restricted to the first {plan.predicate.max_position} shared tokens")

    # ---------------------------------------------------------------- follow-up
    follow_up_prompt = conversation_a.tokens  # client A returns with the full history
    session_a2, truncated_a2 = db.create_session(follow_up_prompt)
    print(f"client A follow-up: reuses the whole stored conversation "
          f"({session_a2.reused_prefix_length} tokens, {len(truncated_a2)} new)")

    print("\nanswers are produced by a toy byte-level model; what matters here is the "
          "reuse accounting and the retrieval plans shown above")


if __name__ == "__main__":
    main()
