"""The network serving frontend: SSE streams, cancellation, backpressure.

This example boots the asyncio HTTP server (``repro.server``) in-process on
an ephemeral port and drives it the way an external client would:

1. ``POST /v1/completions`` without ``stream`` returns the whole completion
   as one JSON body;
2. with ``"stream": true`` the response is an SSE stream — one ``data:``
   event per generated token, a final summary event, then ``[DONE]``;
3. ``DELETE /v1/requests/{id}`` cancels a stream mid-flight (the final SSE
   event reports ``finish_reason: "cancelled"``);
4. a tenant that outruns its queue quota is refused with **429** carrying
   ``Retry-After`` and ``X-Queue-Position`` instead of being queued forever;
5. ``GET /v1/stats`` exposes the scheduler counters, the memory report, and
   the per-tenant accounting rows;
6. a graceful ``shutdown(drain=True)`` finishes in-flight streams and exits
   with zero pinned contexts and zero admission reservations.

The tiny NumPy substrate generates byte gibberish — watch the counters and
status codes, not the text.

Run with:  python examples/http_client.py
"""

from __future__ import annotations

import asyncio

from repro import AlayaDBConfig, InferenceService, ModelConfig, TransformerModel
from repro.scheduler import TenantSpec
from repro.server import AlayaDBServer, ServerClient


async def main() -> None:
    model = TransformerModel(ModelConfig.tiny(seed=41))
    config = AlayaDBConfig(
        http_port=0,  # ephemeral port; server.address reports the real one
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=1 << 20,  # decode with full attention (tiny contexts)
        max_inflight_requests=2,
        tenants=(
            TenantSpec(name="gold", weight=3),
            TenantSpec(name="bronze", weight=1, max_queued=1),
        ),
    )
    service = InferenceService(model, config)
    server = AlayaDBServer(service)
    await server.start()
    host, port = server.address
    print(f"serving on http://{host}:{port}")
    client = ServerClient(host, port)

    # --- 1. a non-streaming completion ----------------------------------------
    print("\n=== POST /v1/completions (non-streaming) ===")
    response = await client.completion(prompt="complete me over the wire ", max_new_tokens=4)
    body = response.json()
    print(f"HTTP {response.status}: request {body['id']}, "
          f"finish_reason={body['finish_reason']!r}, "
          f"usage {body['usage']['prompt_tokens']}+{body['usage']['completion_tokens']}")

    # --- 2. a streaming completion (SSE) --------------------------------------
    print("\n=== POST /v1/completions (SSE stream) ===")
    stream, events = await client.collect_stream(
        prompt="stream me token by token ", max_new_tokens=5, tenant="gold"
    )
    tokens = [e["token_id"] for e in events if "token_id" in e]
    print(f"HTTP {stream.status}: {len(tokens)} token events {tokens}, "
          f"final finish_reason={events[-1]['finish_reason']!r}")

    # --- 3. cancel a stream mid-flight via DELETE -----------------------------
    print("\n=== DELETE /v1/requests/{id} mid-stream ===")
    doomed = await client.stream_completion(prompt="the client walks away " * 4,
                                            max_new_tokens=500)
    seen = 0
    async for event in doomed.events():
        if "token_id" in event:
            seen += 1
            if seen == 2:  # two tokens in, the client changes its mind
                cancel = await client.cancel(doomed.request_id)
                print(f"DELETE -> HTTP {cancel.status} {cancel.json()}")
        if event.get("done"):
            print(f"stream ended after {seen} tokens, "
                  f"finish_reason={event['finish_reason']!r}")
    await doomed.close()

    # --- 4. backpressure: the bronze tenant outruns its quota -----------------
    print("\n=== 429 backpressure (bronze: max_queued=1) ===")
    # saturate the two inflight slots with slow gold streams, then queue one
    # bronze request; the *second* bronze submission exceeds max_queued=1
    hogs = [
        await client.stream_completion(prompt=f"hog {i} ", max_new_tokens=300,
                                       tenant="gold")
        for i in range(2)
    ]
    queued = await client.stream_completion(prompt="bronze waits ", max_new_tokens=2,
                                            tenant="bronze")
    refused = await client.completion(prompt="bronze overflow ", max_new_tokens=2,
                                      tenant="bronze")
    print(f"overflow submission -> HTTP {refused.status} "
          f"(code={refused.json()['error']['code']!r}, "
          f"Retry-After={refused.headers.get('retry-after')}, "
          f"X-Queue-Position={refused.headers.get('x-queue-position')})")
    for hog in hogs:
        hog.abort()  # disconnects cancel the hogs and free the slots
    async for _ in queued.events():
        pass  # the queued bronze stream now completes
    await queued.close()

    # --- 5. stats and graceful drain ------------------------------------------
    print("\n=== GET /v1/stats, then drain ===")
    stats = await client.stats()
    print(f"scheduler: completed={stats['scheduler']['completed']} "
          f"cancelled={stats['scheduler']['cancelled']}")
    for name, row in stats["memory"]["tenants"].items():
        print(f"  tenant {name}: completed={row['completed']} "
              f"tokens_served={row['tokens_served']} throttled_429={row['throttled_429']}")
    await server.shutdown(drain=True)  # asserts zero pins / zero reservations
    print(f"server drained cleanly (state: {server.state})")


if __name__ == "__main__":
    asyncio.run(main())
