"""Comparing context-reuse strategies: AlayaDB vs LMCache vs recomputation.

This example reproduces the Figure 10 experiment interactively: it stores one
long context three ways — not at all (recompute the prefill), as a compressed
KV blob (LMCache-style disaggregation), and as an AlayaDB context with vector
indexes — then reports the time-to-first-token for each and the memory each
keeps on the GPU.  Latencies at Llama-3-8B scale come from the calibrated cost
model; the small-scale mechanics (compression, decompression, index search)
are executed for real.

Run with:  python examples/context_reuse_ttft.py
"""

from __future__ import annotations

import time

from repro import DB, AlayaDBConfig
from repro.baselines import AlayaDBTTFTModel, LMCacheStore, NoReusePrefill
from repro.kvcache import snapshot_from_cache, DynamicCache
from repro.llm import ModelConfig, TransformerModel
from repro.simulator import CostModel, GIB


def main() -> None:
    model = TransformerModel(ModelConfig.tiny(seed=31))
    db = DB(AlayaDBConfig(window_initial_tokens=32, window_last_tokens=64, short_context_threshold=128,
                          gpu_memory_budget_bytes=1))
    cost = CostModel()

    document = "A very long shared context that many requests will reuse. " * 60

    # --- store the context three ways ----------------------------------------
    print("=== storing the context ===")
    tokens = db._tokenize(document)

    start = time.perf_counter()
    cache = DynamicCache()
    model.prefill(tokens, cache)
    prefill_seconds = time.perf_counter() - start
    print(f"prefill of {len(tokens)} tokens on the toy substrate: {prefill_seconds:.2f}s")

    lmcache = LMCacheStore(cost)
    snapshot = snapshot_from_cache(tokens, cache)
    stored_bytes = lmcache.store("doc", snapshot)
    print(f"LMCache stores {stored_bytes / 1e6:.1f} MB compressed "
          f"(raw {snapshot.nbytes / 1e6:.1f} MB)")

    start = time.perf_counter()
    context = db.prefill_and_import(model, document, context_id="doc")
    print(f"AlayaDB imports + indexes the context in {time.perf_counter() - start:.2f}s "
          f"({context.index_bytes / 1e6:.1f} MB of indexes, kept on CPU)")

    # --- TTFT at paper scale ---------------------------------------------------
    print("\n=== modelled TTFT at Llama-3-8B scale ===")
    print(f"{'context':>10s} | {'recompute':>10s} | {'LMCache':>10s} | {'AlayaDB':>10s}")
    for length in (40_000, 120_000, 200_000):
        no_reuse = NoReusePrefill(cost).ttft_for_length(length).total_seconds
        lm = LMCacheStore(cost).ttft_for_length(length).total_seconds
        alaya = AlayaDBTTFTModel(cost).ttft_for_length(length).total_seconds
        print(f"{length:>9d}  | {no_reuse:>9.1f}s | {lm:>9.2f}s | {alaya:>9.3f}s")

    # --- what actually sits on the GPU -----------------------------------------
    print("\n=== GPU residency at 200K tokens (modelled) ===")
    kv_bytes = 200_000 * cost.shape.kv_bytes_per_token
    print(f"coupled / disaggregated architectures keep the full KV cache: {kv_bytes / GIB:.1f} GiB")
    window_tokens = 128 + 512
    window_bytes = window_tokens * cost.shape.kv_bytes_per_token
    print(f"AlayaDB keeps the [128+512] window plus per-step critical tokens: "
          f"{window_bytes / GIB:.3f} GiB resident")

    # --- and the real mechanics at toy scale ------------------------------------
    print("\n=== real mechanics at toy scale ===")
    keys, values, load_seconds = lmcache.load("doc")
    print(f"LMCache decompression of the stored blob (modelled load {load_seconds:.3f}s) "
          f"recovers {sum(k.nbytes for k in keys.values()) / 1e6:.1f} MB of KV")
    session, truncated = db.create_session(document + " What does it say?")
    print(f"AlayaDB session reuses {session.reused_prefix_length} tokens without moving any KV; "
          f"{len(truncated)} prompt tokens remain to prefill")


if __name__ == "__main__":
    main()
