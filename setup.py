"""Setuptools shim so editable installs work on environments without the
``wheel`` package (legacy ``setup.py develop`` path)."""

from setuptools import setup

setup()
