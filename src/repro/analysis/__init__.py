"""Analysis tooling: recovery ratios, critical-token statistics, reporting."""

from .critical_tokens import WindowCoverage, count_critical_tokens, window_max_coverage
from .recovery import (
    HeadRecoveryProfile,
    dipr_selection_count,
    head_recovery_profile,
    required_k_for_accuracy,
)
from .reporting import format_series, format_table, print_series, print_table

__all__ = [
    "HeadRecoveryProfile",
    "WindowCoverage",
    "count_critical_tokens",
    "dipr_selection_count",
    "format_series",
    "format_table",
    "head_recovery_profile",
    "print_series",
    "print_table",
    "required_k_for_accuracy",
    "window_max_coverage",
]
