"""Plain-text table/series formatting shared by the benchmark harnesses.

The benchmarks print the same rows and series the paper's tables and figures
show; these helpers keep that output consistent and readable in a terminal
(and in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "print_table", "print_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render a fixed-width table."""
    columns = [[str(h)] + [_fmt(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    pairs = ", ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> None:
    print(format_table(headers, rows, title))


def print_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> None:
    print(format_series(name, xs, ys))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if "." in f"{value:.3f}" else f"{value:.3f}"
    return str(value)
