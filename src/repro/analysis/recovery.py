"""Recovery-ratio analysis (the study behind Figure 5 and Table 3).

Given the true attention-score distribution of a head, these helpers compute
how many tokens a sparse method must retrieve to recover a target share of
the attention mass, and how many tokens a DIPR query with a given ``beta``
would select — the two curves compared in Figure 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.generator import SyntheticWorkload
from ..workloads.scoring import softmax_weights, tokens_for_recovery

__all__ = ["HeadRecoveryProfile", "head_recovery_profile", "dipr_selection_count", "required_k_for_accuracy"]


@dataclass
class HeadRecoveryProfile:
    """Per-head critical-token statistics averaged over decode steps."""

    layer: int
    kv_head: int
    tokens_for_90pct: float
    dipr_selected: float
    planted_critical: int


def dipr_selection_count(scores: np.ndarray, beta: float) -> int:
    """How many tokens a DIPR(q, beta) query selects on this score vector.

    ``scores`` are pre-softmax logits; DIPR operates on raw inner products, so
    the caller must pass unscaled ``q·k`` values (or scale ``beta``
    consistently).
    """
    scores = np.asarray(scores, dtype=np.float64)
    return int(np.count_nonzero(scores >= scores.max() - beta))


def head_recovery_profile(
    workload: SyntheticWorkload,
    beta: float,
    recovery_target: float = 0.9,
) -> list[HeadRecoveryProfile]:
    """Per-(layer, kv head) statistics: tokens for 90% recovery vs DIPR count.

    Raw inner products (not scaled by sqrt(d)) are used for the DIPR count to
    match Definition 2; the recovery count uses the softmax of the scaled
    logits, matching the recovery-ratio definition.
    """
    spec = workload.spec
    profiles: list[HeadRecoveryProfile] = []
    sqrt_d = np.sqrt(spec.head_dim)
    for layer in range(spec.num_layers):
        keys = workload.context.keys(layer)
        for kv_head in range(spec.num_kv_heads):
            recovery_counts = []
            dipr_counts = []
            for step in range(spec.num_decode_steps):
                query_head = kv_head * spec.gqa_group_size
                query = workload.query_for(step, layer, query_head)
                raw = keys[kv_head] @ query
                recovery_counts.append(tokens_for_recovery(raw / sqrt_d, recovery_target))
                dipr_counts.append(dipr_selection_count(raw, beta))
            profiles.append(
                HeadRecoveryProfile(
                    layer=layer,
                    kv_head=kv_head,
                    tokens_for_90pct=float(np.mean(recovery_counts)),
                    dipr_selected=float(np.mean(dipr_counts)),
                    planted_critical=int(workload.critical_counts[layer, kv_head]),
                )
            )
    return profiles


def required_k_for_accuracy(
    workload: SyntheticWorkload,
    target_recovery: float = 0.9,
    candidate_ks: list[int] | None = None,
) -> int:
    """Smallest fixed top-k that reaches ``target_recovery`` mean recovery.

    This is the per-task statistic of Table 3: how many tokens a *static*
    top-k query must retrieve so sparse attention matches full attention on
    the task.
    """
    spec = workload.spec
    if candidate_ks is None:
        candidate_ks = sorted({10, 20, 35, 50, 65, 80, 100, 150, 200, 250, 300, 350, 400, 500, 650, 800, 1000})
    sqrt_d = np.sqrt(spec.head_dim)

    # mean recovery achieved by attending the exact top-k tokens of each head
    def mean_recovery(k: int) -> float:
        totals = []
        for step in range(spec.num_decode_steps):
            for layer in range(spec.num_layers):
                keys = workload.context.keys(layer)
                for kv_head in range(spec.num_kv_heads):
                    query_head = kv_head * spec.gqa_group_size
                    query = workload.query_for(step, layer, query_head)
                    scores = (keys[kv_head] @ query) / sqrt_d
                    weights = softmax_weights(scores)
                    top = np.argsort(-weights)[:k]
                    totals.append(float(weights[top].sum()))
        return float(np.mean(totals))

    for k in candidate_ks:
        if mean_recovery(k) >= target_recovery:
            return k
    return candidate_ks[-1]
