"""Critical-token statistics: counts per head, window coverage.

Backs the Section 6.1 observations (critical-token counts vary per head and
per task) and the Section 7.1 window statistic (the key with the maximum
inner product usually lies inside the [initial + last] window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads.generator import SyntheticWorkload

__all__ = ["WindowCoverage", "count_critical_tokens", "window_max_coverage"]


def count_critical_tokens(scores: np.ndarray, alpha: float) -> int:
    """Number of critical tokens under Definition 1 (attention-score ratio).

    ``scores`` are pre-softmax logits; a token is critical when its softmax
    weight is at least ``alpha`` times the maximum weight, which is equivalent
    to ``logit >= max_logit + ln(alpha)``.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    scores = np.asarray(scores, dtype=np.float64)
    return int(np.count_nonzero(scores >= scores.max() + np.log(alpha)))


@dataclass
class WindowCoverage:
    """How often the global max-inner-product key falls inside the window."""

    num_queries: int
    num_covered: int

    @property
    def coverage(self) -> float:
        return self.num_covered / max(self.num_queries, 1)


def window_max_coverage(
    workload: SyntheticWorkload,
    initial_tokens: int = 32,
    last_tokens: int = 32,
) -> WindowCoverage:
    """Fraction of (step, head) pairs whose arg-max key lies in the window.

    The paper reports ~98% coverage with a 32+32 window on math_find; the
    statistic justifies seeding DIPRS with the window maximum.
    """
    spec = workload.spec
    n = spec.context_length
    window = np.unique(
        np.concatenate(
            [
                np.arange(0, min(initial_tokens, n), dtype=np.int64),
                np.arange(max(0, n - last_tokens), n, dtype=np.int64),
            ]
        )
    )
    window_set = set(int(p) for p in window)
    covered = 0
    total = 0
    for step in range(spec.num_decode_steps):
        for layer in range(spec.num_layers):
            keys = workload.context.keys(layer)
            for kv_head in range(spec.num_kv_heads):
                query_head = kv_head * spec.gqa_group_size
                query = workload.query_for(step, layer, query_head)
                scores = keys[kv_head] @ query
                total += 1
                if int(np.argmax(scores)) in window_set:
                    covered += 1
    return WindowCoverage(num_queries=total, num_covered=covered)
