"""DIPRS: the approximate DIPR query processing algorithm (Algorithm 1).

A DIPR query returns every key whose inner product with the query is within
``beta`` of the *maximum* inner product.  The number of results is unknown
until the maximiser is found, so the classic fixed-``ef`` beam search does not
apply directly.  DIPRS instead maintains an **unordered candidate list with
variable capacity** and prunes exploration against the best-so-far maximum:

* while the list holds fewer than ``capacity_threshold`` (``l0``) elements,
  every explored point is appended — this widens the early search so the true
  maximiser is found quickly (design principle i);
* once past the threshold, a point is appended only if its inner product is
  within ``beta`` of the current best — non-critical regions of the graph are
  not explored (design principle ii).

The *window-cache enhancement* of Section 7.1 seeds the best-so-far maximum
with the largest inner product found in the GPU-resident token window, which
tightens the pruning bound from the first hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..index.base import SearchResult
from ..index.graph import NeighborGraph

__all__ = [
    "DIPRSearchStats",
    "FrontierScratch",
    "GroupDIPRSearchStats",
    "diprs_search",
    "diprs_search_group",
    "exact_dipr",
]


class FrontierScratch:
    """Reusable scratch buffers for a run of group-frontier walks.

    A cross-request decode round dispatches one group walk per (session,
    GQA group) from a single loop; each walk needs a ``visited`` bitmap the
    size of its graph.  Holding one buffer here (grown to the largest graph
    seen, reset with a cheap memset per walk) avoids one fresh allocation
    per walk and keeps every dispatch in the round on the same warm memory.
    """

    def __init__(self) -> None:
        self._visited = np.zeros(0, dtype=bool)

    def visited(self, num_nodes: int) -> np.ndarray:
        """A zeroed ``(num_nodes,)`` boolean view, reused across walks."""
        if self._visited.shape[0] < num_nodes:
            self._visited = np.zeros(num_nodes, dtype=bool)
            return self._visited
        view = self._visited[:num_nodes]
        view[:] = False
        return view


@dataclass
class DIPRSearchStats:
    """Work counters of one DIPRS search."""

    num_distance_computations: int = 0
    num_hops: int = 0
    num_appended: int = 0
    num_pruned: int = 0


@dataclass
class GroupDIPRSearchStats:
    """Work counters of one group-frontier DIPRS search.

    ``num_distance_computations`` and ``num_hops`` count the *shared* walk
    once per group: every visited node is gathered from storage and scored for
    all heads by a single fused matmul, so one node is one distance
    computation regardless of the group size.  ``per_head`` mirrors the
    per-head view of the same walk (appended/pruned counts per head; their
    distance/hop counters equal the shared ones).
    """

    num_distance_computations: int = 0
    num_hops: int = 0
    per_head: list[DIPRSearchStats] = field(default_factory=list)

    @property
    def num_heads(self) -> int:
        return len(self.per_head)


def append_hop_candidates(
    nodes: np.ndarray,
    scores: np.ndarray,
    *,
    beta: float,
    capacity_threshold: int,
    allowed: np.ndarray | None,
    candidate_ids: list[int],
    candidate_scores: list[float],
    best_score: float,
    stats: DIPRSearchStats,
) -> float:
    """Append one hop's freshly scored nodes against the running threshold.

    Vectorized equivalent of calling the scalar ``try_append`` on each
    ``(node, score)`` pair in order: element ``i`` is checked against the
    best-so-far score produced by elements ``< i`` (carried by a prefix
    cummax instead of a Python loop), and the capacity grant covers exactly
    the slots left open when the hop starts.  Disallowed nodes are scored for
    connectivity but may neither join the candidate list nor raise the
    best-so-far maximum — the DIPR maximum is defined over the allowed tokens
    only.  Returns the updated best-so-far score.
    """
    stats.num_distance_computations += int(nodes.shape[0])
    if allowed is not None:
        keep = allowed[nodes]
        num_disallowed = int(nodes.shape[0] - keep.sum())
        if num_disallowed:
            stats.num_pruned += num_disallowed
            nodes = nodes[keep]
            scores = scores[keep]
    if nodes.shape[0] == 0:
        return best_score
    scores64 = scores.astype(np.float64)
    # best-so-far visible to element i = max(incoming best, max(scores[:i]))
    prefix_best = np.empty(scores64.shape[0], dtype=np.float64)
    prefix_best[0] = best_score
    if scores64.shape[0] > 1:
        np.maximum(best_score, np.maximum.accumulate(scores64[:-1]), out=prefix_best[1:])
    free_slots = max(0, capacity_threshold - len(candidate_ids))
    below_capacity = np.arange(scores64.shape[0]) < free_slots
    critical = scores64 >= prefix_best - beta
    append = below_capacity | critical
    num_appended = int(append.sum())
    stats.num_appended += num_appended
    stats.num_pruned += int(nodes.shape[0] - num_appended)
    if num_appended:
        candidate_ids.extend(int(node) for node in nodes[append])
        candidate_scores.extend(float(score) for score in scores[append])
    return max(best_score, float(scores64.max()))


def append_hop_candidates_group(
    nodes: np.ndarray,
    scores: np.ndarray,
    *,
    beta: float,
    capacity_threshold: int,
    allowed: np.ndarray | None,
    candidate_ids: list[list[int]],
    candidate_scores: list[list[float]],
    best_scores: np.ndarray,
    stats: list[DIPRSearchStats],
) -> np.ndarray:
    """Group generalization of :func:`append_hop_candidates`.

    ``scores`` is the ``(g, m)`` matrix of one hop's fused scoring; each row
    runs the same prefix-cummax append rule the scalar helper applies —
    per-head capacity grants, per-head running best-so-far — over the shared
    node set.  ``best_scores`` (``(g,)`` float64) is updated in place.
    Returns a boolean mask over ``nodes`` marking the ones appended by at
    least one head, which is the group frontier's expansion condition: a node
    any head finds critical keeps the shared walk going.
    """
    num_nodes = int(nodes.shape[0])
    num_heads = scores.shape[0]
    for head_stats in stats:
        head_stats.num_distance_computations += num_nodes
    keep_positions = None
    if allowed is not None:
        keep = allowed[nodes]
        num_disallowed = int(num_nodes - keep.sum())
        if num_disallowed:
            for head_stats in stats:
                head_stats.num_pruned += num_disallowed
            keep_positions = np.flatnonzero(keep)
            nodes = nodes[keep]
            scores = scores[:, keep]
    if nodes.shape[0] == 0:
        return np.zeros(num_nodes, dtype=bool)
    scores64 = scores.astype(np.float64)
    # best-so-far visible to element (h, i) = max(incoming best_h, max(scores[h, :i]))
    prefix_best = np.empty_like(scores64)
    prefix_best[:, 0] = best_scores
    if scores64.shape[1] > 1:
        np.maximum(
            best_scores[:, None],
            np.maximum.accumulate(scores64[:, :-1], axis=1),
            out=prefix_best[:, 1:],
        )
    free_slots = np.array(
        [max(0, capacity_threshold - len(ids)) for ids in candidate_ids], dtype=np.int64
    )
    below_capacity = np.arange(scores64.shape[1])[None, :] < free_slots[:, None]
    critical = scores64 >= prefix_best - beta
    append = below_capacity | critical
    for head in range(num_heads):
        selected = append[head]
        num_appended = int(selected.sum())
        stats[head].num_appended += num_appended
        stats[head].num_pruned += int(nodes.shape[0] - num_appended)
        if num_appended:
            candidate_ids[head].extend(int(node) for node in nodes[selected])
            candidate_scores[head].extend(float(score) for score in scores[head, selected])
    np.maximum(best_scores, scores64.max(axis=1), out=best_scores)
    appended_any = append.any(axis=0)
    if keep_positions is None:
        return appended_any
    mask = np.zeros(num_nodes, dtype=bool)
    mask[keep_positions[appended_any]] = True
    return mask


def group_frontier_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    queries: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    *,
    expand: Callable[[int], np.ndarray],
    capacity_threshold: int = 32,
    window_max_scores: np.ndarray | None = None,
    allowed: np.ndarray | None = None,
    max_tokens: int | None = None,
    entry_fallback: Callable[[], np.ndarray] | None = None,
    scratch: FrontierScratch | None = None,
) -> tuple[list[SearchResult], GroupDIPRSearchStats]:
    """The shared group-frontier walk behind :func:`diprs_search_group`.

    One visited set and one frontier serve every head of the group: each hop
    gathers the fresh neighbours once, scores them for all heads with a
    single ``(g, d) @ (d, m)`` matmul, and runs the per-head append rule on
    the resulting score matrix.  A node joins the frontier when *any* head
    appends it — a head whose own prune condition would stop keeps receiving
    (and scoring) the nodes the rest of the group explores.  Each head's
    result is therefore the exact ``best - beta`` range over the *shared*
    visited set (a scored node within ``beta`` of a head's final best always
    passes the critical check, because the running threshold never exceeds
    the final one); since the union walk typically visits a superset of any
    solo walk's nodes, per-head results typically grow relative to
    :func:`diprs_search` — like the solo walk, the traversal itself stays
    approximate, so this is an empirical (grid-pinned) property, not a
    theorem.  The ``max_tokens`` cap and the final threshold remain
    per-head.

    ``expand`` maps an expanded node to its exploration neighbourhood (1-hop
    for plain DIPRS, 2-hop for the filtered variant) and ``entry_fallback``
    optionally supplies replacement seeds when no head appends any entry
    point (the filtered search falls back to the first allowed positions).
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    num_heads = queries.shape[0]
    stats = GroupDIPRSearchStats(per_head=[DIPRSearchStats() for _ in range(num_heads)])
    if scratch is not None:
        visited = scratch.visited(graph.num_nodes)
    else:
        visited = np.zeros(graph.num_nodes, dtype=bool)
    candidate_ids: list[list[int]] = [[] for _ in range(num_heads)]
    candidate_scores: list[list[float]] = [[] for _ in range(num_heads)]
    if window_max_scores is None:
        best_scores = np.full(num_heads, -np.inf, dtype=np.float64)
    else:
        best_scores = np.asarray(window_max_scores, dtype=np.float64).reshape(-1).copy()
        if best_scores.shape[0] != num_heads:
            raise ValueError(
                f"window_max_scores must provide one seed per head "
                f"({num_heads}), got shape {np.shape(window_max_scores)}"
            )
    frontier: list[int] = []

    def score_fresh(fresh: np.ndarray) -> None:
        # fused hop scoring: one (g, d) @ (d, m) matmul serves the whole group,
        # and the gather from storage happens once — counted once per group
        hop_scores = queries @ vectors[fresh].T
        stats.num_distance_computations += int(fresh.shape[0])
        appended = append_hop_candidates_group(
            fresh,
            hop_scores,
            beta=beta,
            capacity_threshold=capacity_threshold,
            allowed=allowed,
            candidate_ids=candidate_ids,
            candidate_scores=candidate_scores,
            best_scores=best_scores,
            stats=stats.per_head,
        )
        if appended.any():
            frontier.extend(int(node) for node in fresh[appended])

    entry_points = np.atleast_1d(np.asarray(entry_points, dtype=np.int64))
    fresh_entries = []
    for entry in entry_points:
        entry = int(entry)
        if not visited[entry]:
            visited[entry] = True
            fresh_entries.append(entry)
    if fresh_entries:
        score_fresh(np.asarray(fresh_entries, dtype=np.int64))
    if entry_fallback is not None and not frontier:
        seeds = np.asarray(entry_fallback(), dtype=np.int64)
        seeds = seeds[~visited[seeds]]
        if seeds.shape[0]:
            visited[seeds] = True
            score_fresh(seeds)

    cursor = 0
    while cursor < len(frontier):
        node = frontier[cursor]
        cursor += 1
        stats.num_hops += 1
        for head_stats in stats.per_head:
            head_stats.num_hops += 1
        neighbors = expand(node)
        fresh = neighbors[~visited[neighbors]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        score_fresh(fresh)

    results = []
    for head in range(num_heads):
        indices = np.asarray(candidate_ids[head], dtype=np.int64)
        scores = np.asarray(candidate_scores[head], dtype=np.float32)
        threshold = best_scores[head] - beta
        keep = scores >= threshold
        indices, scores = indices[keep], scores[keep]
        order = np.argsort(-scores)
        if max_tokens is not None:
            order = order[:max_tokens]
        results.append(
            SearchResult(
                indices=indices[order],
                scores=scores[order],
                num_distance_computations=stats.num_distance_computations,
            )
        )
    return results, stats


def diprs_search_group(
    vectors: np.ndarray,
    graph: NeighborGraph,
    queries: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    capacity_threshold: int = 32,
    window_max_scores: np.ndarray | None = None,
    allowed: np.ndarray | None = None,
    max_tokens: int | None = None,
    scratch: FrontierScratch | None = None,
) -> tuple[list[SearchResult], GroupDIPRSearchStats]:
    """Group-frontier DIPRS: one shared walk for a whole GQA group.

    GQA query heads probing the same KV head share the RoarGraph their keys
    were indexed into, so ``g`` separate :func:`diprs_search` walks revisit
    largely the same nodes ``g`` times.  This variant walks the graph once
    for all of them: one visited set, one frontier, and fused hop scoring
    (one ``(g, d) @ (d, m)`` matmul per hop) against per-head best-score /
    ``beta`` thresholds.  Expansion follows the *union* policy — a node is
    explored while any head finds it critical (or has capacity slots open) —
    so every head scores every node the group visits, and the returned
    per-head results are threshold-filtered at that head's own
    ``best - beta`` exactly like the scalar search, with ``allowed`` masks
    and the ``max_tokens`` cap applied per head.  On attention-like
    clustered data the group and solo walks find the same maxima and the
    per-head top sets match the solo results exactly, typically as (equal)
    supersets — the equivalence grid in ``tests/query/test_group_frontier``
    pins this.

    Returns one :class:`~repro.index.base.SearchResult` per row of
    ``queries`` (entry ``h`` matching ``diprs_search(queries[h], ...)`` on
    aligned traversals) plus the :class:`GroupDIPRSearchStats` of the shared
    walk, whose distance computations count each visited node once for the
    whole group.
    """
    return group_frontier_search(
        vectors,
        graph,
        queries,
        beta,
        entry_points,
        expand=lambda node: graph.neighbors(int(node)),
        capacity_threshold=capacity_threshold,
        window_max_scores=window_max_scores,
        allowed=allowed,
        max_tokens=max_tokens,
        scratch=scratch,
    )


def exact_dipr(vectors: np.ndarray, query: np.ndarray, beta: float, allowed: np.ndarray | None = None) -> SearchResult:
    """Ground-truth DIPR by full scan (the flat-index execution path)."""
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    scores = vectors @ query
    if allowed is not None:
        scores = np.where(allowed, scores, -np.inf)
    finite = np.isfinite(scores)
    if not finite.any():
        return SearchResult(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32), int(vectors.shape[0]))
    threshold = scores[finite].max() - beta
    selected = np.flatnonzero(scores >= threshold)
    order = selected[np.argsort(-scores[selected])]
    return SearchResult(
        indices=order.astype(np.int64),
        scores=scores[order].astype(np.float32),
        num_distance_computations=int(vectors.shape[0]),
    )


def diprs_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    query: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    capacity_threshold: int = 32,
    window_max_score: float | None = None,
    allowed: np.ndarray | None = None,
    max_tokens: int | None = None,
) -> tuple[SearchResult, DIPRSearchStats]:
    """Algorithm 1 of the paper: graph-based approximate DIPR search.

    Parameters
    ----------
    vectors:
        Key vectors ``(n, d)`` the graph is built over.
    graph:
        Neighbour graph (RoarGraph / HNSW bottom layer) in CSR form.
    query:
        Query vector ``(d,)``.
    beta:
        The DIPR slack; only keys with ``q·k >= best - beta`` are critical.
    entry_points:
        Start nodes (``k0`` in the pseudocode).
    capacity_threshold:
        ``l0``: exploration is unrestricted until this many candidates exist.
    window_max_score:
        Maximum inner product observed in the cached window (Section 7.1);
        used to tighten pruning, and counted as a candidate for the final
        threshold.
    allowed:
        Optional boolean mask; disallowed nodes are explored for connectivity
        but never appended and never raise the best-so-far maximum — the DIPR
        threshold is defined over the allowed tokens only (see
        :mod:`repro.query.filtered` for 2-hop filtering built on top of this).
    max_tokens:
        Optional hard cap on the number of returned tokens (a safety valve the
        execution engine uses to bound worst-case latency).
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    stats = DIPRSearchStats()

    entry_points = np.atleast_1d(np.asarray(entry_points, dtype=np.int64))
    num_nodes = graph.num_nodes
    visited = np.zeros(num_nodes, dtype=bool)

    candidate_ids: list[int] = []
    candidate_scores: list[float] = []
    best_score = -np.inf if window_max_score is None else float(window_max_score)

    fresh_entries = []
    for entry in entry_points:
        entry = int(entry)
        if not visited[entry]:
            visited[entry] = True
            fresh_entries.append(entry)
    if fresh_entries:
        entry_nodes = np.asarray(fresh_entries, dtype=np.int64)
        best_score = append_hop_candidates(
            entry_nodes,
            vectors[entry_nodes] @ query,
            beta=beta,
            capacity_threshold=capacity_threshold,
            allowed=allowed,
            candidate_ids=candidate_ids,
            candidate_scores=candidate_scores,
            best_score=best_score,
            stats=stats,
        )

    cursor = 0
    while cursor < len(candidate_ids):
        node = candidate_ids[cursor]
        cursor += 1
        stats.num_hops += 1
        neighbors = graph.neighbors(int(node))
        fresh = neighbors[~visited[neighbors]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        best_score = append_hop_candidates(
            fresh,
            vectors[fresh] @ query,
            beta=beta,
            capacity_threshold=capacity_threshold,
            allowed=allowed,
            candidate_ids=candidate_ids,
            candidate_scores=candidate_scores,
            best_score=best_score,
            stats=stats,
        )

    indices = np.asarray(candidate_ids, dtype=np.int64)
    scores = np.asarray(candidate_scores, dtype=np.float32)
    threshold = best_score - beta
    keep = scores >= threshold
    indices, scores = indices[keep], scores[keep]
    order = np.argsort(-scores)
    if max_tokens is not None:
        order = order[:max_tokens]
    result = SearchResult(
        indices=indices[order],
        scores=scores[order],
        num_distance_computations=stats.num_distance_computations,
    )
    return result, stats
