"""DIPRS: the approximate DIPR query processing algorithm (Algorithm 1).

A DIPR query returns every key whose inner product with the query is within
``beta`` of the *maximum* inner product.  The number of results is unknown
until the maximiser is found, so the classic fixed-``ef`` beam search does not
apply directly.  DIPRS instead maintains an **unordered candidate list with
variable capacity** and prunes exploration against the best-so-far maximum:

* while the list holds fewer than ``capacity_threshold`` (``l0``) elements,
  every explored point is appended — this widens the early search so the true
  maximiser is found quickly (design principle i);
* once past the threshold, a point is appended only if its inner product is
  within ``beta`` of the current best — non-critical regions of the graph are
  not explored (design principle ii).

The *window-cache enhancement* of Section 7.1 seeds the best-so-far maximum
with the largest inner product found in the GPU-resident token window, which
tightens the pruning bound from the first hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..index.base import SearchResult
from ..index.graph import NeighborGraph

__all__ = ["DIPRSearchStats", "diprs_search", "exact_dipr"]


@dataclass
class DIPRSearchStats:
    """Work counters of one DIPRS search."""

    num_distance_computations: int = 0
    num_hops: int = 0
    num_appended: int = 0
    num_pruned: int = 0


def append_hop_candidates(
    nodes: np.ndarray,
    scores: np.ndarray,
    *,
    beta: float,
    capacity_threshold: int,
    allowed: np.ndarray | None,
    candidate_ids: list[int],
    candidate_scores: list[float],
    best_score: float,
    stats: DIPRSearchStats,
) -> float:
    """Append one hop's freshly scored nodes against the running threshold.

    Vectorized equivalent of calling the scalar ``try_append`` on each
    ``(node, score)`` pair in order: element ``i`` is checked against the
    best-so-far score produced by elements ``< i`` (carried by a prefix
    cummax instead of a Python loop), and the capacity grant covers exactly
    the slots left open when the hop starts.  Disallowed nodes are scored for
    connectivity but may neither join the candidate list nor raise the
    best-so-far maximum — the DIPR maximum is defined over the allowed tokens
    only.  Returns the updated best-so-far score.
    """
    stats.num_distance_computations += int(nodes.shape[0])
    if allowed is not None:
        keep = allowed[nodes]
        num_disallowed = int(nodes.shape[0] - keep.sum())
        if num_disallowed:
            stats.num_pruned += num_disallowed
            nodes = nodes[keep]
            scores = scores[keep]
    if nodes.shape[0] == 0:
        return best_score
    scores64 = scores.astype(np.float64)
    # best-so-far visible to element i = max(incoming best, max(scores[:i]))
    prefix_best = np.empty(scores64.shape[0], dtype=np.float64)
    prefix_best[0] = best_score
    if scores64.shape[0] > 1:
        np.maximum(best_score, np.maximum.accumulate(scores64[:-1]), out=prefix_best[1:])
    free_slots = max(0, capacity_threshold - len(candidate_ids))
    below_capacity = np.arange(scores64.shape[0]) < free_slots
    critical = scores64 >= prefix_best - beta
    append = below_capacity | critical
    num_appended = int(append.sum())
    stats.num_appended += num_appended
    stats.num_pruned += int(nodes.shape[0] - num_appended)
    if num_appended:
        candidate_ids.extend(int(node) for node in nodes[append])
        candidate_scores.extend(float(score) for score in scores[append])
    return max(best_score, float(scores64.max()))


def exact_dipr(vectors: np.ndarray, query: np.ndarray, beta: float, allowed: np.ndarray | None = None) -> SearchResult:
    """Ground-truth DIPR by full scan (the flat-index execution path)."""
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    scores = vectors @ query
    if allowed is not None:
        scores = np.where(allowed, scores, -np.inf)
    finite = np.isfinite(scores)
    if not finite.any():
        return SearchResult(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32), int(vectors.shape[0]))
    threshold = scores[finite].max() - beta
    selected = np.flatnonzero(scores >= threshold)
    order = selected[np.argsort(-scores[selected])]
    return SearchResult(
        indices=order.astype(np.int64),
        scores=scores[order].astype(np.float32),
        num_distance_computations=int(vectors.shape[0]),
    )


def diprs_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    query: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    capacity_threshold: int = 32,
    window_max_score: float | None = None,
    allowed: np.ndarray | None = None,
    max_tokens: int | None = None,
) -> tuple[SearchResult, DIPRSearchStats]:
    """Algorithm 1 of the paper: graph-based approximate DIPR search.

    Parameters
    ----------
    vectors:
        Key vectors ``(n, d)`` the graph is built over.
    graph:
        Neighbour graph (RoarGraph / HNSW bottom layer) in CSR form.
    query:
        Query vector ``(d,)``.
    beta:
        The DIPR slack; only keys with ``q·k >= best - beta`` are critical.
    entry_points:
        Start nodes (``k0`` in the pseudocode).
    capacity_threshold:
        ``l0``: exploration is unrestricted until this many candidates exist.
    window_max_score:
        Maximum inner product observed in the cached window (Section 7.1);
        used to tighten pruning, and counted as a candidate for the final
        threshold.
    allowed:
        Optional boolean mask; disallowed nodes are explored for connectivity
        but never appended and never raise the best-so-far maximum — the DIPR
        threshold is defined over the allowed tokens only (see
        :mod:`repro.query.filtered` for 2-hop filtering built on top of this).
    max_tokens:
        Optional hard cap on the number of returned tokens (a safety valve the
        execution engine uses to bound worst-case latency).
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    stats = DIPRSearchStats()

    entry_points = np.atleast_1d(np.asarray(entry_points, dtype=np.int64))
    num_nodes = graph.num_nodes
    visited = np.zeros(num_nodes, dtype=bool)

    candidate_ids: list[int] = []
    candidate_scores: list[float] = []
    best_score = -np.inf if window_max_score is None else float(window_max_score)

    fresh_entries = []
    for entry in entry_points:
        entry = int(entry)
        if not visited[entry]:
            visited[entry] = True
            fresh_entries.append(entry)
    if fresh_entries:
        entry_nodes = np.asarray(fresh_entries, dtype=np.int64)
        best_score = append_hop_candidates(
            entry_nodes,
            vectors[entry_nodes] @ query,
            beta=beta,
            capacity_threshold=capacity_threshold,
            allowed=allowed,
            candidate_ids=candidate_ids,
            candidate_scores=candidate_scores,
            best_score=best_score,
            stats=stats,
        )

    cursor = 0
    while cursor < len(candidate_ids):
        node = candidate_ids[cursor]
        cursor += 1
        stats.num_hops += 1
        neighbors = graph.neighbors(int(node))
        fresh = neighbors[~visited[neighbors]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        best_score = append_hop_candidates(
            fresh,
            vectors[fresh] @ query,
            beta=beta,
            capacity_threshold=capacity_threshold,
            allowed=allowed,
            candidate_ids=candidate_ids,
            candidate_scores=candidate_scores,
            best_score=best_score,
            stats=stats,
        )

    indices = np.asarray(candidate_ids, dtype=np.int64)
    scores = np.asarray(candidate_scores, dtype=np.float32)
    threshold = best_score - beta
    keep = scores >= threshold
    indices, scores = indices[keep], scores[keep]
    order = np.argsort(-scores)
    if max_tokens is not None:
        order = order[:max_tokens]
    result = SearchResult(
        indices=indices[order],
        scores=scores[order],
        num_distance_computations=stats.num_distance_computations,
    )
    return result, stats
