"""Query processing: query types, DIPRS, top-k and filtered search."""

from .dipr import (
    DIPRSearchStats,
    FrontierScratch,
    GroupDIPRSearchStats,
    diprs_search,
    diprs_search_group,
    exact_dipr,
)
from .filtered import (
    filtered_diprs_search,
    filtered_diprs_search_group,
    naive_filtered_diprs_search,
    predicate_mask,
)
from .topk import coarse_topk_search, flat_topk_search, graph_topk_search
from .types import (
    DIPRQuery,
    FilterPredicate,
    IndexKind,
    QueryKind,
    QuerySpec,
    TopKQuery,
    alpha_from_beta,
    beta_from_alpha,
)

__all__ = [
    "DIPRQuery",
    "DIPRSearchStats",
    "FilterPredicate",
    "FrontierScratch",
    "GroupDIPRSearchStats",
    "IndexKind",
    "QueryKind",
    "QuerySpec",
    "TopKQuery",
    "alpha_from_beta",
    "beta_from_alpha",
    "coarse_topk_search",
    "diprs_search",
    "diprs_search_group",
    "exact_dipr",
    "filtered_diprs_search",
    "filtered_diprs_search_group",
    "flat_topk_search",
    "graph_topk_search",
    "naive_filtered_diprs_search",
    "predicate_mask",
]
