"""Top-k critical-token retrieval over the three index families.

These helpers give the execution engine one uniform entry point per index
family; the fixed-k semantics match the retrieval used by RetrievalAttention
and the other prior systems AlayaDB compares against.
"""

from __future__ import annotations

import numpy as np

from ..index.base import SearchResult
from ..index.coarse import CoarseBlockIndex
from ..index.flat import FlatIndex
from ..index.graph import NeighborGraph, beam_search

__all__ = ["graph_topk_search", "flat_topk_search", "coarse_topk_search"]


def graph_topk_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    query: np.ndarray,
    k: int,
    entry_points: np.ndarray | list[int],
    ef: int | None = None,
    allowed: np.ndarray | None = None,
) -> SearchResult:
    """Fixed-size beam search over a fine-grained graph index."""
    ef = max(ef or 4 * k, k)
    indices, scores, stats = beam_search(vectors, graph, np.asarray(query, dtype=np.float32), ef, entry_points, allowed=allowed)
    result = SearchResult(indices=indices, scores=scores, num_distance_computations=stats.num_distance_computations)
    return result.top(k)


def flat_topk_search(index: FlatIndex, query: np.ndarray, k: int, allowed: np.ndarray | None = None) -> SearchResult:
    """Exact top-k by scanning the flat index."""
    return index.search_topk(query, k, allowed=allowed)


def coarse_topk_search(index: CoarseBlockIndex, query: np.ndarray, k: int) -> SearchResult:
    """Block-filtered top-k over the coarse index."""
    return index.search_topk(query, k)
