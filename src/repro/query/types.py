"""Query types of the AlayaDB query processing engine.

Three query types retrieve critical tokens from the indexed KV cache
(Section 6 of the paper):

* **Top-k** — the traditional fixed-size query used by prior sparse-attention
  systems (RetrievalAttention, InfLLM, Quest, ...).
* **DIPR** — the Dynamic Inner-Product Range query: return every key whose
  inner product with the query is within ``beta`` of the maximum.  The number
  of returned tokens adapts per head and per task.
* **Filter** — either of the above restricted by an attribute predicate on
  the token position (used for partial-prefix context reuse).

``beta_from_alpha`` implements Theorem 1: the attention-score threshold
``a_ij >= alpha * max(a_is)`` is equivalent to the inner-product threshold
``q·k_j >= max(q·k_s) - beta`` with ``beta = -sqrt(d) * ln(alpha)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "QueryKind",
    "IndexKind",
    "TopKQuery",
    "DIPRQuery",
    "FilterPredicate",
    "QuerySpec",
    "beta_from_alpha",
    "alpha_from_beta",
]


class QueryKind:
    """String constants naming the query types."""

    TOP_K = "topk"
    DIPR = "dipr"
    FULL = "full"


class IndexKind:
    """String constants naming the index types (Table 4)."""

    COARSE = "coarse"
    FINE = "fine"
    FLAT = "flat"


def beta_from_alpha(alpha: float, head_dim: int) -> float:
    """Convert an attention-score proportion threshold to a DIPR ``beta``.

    ``alpha`` is the proportion of the maximum attention score below which a
    token stops being critical (Definition 1); ``beta`` is the corresponding
    inner-product slack (Definition 2, Theorem 1).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    return -math.sqrt(head_dim) * math.log(alpha)


def alpha_from_beta(beta: float, head_dim: int) -> float:
    """Inverse of :func:`beta_from_alpha`."""
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    return math.exp(-beta / math.sqrt(head_dim))


@dataclass(frozen=True)
class TopKQuery:
    """Retrieve a fixed number of critical tokens."""

    k: int
    ef: int | None = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def kind(self) -> str:
        return QueryKind.TOP_K


@dataclass(frozen=True)
class DIPRQuery:
    """Retrieve a dynamic number of critical tokens within ``beta`` of the max."""

    beta: float
    capacity_threshold: int = 32
    max_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")
        if self.capacity_threshold <= 0:
            raise ValueError(f"capacity_threshold must be positive, got {self.capacity_threshold}")

    @property
    def kind(self) -> str:
        return QueryKind.DIPR

    @classmethod
    def from_alpha(cls, alpha: float, head_dim: int, **kwargs) -> "DIPRQuery":
        """Build a DIPR query from an attention-proportion threshold."""
        return cls(beta=beta_from_alpha(alpha, head_dim), **kwargs)


@dataclass(frozen=True)
class FilterPredicate:
    """An attribute predicate over the token position.

    Partial-prefix reuse restricts the search to tokens whose position is
    below ``max_position`` (the length of the reused prefix).
    """

    max_position: int

    def __post_init__(self) -> None:
        if self.max_position <= 0:
            raise ValueError(f"max_position must be positive, got {self.max_position}")

    def allows(self, position: int) -> bool:
        return position < self.max_position


@dataclass(frozen=True)
class QuerySpec:
    """A fully-specified retrieval request handed to an execution plan."""

    query: TopKQuery | DIPRQuery
    predicate: FilterPredicate | None = None

    @property
    def kind(self) -> str:
        return self.query.kind

    @property
    def is_filtered(self) -> bool:
        return self.predicate is not None
