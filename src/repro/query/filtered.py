"""Attribute-filtered DIPRS for partial-prefix context reuse (Section 7.1).

When a new session reuses only a *prefix* of a stored context, the stored
index covers more tokens than the session may attend to.  Naively dropping
graph nodes that fail the position predicate disconnects the graph and
wrecks recall.  Following ACORN, the filtered search instead expands each
explored node's neighbourhood to its **2-hop neighbours**, then excludes the
candidates that fail the predicate — the traversal keeps its reach while the
result set respects the filter.
"""

from __future__ import annotations

import numpy as np

from ..index.base import SearchResult
from ..index.graph import NeighborGraph
from .dipr import (
    DIPRSearchStats,
    FrontierScratch,
    GroupDIPRSearchStats,
    append_hop_candidates,
    group_frontier_search,
)
from .types import FilterPredicate

__all__ = [
    "predicate_mask",
    "filtered_diprs_search",
    "filtered_diprs_search_group",
    "naive_filtered_diprs_search",
]


def predicate_mask(num_tokens: int, predicate: FilterPredicate | None) -> np.ndarray | None:
    """Boolean mask over token positions allowed by ``predicate`` (None = all)."""
    if predicate is None:
        return None
    mask = np.zeros(num_tokens, dtype=bool)
    mask[: min(predicate.max_position, num_tokens)] = True
    return mask


def _two_hop_neighbors(graph: NeighborGraph, node: int) -> np.ndarray:
    """The union of a node's neighbours and its neighbours' neighbours."""
    one_hop = graph.neighbors(node)
    if one_hop.shape[0] == 0:
        return one_hop
    pieces = [one_hop]
    for neighbor in one_hop:
        pieces.append(graph.neighbors(int(neighbor)))
    return np.unique(np.concatenate(pieces))


def filtered_diprs_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    query: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    predicate: FilterPredicate,
    capacity_threshold: int = 32,
    window_max_score: float | None = None,
    max_tokens: int | None = None,
) -> tuple[SearchResult, DIPRSearchStats]:
    """DIPRS with 2-hop expansion and attribute filtering.

    The candidate list only ever contains tokens satisfying ``predicate``;
    exploration, however, ranges over the unfiltered 2-hop neighbourhood so
    the search can cross regions of the graph dominated by filtered-out
    tokens (e.g. the stored context's own conversation suffix).
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    allowed = predicate_mask(graph.num_nodes, predicate)
    stats = DIPRSearchStats()

    visited = np.zeros(graph.num_nodes, dtype=bool)
    candidate_ids: list[int] = []
    candidate_scores: list[float] = []
    best_score = -np.inf if window_max_score is None else float(window_max_score)

    def append_batch(nodes: np.ndarray) -> None:
        # filtered-out tokens may not become candidates nor set the max: the
        # DIPR maximum is defined over the *reusable* tokens only.
        nonlocal best_score
        best_score = append_hop_candidates(
            nodes,
            vectors[nodes] @ query,
            beta=beta,
            capacity_threshold=capacity_threshold,
            allowed=allowed,
            candidate_ids=candidate_ids,
            candidate_scores=candidate_scores,
            best_score=best_score,
            stats=stats,
        )

    entry_points = np.atleast_1d(np.asarray(entry_points, dtype=np.int64))
    fresh_entries = []
    for entry in entry_points:
        entry = int(entry)
        if not visited[entry]:
            visited[entry] = True
            fresh_entries.append(entry)
    if fresh_entries:
        append_batch(np.asarray(fresh_entries, dtype=np.int64))
    if not candidate_ids:
        # every entry point was filtered out: fall back to the first allowed
        # positions so the traversal has somewhere to start.
        seeds = np.flatnonzero(allowed)[: max(1, capacity_threshold // 4)]
        seeds = seeds[~visited[seeds]]
        if seeds.shape[0]:
            visited[seeds] = True
            append_batch(seeds)

    cursor = 0
    while cursor < len(candidate_ids):
        node = candidate_ids[cursor]
        cursor += 1
        stats.num_hops += 1
        expansion = _two_hop_neighbors(graph, int(node))
        fresh = expansion[~visited[expansion]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        append_batch(fresh)

    indices = np.asarray(candidate_ids, dtype=np.int64)
    scores = np.asarray(candidate_scores, dtype=np.float32)
    threshold = best_score - beta
    keep = scores >= threshold
    indices, scores = indices[keep], scores[keep]
    order = np.argsort(-scores)
    if max_tokens is not None:
        order = order[:max_tokens]
    result = SearchResult(indices=indices[order], scores=scores[order], num_distance_computations=stats.num_distance_computations)
    return result, stats


def filtered_diprs_search_group(
    vectors: np.ndarray,
    graph: NeighborGraph,
    queries: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    predicate: FilterPredicate,
    capacity_threshold: int = 32,
    window_max_scores: np.ndarray | None = None,
    max_tokens: int | None = None,
    scratch: FrontierScratch | None = None,
) -> tuple[list[SearchResult], GroupDIPRSearchStats]:
    """Group-frontier variant of :func:`filtered_diprs_search`.

    One shared 2-hop-expanded walk serves every head of a GQA group (see
    :func:`repro.query.dipr.diprs_search_group` for the frontier policy);
    candidate lists, thresholds and the ``max_tokens`` cap stay per head, and
    only predicate-satisfying tokens may enter a candidate list or raise a
    head's best-so-far maximum.  When no head appends any entry point the
    walk reseeds from the first allowed positions, exactly like the scalar
    search.
    """
    allowed = predicate_mask(graph.num_nodes, predicate)

    def first_allowed_seeds() -> np.ndarray:
        return np.flatnonzero(allowed)[: max(1, capacity_threshold // 4)]

    return group_frontier_search(
        vectors,
        graph,
        queries,
        beta,
        entry_points,
        expand=lambda node: _two_hop_neighbors(graph, int(node)),
        capacity_threshold=capacity_threshold,
        window_max_scores=window_max_scores,
        allowed=allowed,
        max_tokens=max_tokens,
        entry_fallback=first_allowed_seeds,
        scratch=scratch,
    )


def naive_filtered_diprs_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    query: np.ndarray,
    beta: float,
    entry_points: np.ndarray | list[int],
    predicate: FilterPredicate,
    capacity_threshold: int = 32,
    window_max_score: float | None = None,
) -> tuple[SearchResult, DIPRSearchStats]:
    """The naive baseline: prune filtered-out nodes from the traversal itself.

    Used by the Figure 12 ablation to demonstrate why 2-hop expansion is
    needed — pruning nodes from the walk disconnects the graph and recall
    collapses as the reuse ratio drops.
    """
    from .dipr import diprs_search

    allowed = predicate_mask(graph.num_nodes, predicate)
    # restrict the adjacency to allowed→allowed edges
    lists = []
    for node in range(graph.num_nodes):
        if allowed[node]:
            neighbors = graph.neighbors(node)
            lists.append([int(n) for n in neighbors if allowed[n]])
        else:
            lists.append([])
    pruned_graph = NeighborGraph.from_lists(lists)
    entry_points = [int(e) for e in np.atleast_1d(entry_points) if allowed[int(e)]]
    if not entry_points:
        entry_points = [int(np.flatnonzero(allowed)[0])]
    return diprs_search(
        vectors,
        pruned_graph,
        query,
        beta,
        entry_points,
        capacity_threshold=capacity_threshold,
        window_max_score=window_max_score,
        allowed=allowed,
    )
