"""Common interfaces for vector indexes.

All AlayaDB indexes operate on *key vectors* under the **inner-product**
similarity (a larger ``q · k`` means a more important token, because it is the
pre-softmax attention logit).  Three index families exist, matching Table 4 of
the paper:

* flat — a scan over all keys (`repro.index.flat`),
* fine-grained — graph indexes over individual keys (`hnsw`, `roargraph`),
* coarse-grained — block indexes over groups of adjacent tokens (`coarse`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import DimensionMismatchError, IndexNotBuiltError

__all__ = ["SearchResult", "VectorIndex", "validate_query"]


@dataclass
class SearchResult:
    """Result of a similarity search.

    ``indices`` are token positions (row ids into the indexed key matrix),
    ``scores`` the corresponding inner products, both sorted by descending
    score.  ``num_distance_computations`` counts how many inner products the
    search evaluated — the work metric used in latency modelling.
    """

    indices: np.ndarray
    scores: np.ndarray
    num_distance_computations: int = 0

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def top(self, k: int) -> "SearchResult":
        """Restrict the result to its best ``k`` entries."""
        return SearchResult(
            indices=self.indices[:k].copy(),
            scores=self.scores[:k].copy(),
            num_distance_computations=self.num_distance_computations,
        )


def validate_query(query: np.ndarray, dim: int) -> np.ndarray:
    """Check a query vector shape and return it as float32."""
    query = np.asarray(query, dtype=np.float32)
    if query.ndim != 1 or query.shape[0] != dim:
        raise DimensionMismatchError(f"expected query of shape ({dim},), got {query.shape}")
    return query


class VectorIndex(abc.ABC):
    """Abstract base class of all vector indexes."""

    def __init__(self) -> None:
        self._vectors: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self, vectors: np.ndarray, **kwargs) -> None:
        """Build the index over ``vectors`` of shape ``(n, dim)``."""

    @property
    def is_built(self) -> bool:
        return self._vectors is not None

    def _require_built(self) -> np.ndarray:
        if self._vectors is None:
            raise IndexNotBuiltError(f"{type(self).__name__} has not been built")
        return self._vectors

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    @property
    def vectors(self) -> np.ndarray:
        """The indexed key vectors, shape ``(n, dim)``."""
        return self._require_built()

    @property
    def num_vectors(self) -> int:
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        return 0 if self._vectors is None else int(self._vectors.shape[1])

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the index structure + vectors."""
        return 0 if self._vectors is None else int(self._vectors.nbytes)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def search_topk(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """Return the ``k`` keys with the largest inner product to ``query``."""

    def exact_topk(self, query: np.ndarray, k: int) -> SearchResult:
        """Brute-force reference top-k, used for recall measurements."""
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        scores = vectors @ query
        k = min(k, scores.shape[0])
        order = np.argpartition(-scores, k - 1)[:k]
        order = order[np.argsort(-scores[order])]
        return SearchResult(
            indices=order.astype(np.int64),
            scores=scores[order].astype(np.float32),
            num_distance_computations=int(scores.shape[0]),
        )
