"""Flat (scan) index.

Scans every key to find critical tokens.  Less efficient than graph indexes
when few critical tokens are needed, but sequential memory access makes it the
better choice when many tokens must be returned — which is why the AlayaDB
optimizer routes *layer 1* queries (which need a large number of critical
tokens, see Figure 5 of the paper) to the flat index.
"""

from __future__ import annotations

import numpy as np

from .base import SearchResult, VectorIndex, validate_query

__all__ = ["FlatIndex"]


class FlatIndex(VectorIndex):
    """Brute-force inner-product index supporting top-k, range and filter queries."""

    def build(self, vectors: np.ndarray, **kwargs) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"expected (n, dim) vectors, got shape {vectors.shape}")
        self._vectors = vectors

    def append(self, vectors: np.ndarray) -> None:
        """Append new rows (used by late materialization of fresh tokens)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if self._vectors is None:
            self.build(vectors)
            return
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)

    def _topk_result(self, scores: np.ndarray, k: int) -> SearchResult:
        """Top-k result from one query's (possibly masked) score vector."""
        k = min(k, scores.shape[0])
        order = np.argpartition(-scores, k - 1)[:k]
        order = order[np.argsort(-scores[order])]
        valid = np.isfinite(scores[order])
        order = order[valid]
        return SearchResult(
            indices=order.astype(np.int64),
            scores=scores[order].astype(np.float32),
            num_distance_computations=int(scores.shape[0]),
        )

    def _range_result(self, scores: np.ndarray, beta: float) -> SearchResult:
        """DIPR result from one query's (possibly masked) score vector."""
        if not np.isfinite(scores).any():
            return SearchResult(
                indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float32),
                num_distance_computations=int(scores.shape[0]),
            )
        threshold = scores.max() - beta
        selected = np.flatnonzero(scores >= threshold)
        order = selected[np.argsort(-scores[selected])]
        return SearchResult(
            indices=order.astype(np.int64),
            scores=scores[order].astype(np.float32),
            num_distance_computations=int(scores.shape[0]),
        )

    def _batch_scores(self, queries: np.ndarray, allowed: np.ndarray | None) -> np.ndarray:
        """Score matrix ``(g, n)`` of a query batch, via one shared scan."""
        vectors = self._require_built()
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != vectors.shape[1]:
            raise ValueError(
                f"expected queries of shape (g, {vectors.shape[1]}), got {queries.shape}"
            )
        scores = queries @ vectors.T
        if allowed is not None:
            scores = np.where(allowed[None, :], scores, -np.inf)
        return scores

    def search_topk(self, query: np.ndarray, k: int, allowed: np.ndarray | None = None, **kwargs) -> SearchResult:
        """Exact top-k by full scan.  ``allowed`` optionally masks positions."""
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        scores = vectors @ query
        if allowed is not None:
            scores = np.where(allowed, scores, -np.inf)
        return self._topk_result(scores, k)

    def search_topk_batch(
        self, queries: np.ndarray, k: int, allowed: np.ndarray | None = None
    ) -> list[SearchResult]:
        """Exact top-k for a batch of queries sharing a single scan.

        ``queries`` is ``(g, dim)`` — e.g. the query heads of one GQA group —
        and the score matrix comes from one ``(g, d) @ (d, n)`` matmul instead
        of ``g`` separate scans.  Result ``i`` matches ``search_topk`` on row
        ``i``; ``num_distance_computations`` still counts the per-query scan.
        """
        scores = self._batch_scores(queries, allowed)
        return [self._topk_result(row, k) for row in scores]

    def search_range(
        self, query: np.ndarray, beta: float, allowed: np.ndarray | None = None
    ) -> SearchResult:
        """Exact DIPR: all keys with ``q·k >= max(q·k) - beta`` (full scan).

        This is the ground-truth DIPR result the graph-based DIPRS algorithm
        approximates; it is also the execution path the optimizer selects for
        the flat index.
        """
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        scores = vectors @ query
        if allowed is not None:
            scores = np.where(allowed, scores, -np.inf)
        return self._range_result(scores, beta)

    def search_range_batch(
        self, queries: np.ndarray, beta: float, allowed: np.ndarray | None = None
    ) -> list[SearchResult]:
        """Exact DIPR for a batch of queries sharing a single scan.

        The batched sibling of :meth:`search_range` (see
        :meth:`search_topk_batch` for the sharing scheme).  The per-row
        threshold/sort work is vectorized across the batch: one mask, one
        gather and one ``lexsort`` over all selected entries replace a
        per-row ``flatnonzero`` + ``argsort`` loop.
        """
        scores = self._batch_scores(queries, allowed)
        num_queries, n = scores.shape
        max_per_row = scores.max(axis=1)
        finite = np.isfinite(max_per_row)
        keep = scores >= (max_per_row - beta)[:, None]
        keep &= finite[:, None]
        row_ids, cols = np.nonzero(keep)
        sel_scores = scores[row_ids, cols]
        # within each row, order by score descending (rows stay row-major)
        order = np.lexsort((-sel_scores, row_ids))
        cols, sel_scores = cols[order], sel_scores[order]
        counts = np.bincount(row_ids, minlength=num_queries)
        bounds = np.cumsum(counts)[:-1]
        return [
            SearchResult(
                indices=indices.astype(np.int64),
                scores=row_scores.astype(np.float32),
                num_distance_computations=n,
            )
            for indices, row_scores in zip(np.split(cols, bounds), np.split(sel_scores, bounds))
        ]
