"""Flat (scan) index.

Scans every key to find critical tokens.  Less efficient than graph indexes
when few critical tokens are needed, but sequential memory access makes it the
better choice when many tokens must be returned — which is why the AlayaDB
optimizer routes *layer 1* queries (which need a large number of critical
tokens, see Figure 5 of the paper) to the flat index.
"""

from __future__ import annotations

import numpy as np

from .base import SearchResult, VectorIndex, validate_query

__all__ = ["FlatIndex"]


class FlatIndex(VectorIndex):
    """Brute-force inner-product index supporting top-k, range and filter queries."""

    def build(self, vectors: np.ndarray, **kwargs) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"expected (n, dim) vectors, got shape {vectors.shape}")
        self._vectors = vectors

    def append(self, vectors: np.ndarray) -> None:
        """Append new rows (used by late materialization of fresh tokens)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        if self._vectors is None:
            self.build(vectors)
            return
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)

    def search_topk(self, query: np.ndarray, k: int, allowed: np.ndarray | None = None, **kwargs) -> SearchResult:
        """Exact top-k by full scan.  ``allowed`` optionally masks positions."""
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        scores = vectors @ query
        if allowed is not None:
            scores = np.where(allowed, scores, -np.inf)
        k = min(k, scores.shape[0])
        order = np.argpartition(-scores, k - 1)[:k]
        order = order[np.argsort(-scores[order])]
        valid = np.isfinite(scores[order])
        order = order[valid]
        return SearchResult(
            indices=order.astype(np.int64),
            scores=scores[order].astype(np.float32),
            num_distance_computations=int(vectors.shape[0]),
        )

    def search_range(
        self, query: np.ndarray, beta: float, allowed: np.ndarray | None = None
    ) -> SearchResult:
        """Exact DIPR: all keys with ``q·k >= max(q·k) - beta`` (full scan).

        This is the ground-truth DIPR result the graph-based DIPRS algorithm
        approximates; it is also the execution path the optimizer selects for
        the flat index.
        """
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        scores = vectors @ query
        if allowed is not None:
            scores = np.where(allowed, scores, -np.inf)
        if not np.isfinite(scores).any():
            return SearchResult(
                indices=np.empty(0, dtype=np.int64),
                scores=np.empty(0, dtype=np.float32),
                num_distance_computations=int(vectors.shape[0]),
            )
        threshold = scores.max() - beta
        selected = np.flatnonzero(scores >= threshold)
        order = selected[np.argsort(-scores[selected])]
        return SearchResult(
            indices=order.astype(np.int64),
            scores=scores[order].astype(np.float32),
            num_distance_computations=int(vectors.shape[0]),
        )
