"""RoarGraph: a projected bipartite graph index for OOD queries.

RetrievalAttention (and AlayaDB) observed that decode-time query vectors are
*out of distribution* with respect to the key vectors, so a graph built only
from key-to-key proximity navigates poorly.  RoarGraph instead starts from a
bipartite query→key kNN graph built from a sample of real query vectors and
projects it onto the key side, then enhances connectivity.

Construction stages (Section 7.2 of the paper):

1. **q→k kNN construction** — each sampled query vector is linked to its
   exact nearest key vectors (:func:`repro.index.knn_graph.cross_knn`).
2. **Bipartite projection** — keys that co-occur in a query's neighbour list
   are connected to each other, so edges reflect "keys that answer the same
   query" rather than raw key proximity.
3. **Connectivity enhancement** — a sequential backbone (token *i* ↔ *i±1*)
   plus optional key-to-key kNN edges guarantee the graph is connected and
   navigable even for keys no sampled query reached.

The GQA-based index sharing and the GPU-accelerated build path live in
``repro.index.builder``; this class is the single-index data structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SearchResult, VectorIndex, validate_query
from .graph import NeighborGraph, beam_search
from .knn_graph import cross_knn, exact_knn

__all__ = ["RoarGraphConfig", "RoarGraphIndex"]


@dataclass(frozen=True)
class RoarGraphConfig:
    """Construction parameters of a RoarGraph index."""

    num_query_links: int = 8
    """How many keys each sampled query links to in the bipartite stage."""

    max_degree: int = 32
    """Maximum out-degree of a key node after projection and pruning."""

    backbone_window: int = 1
    """Each key is linked to its ``backbone_window`` sequential neighbours on
    both sides, guaranteeing connectivity over the token sequence."""

    enhancement_links: int = 8
    """Extra (bidirectional) key-to-key kNN edges per node (0 disables the
    enhancement pass)."""

    diversity_prune: bool = True
    """Apply angular-diversity pruning (robust prune) when a node exceeds
    ``max_degree``: a candidate edge is dropped when an already-kept
    neighbour is closer to the candidate than the node itself, which spreads
    edges across the cluster instead of concentrating them on a few
    high-norm hubs."""

    seed: int = 0


class RoarGraphIndex(VectorIndex):
    """Fine-grained graph index specialised for out-of-distribution queries."""

    def __init__(self, config: RoarGraphConfig | None = None):
        super().__init__()
        self.config = config or RoarGraphConfig()
        self._graph: NeighborGraph | None = None
        self._entry_point: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray, query_sample: np.ndarray | None = None, **kwargs) -> None:
        """Build the index over key ``vectors`` using ``query_sample``.

        ``query_sample`` holds historical query vectors of the same head (or
        head group, when GQA index sharing is enabled); when omitted, the key
        vectors themselves are used, which degrades the OOD benefit but keeps
        the index functional.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"expected (n, dim) key vectors, got {vectors.shape}")
        self._vectors = vectors
        n = vectors.shape[0]
        config = self.config
        adjacency: list[set[int]] = [set() for _ in range(n)]

        # stage 1 + 2: bipartite q->k kNN, projected onto the key side
        if query_sample is None or len(query_sample) == 0:
            query_sample = vectors
        query_sample = np.asarray(query_sample, dtype=np.float32)
        links = cross_knn(query_sample, vectors, min(config.num_query_links, n))
        for neighbor_list in links:
            anchor = int(neighbor_list[0])
            for other in neighbor_list[1:]:
                other = int(other)
                adjacency[anchor].add(other)
                adjacency[other].add(anchor)

        # stage 3a: sequential backbone for connectivity
        for node in range(n):
            for offset in range(1, config.backbone_window + 1):
                if node + offset < n:
                    adjacency[node].add(node + offset)
                    adjacency[node + offset].add(node)

        # stage 3b: key-to-key kNN enhancement (bidirectional edges)
        if config.enhancement_links > 0 and n > 1:
            knn = exact_knn(vectors, min(config.enhancement_links, n - 1))
            for node in range(n):
                for neighbor in knn[node]:
                    adjacency[node].add(int(neighbor))
                    adjacency[int(neighbor)].add(node)

        # prune to max_degree
        pruned: list[list[int]] = []
        for node in range(n):
            neighbors = np.fromiter(adjacency[node], dtype=np.int64, count=len(adjacency[node]))
            if neighbors.shape[0] > config.max_degree:
                neighbors = self._prune_neighbors(vectors, node, neighbors)
            pruned.append([int(x) for x in neighbors])
        self._graph = NeighborGraph.from_lists(pruned)

        # the entry point is the key with the largest norm: under inner
        # product it is the most likely global maximiser and gives the search
        # a high-score start.
        norms = np.linalg.norm(vectors, axis=1)
        self._entry_point = int(np.argmax(norms))

    def _prune_neighbors(self, vectors: np.ndarray, node: int, neighbors: np.ndarray) -> np.ndarray:
        """Reduce a node's candidate edges to ``max_degree``.

        With ``diversity_prune`` enabled this is the robust-prune rule used by
        NSG/DiskANN-style graphs: walk the candidates in descending
        inner-product order and drop a candidate when an already-kept
        neighbour is closer to it than the node itself.  Otherwise simply keep
        the ``max_degree`` highest-inner-product candidates.
        """
        config = self.config
        scores = vectors[neighbors] @ vectors[node]
        order = np.argsort(-scores)
        if not config.diversity_prune:
            return neighbors[order[: config.max_degree]]
        kept: list[int] = []
        skipped: list[int] = []
        for position in order:
            candidate = int(neighbors[position])
            if len(kept) >= config.max_degree:
                break
            candidate_to_node = float(scores[position])
            diverse = True
            for existing in kept:
                if float(vectors[candidate] @ vectors[existing]) > candidate_to_node:
                    diverse = False
                    break
            if diverse:
                kept.append(candidate)
            else:
                skipped.append(candidate)
        for candidate in skipped:
            if len(kept) >= config.max_degree:
                break
            kept.append(candidate)
        return np.asarray(kept, dtype=np.int64)

    # ------------------------------------------------------------------
    # persistence (versioned save/load, see repro.index.serialization)
    # ------------------------------------------------------------------
    def save(self, path) -> "RoarGraphIndex":
        """Persist this built index to ``path`` (versioned ``.npz`` format)."""
        from .serialization import save_roargraph

        save_roargraph(self, path)
        return self

    @classmethod
    def load(cls, path) -> "RoarGraphIndex":
        """Load an index saved by :meth:`save`; no rebuild pass runs —
        searches over the loaded index are bit-identical to the original."""
        from .serialization import load_roargraph

        return load_roargraph(path)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> NeighborGraph:
        if self._graph is None:
            self._require_built()
        return self._graph

    @property
    def entry_point(self) -> int:
        return self._entry_point

    @property
    def memory_bytes(self) -> int:
        base = super().memory_bytes
        if self._graph is not None:
            base += self._graph.memory_bytes
        return base

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_topk(self, query: np.ndarray, k: int, ef: int | None = None, **kwargs) -> SearchResult:
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        ef = max(ef or k * 4, k)
        indices, scores, stats = beam_search(vectors, self.graph, query, ef, [self._entry_point])
        result = SearchResult(indices=indices, scores=scores, num_distance_computations=stats.num_distance_computations)
        return result.top(k)

    def recall_at_k(self, queries: np.ndarray, k: int, ef: int | None = None) -> float:
        """Mean top-k recall of the graph search against brute force."""
        queries = np.asarray(queries, dtype=np.float32)
        hits = 0
        total = 0
        for query in queries:
            truth = set(self.exact_topk(query, k).indices.tolist())
            found = set(self.search_topk(query, k, ef=ef).indices.tolist())
            hits += len(truth & found)
            total += len(truth)
        return hits / max(total, 1)
