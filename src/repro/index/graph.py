"""Compact adjacency storage and beam search shared by the graph indexes.

Graph indexes (HNSW layer 0, RoarGraph) and the DIPRS query algorithm all
traverse a directed neighbour graph over the key vectors.  ``NeighborGraph``
stores that graph in CSR form (one int32 array of neighbour ids plus an
offsets array) so neighbour lookups are a cheap slice and the whole structure
is a couple of NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NeighborGraph", "beam_search", "BeamSearchStats"]


class NeighborGraph:
    """A directed neighbour graph over ``n`` nodes in CSR layout."""

    def __init__(self, neighbor_ids: np.ndarray, offsets: np.ndarray):
        self.neighbor_ids = np.asarray(neighbor_ids, dtype=np.int32)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets[0] != 0:
            raise ValueError("offsets must be 1-D and start at 0")
        if int(self.offsets[-1]) != self.neighbor_ids.shape[0]:
            raise ValueError("offsets[-1] must equal len(neighbor_ids)")

    @classmethod
    def from_lists(cls, adjacency: list[list[int]] | list[np.ndarray]) -> "NeighborGraph":
        """Build from a python list of per-node neighbour lists."""
        offsets = np.zeros(len(adjacency) + 1, dtype=np.int64)
        for node, neighbors in enumerate(adjacency):
            offsets[node + 1] = offsets[node] + len(neighbors)
        flat = np.empty(int(offsets[-1]), dtype=np.int32)
        for node, neighbors in enumerate(adjacency):
            flat[offsets[node] : offsets[node + 1]] = np.asarray(neighbors, dtype=np.int32)
        return cls(flat, offsets)

    @property
    def num_nodes(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        return int(self.neighbor_ids.shape[0])

    @property
    def memory_bytes(self) -> int:
        return int(self.neighbor_ids.nbytes + self.offsets.nbytes)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node`` (a zero-copy slice)."""
        return self.neighbor_ids[self.offsets[node] : self.offsets[node + 1]]

    def degree(self, node: int) -> int:
        return int(self.offsets[node + 1] - self.offsets[node])

    def mean_degree(self) -> float:
        return self.num_edges / max(self.num_nodes, 1)

    def to_lists(self) -> list[list[int]]:
        """Materialise back into per-node python lists (for tests/rewrites)."""
        return [list(self.neighbors(node)) for node in range(self.num_nodes)]


@dataclass
class BeamSearchStats:
    """Work counters of one beam search."""

    num_distance_computations: int = 0
    num_hops: int = 0


def beam_search(
    vectors: np.ndarray,
    graph: NeighborGraph,
    query: np.ndarray,
    ef: int,
    entry_points: np.ndarray | list[int],
    allowed: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, BeamSearchStats]:
    """Best-first beam search under inner-product similarity.

    Returns ``(indices, scores, stats)`` of up to ``ef`` candidates sorted by
    descending inner product.  ``allowed`` is an optional boolean mask over
    nodes; disallowed nodes are traversed (to keep the graph connected, as in
    ACORN-style filtered search) but never returned.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    query = np.asarray(query, dtype=np.float32)
    num_nodes = graph.num_nodes
    stats = BeamSearchStats()

    entry_points = np.atleast_1d(np.asarray(entry_points, dtype=np.int64))
    visited = np.zeros(num_nodes, dtype=bool)
    visited[entry_points] = True
    entry_scores = vectors[entry_points] @ query
    stats.num_distance_computations += int(entry_points.shape[0])

    # candidate frontier (max-heap emulated with negated scores in sorted lists)
    frontier_ids = list(entry_points)
    frontier_scores = list(entry_scores)
    # result pool: keep the best `ef` seen so far
    pool_ids = list(entry_points)
    pool_scores = list(entry_scores)

    def pool_worst() -> float:
        if len(pool_scores) < ef:
            return -np.inf
        return min(pool_scores)

    while frontier_ids:
        best_pos = int(np.argmax(frontier_scores))
        node = frontier_ids.pop(best_pos)
        node_score = frontier_scores.pop(best_pos)
        if node_score < pool_worst() and len(pool_scores) >= ef:
            break
        stats.num_hops += 1
        neighbors = graph.neighbors(int(node))
        fresh = neighbors[~visited[neighbors]]
        if fresh.shape[0] == 0:
            continue
        visited[fresh] = True
        scores = vectors[fresh] @ query
        stats.num_distance_computations += int(fresh.shape[0])
        threshold = pool_worst()
        for neighbor, score in zip(fresh, scores):
            if score > threshold or len(pool_scores) < ef:
                frontier_ids.append(int(neighbor))
                frontier_scores.append(float(score))
                pool_ids.append(int(neighbor))
                pool_scores.append(float(score))
        if len(pool_scores) > 2 * ef:
            order = np.argsort(pool_scores)[::-1][:ef]
            pool_ids = [pool_ids[i] for i in order]
            pool_scores = [pool_scores[i] for i in order]

    pool_indices = np.asarray(pool_ids, dtype=np.int64)
    pool_score_array = np.asarray(pool_scores, dtype=np.float32)
    if allowed is not None:
        keep = allowed[pool_indices]
        pool_indices = pool_indices[keep]
        pool_score_array = pool_score_array[keep]
    order = np.argsort(-pool_score_array)[:ef]
    return pool_indices[order], pool_score_array[order], stats
