"""Vector index substrate: flat, fine-grained (graph) and coarse (block) indexes."""

from .base import SearchResult, VectorIndex, validate_query
from .builder import BuildReport, ContextIndexBuilder, IndexBuildConfig, LayerIndexes
from .coarse import BlockSummary, CoarseBlockIndex
from .flat import FlatIndex
from .graph import BeamSearchStats, NeighborGraph, beam_search
from .hnsw import HNSWIndex
from .knn_graph import cross_knn, exact_knn, nn_descent_knn
from .roargraph import RoarGraphConfig, RoarGraphIndex
from .serialization import (
    INDEX_FORMAT_VERSION,
    deserialize_context_indexes,
    load_coarse,
    load_roargraph,
    save_coarse,
    save_roargraph,
    serialize_context_indexes,
)

__all__ = [
    "BeamSearchStats",
    "BlockSummary",
    "BuildReport",
    "CoarseBlockIndex",
    "ContextIndexBuilder",
    "FlatIndex",
    "HNSWIndex",
    "INDEX_FORMAT_VERSION",
    "IndexBuildConfig",
    "LayerIndexes",
    "NeighborGraph",
    "RoarGraphConfig",
    "RoarGraphIndex",
    "SearchResult",
    "VectorIndex",
    "beam_search",
    "cross_knn",
    "deserialize_context_indexes",
    "exact_knn",
    "load_coarse",
    "load_roargraph",
    "nn_descent_knn",
    "save_coarse",
    "save_roargraph",
    "serialize_context_indexes",
    "validate_query",
]
