"""Vector index substrate: flat, fine-grained (graph) and coarse (block) indexes."""

from .base import SearchResult, VectorIndex, validate_query
from .builder import BuildReport, ContextIndexBuilder, IndexBuildConfig, LayerIndexes
from .coarse import BlockSummary, CoarseBlockIndex
from .flat import FlatIndex
from .graph import BeamSearchStats, NeighborGraph, beam_search
from .hnsw import HNSWIndex
from .knn_graph import cross_knn, exact_knn, nn_descent_knn
from .roargraph import RoarGraphConfig, RoarGraphIndex

__all__ = [
    "BeamSearchStats",
    "BlockSummary",
    "BuildReport",
    "CoarseBlockIndex",
    "ContextIndexBuilder",
    "FlatIndex",
    "HNSWIndex",
    "IndexBuildConfig",
    "LayerIndexes",
    "NeighborGraph",
    "RoarGraphConfig",
    "RoarGraphIndex",
    "SearchResult",
    "VectorIndex",
    "beam_search",
    "cross_knn",
    "exact_knn",
    "nn_descent_knn",
    "validate_query",
]
