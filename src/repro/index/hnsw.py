"""HNSW index for inner-product search.

A standard hierarchical navigable small world graph: an exponentially thinning
stack of layers used for greedy descent, and a beam search (``ef``) on the
bottom layer.  AlayaDB uses graph indexes of this family as the fine-grained
index type; RoarGraph (see ``roargraph.py``) is the variant specialised for
out-of-distribution query workloads, but HNSW remains useful as a general
fine-grained index and as a comparison point in the index-type benchmarks.
"""

from __future__ import annotations

import numpy as np

from .base import SearchResult, VectorIndex, validate_query
from .graph import NeighborGraph, beam_search

__all__ = ["HNSWIndex"]


class HNSWIndex(VectorIndex):
    """Hierarchical navigable small world graph under inner-product similarity."""

    def __init__(self, max_degree: int = 16, ef_construction: int = 64, seed: int = 0):
        super().__init__()
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self.seed = seed
        self._layers: list[dict[int, list[int]]] = []
        self._entry_point: int = 0
        self._node_levels: np.ndarray | None = None
        self._bottom_graph: NeighborGraph | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray, **kwargs) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"expected (n, dim), got {vectors.shape}")
        self._vectors = vectors
        n = vectors.shape[0]
        rng = np.random.default_rng(self.seed)
        level_multiplier = 1.0 / np.log(max(self.max_degree, 2))
        self._node_levels = np.floor(-np.log(rng.random(n)) * level_multiplier).astype(np.int64)
        max_level = int(self._node_levels.max()) if n else 0
        self._layers = [dict() for _ in range(max_level + 1)]
        self._entry_point = int(np.argmax(self._node_levels))

        for node in range(n):
            self._insert(node)
        bottom = [self._layers[0].get(node, []) for node in range(n)]
        self._bottom_graph = NeighborGraph.from_lists(bottom)

    def _search_layer(self, query: np.ndarray, entry: int, ef: int, layer: int) -> list[tuple[float, int]]:
        """Beam search restricted to one layer's adjacency dict."""
        vectors = self._vectors
        adjacency = self._layers[layer]
        visited = {entry}
        entry_score = float(vectors[entry] @ query)
        candidates = [(entry_score, entry)]
        results = [(entry_score, entry)]
        while candidates:
            best_idx = max(range(len(candidates)), key=lambda i: candidates[i][0])
            score, node = candidates.pop(best_idx)
            worst = min(results)[0] if len(results) >= ef else -np.inf
            if score < worst and len(results) >= ef:
                break
            for neighbor in adjacency.get(node, []):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                neighbor_score = float(vectors[neighbor] @ query)
                if len(results) < ef or neighbor_score > min(results)[0]:
                    candidates.append((neighbor_score, neighbor))
                    results.append((neighbor_score, neighbor))
                    if len(results) > ef:
                        results.remove(min(results))
        return sorted(results, reverse=True)

    def _select_neighbors(self, candidates: list[tuple[float, int]], m: int) -> list[int]:
        return [node for _, node in sorted(candidates, reverse=True)[:m]]

    def _insert(self, node: int) -> None:
        level = int(self._node_levels[node])
        query = self._vectors[node]
        entry = self._entry_point
        top_level = len(self._layers) - 1

        if node == entry:
            for layer in range(level + 1):
                self._layers[layer].setdefault(node, [])
            return

        # greedy descent through the layers above the node's level
        for layer in range(top_level, level, -1):
            if not self._layers[layer]:
                continue
            found = self._search_layer(query, entry, 1, layer)
            if found:
                entry = found[0][1]

        for layer in range(min(level, top_level), -1, -1):
            if not self._layers[layer]:
                self._layers[layer].setdefault(node, [])
                continue
            candidates = self._search_layer(query, entry, self.ef_construction, layer)
            max_degree = self.max_degree if layer > 0 else self.max_degree * 2
            neighbors = self._select_neighbors(candidates, max_degree)
            self._layers[layer][node] = list(neighbors)
            for neighbor in neighbors:
                links = self._layers[layer].setdefault(neighbor, [])
                links.append(node)
                if len(links) > max_degree:
                    scores = self._vectors[links] @ self._vectors[neighbor]
                    order = np.argsort(-scores)[:max_degree]
                    self._layers[layer][neighbor] = [links[i] for i in order]
            if candidates:
                entry = candidates[0][1]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    @property
    def bottom_graph(self) -> NeighborGraph:
        """The layer-0 graph in CSR form (consumed by DIPRS and filtered search)."""
        if self._bottom_graph is None:
            self._require_built()
        return self._bottom_graph

    @property
    def entry_point(self) -> int:
        return self._entry_point

    @property
    def memory_bytes(self) -> int:
        base = super().memory_bytes
        if self._bottom_graph is not None:
            base += self._bottom_graph.memory_bytes
        for layer in self._layers[1:]:
            base += sum(4 * len(links) for links in layer.values())
        return base

    def descend(self, query: np.ndarray) -> int:
        """Greedy descent through upper layers; returns the layer-0 entry point."""
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        entry = self._entry_point
        for layer in range(len(self._layers) - 1, 0, -1):
            if not self._layers[layer]:
                continue
            found = self._search_layer(query, entry, 1, layer)
            if found:
                entry = found[0][1]
        return entry

    def search_topk(self, query: np.ndarray, k: int, ef: int | None = None, **kwargs) -> SearchResult:
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        ef = max(ef or k * 4, k)
        entry = self.descend(query)
        indices, scores, stats = beam_search(vectors, self.bottom_graph, query, ef, [entry])
        result = SearchResult(indices=indices, scores=scores, num_distance_computations=stats.num_distance_computations)
        return result.top(k)
