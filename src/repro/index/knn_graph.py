"""kNN graph construction.

RoarGraph construction (Section 7.2 of the paper) starts from a
query-to-key exact kNN graph.  The paper accelerates this stage with NVIDIA
cuVS on GPU; here the exact construction is a blocked matrix multiplication
and an approximate NN-descent variant is provided for large inputs.  The
device simulator models the GPU speedup on top of either routine.
"""

from __future__ import annotations

import numpy as np

__all__ = ["exact_knn", "cross_knn", "nn_descent_knn"]


def _topk_rows(scores: np.ndarray, k: int) -> np.ndarray:
    """Per-row top-k column indices by descending score."""
    k = min(k, scores.shape[1])
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-row_scores, axis=1)
    return np.take_along_axis(part, order, axis=1)


def exact_knn(vectors: np.ndarray, k: int, block_size: int = 1024, exclude_self: bool = True) -> np.ndarray:
    """Exact kNN of every vector against the full set (inner product).

    Returns an ``(n, k)`` int array of neighbour ids.  Work is blocked so the
    full ``n x n`` score matrix is never materialised.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    n = vectors.shape[0]
    k = min(k, n - 1 if exclude_self else n)
    neighbors = np.empty((n, k), dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        scores = vectors[start:stop] @ vectors.T
        if exclude_self:
            rows = np.arange(start, stop)
            scores[np.arange(stop - start), rows] = -np.inf
        neighbors[start:stop] = _topk_rows(scores, k)
    return neighbors


def cross_knn(queries: np.ndarray, base: np.ndarray, k: int, block_size: int = 1024) -> np.ndarray:
    """Exact kNN of each query vector against the base (key) vectors.

    This is stage (i) of RoarGraph construction: linking each sampled query
    to its nearest keys.  Returns ``(num_queries, k)`` base ids.
    """
    queries = np.asarray(queries, dtype=np.float32)
    base = np.asarray(base, dtype=np.float32)
    k = min(k, base.shape[0])
    neighbors = np.empty((queries.shape[0], k), dtype=np.int64)
    for start in range(0, queries.shape[0], block_size):
        stop = min(start + block_size, queries.shape[0])
        scores = queries[start:stop] @ base.T
        neighbors[start:stop] = _topk_rows(scores, k)
    return neighbors


def nn_descent_knn(
    vectors: np.ndarray,
    k: int,
    num_iterations: int = 8,
    sample_rate: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Approximate kNN graph via NN-descent (Dong et al.), inner product.

    Starts from a random neighbour assignment and iteratively improves it by
    comparing each point with its neighbours' neighbours.  Good enough for
    graph construction where exact kNN would be too slow.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    n = vectors.shape[0]
    k = min(k, n - 1)
    rng = np.random.default_rng(seed)

    neighbor_ids = np.empty((n, k), dtype=np.int64)
    neighbor_scores = np.empty((n, k), dtype=np.float32)
    for node in range(n):
        candidates = rng.choice(n - 1, size=k, replace=False)
        candidates[candidates >= node] += 1
        neighbor_ids[node] = candidates
        neighbor_scores[node] = vectors[candidates] @ vectors[node]

    for _ in range(num_iterations):
        updated = 0
        for node in range(n):
            current = neighbor_ids[node]
            # candidate pool = neighbours of neighbours (optionally sampled)
            pool = neighbor_ids[current].reshape(-1)
            if sample_rate < 1.0:
                keep = rng.random(pool.shape[0]) < sample_rate
                pool = pool[keep]
            pool = np.unique(pool)
            pool = pool[pool != node]
            if pool.shape[0] == 0:
                continue
            scores = vectors[pool] @ vectors[node]
            merged_ids = np.concatenate([current, pool])
            merged_scores = np.concatenate([neighbor_scores[node], scores])
            # dedupe, keep best k
            unique_ids, first_pos = np.unique(merged_ids, return_index=True)
            unique_scores = merged_scores[first_pos]
            order = np.argsort(-unique_scores)[:k]
            new_ids = unique_ids[order]
            if not np.array_equal(np.sort(new_ids), np.sort(current)):
                updated += 1
            neighbor_ids[node] = new_ids
            neighbor_scores[node] = unique_scores[order]
        if updated == 0:
            break
    return neighbor_ids
