"""Context index construction (Section 7.2 of the paper).

``ContextIndexBuilder`` turns the KV cache of a long context into the set of
fine-grained RoarGraph indexes AlayaDB searches at decode time.  It implements
the paper's two construction optimizations:

* **GQA-based index sharing** — with grouped-query attention, the query heads
  in one group all attend to the same KV head, so one RoarGraph per *KV head*
  (built from query vectors sampled across the whole group) replaces one
  RoarGraph per *query head*, reducing both build time and index memory by
  ``num_query_heads / num_kv_heads`` (4x for Llama-3-8B).
* **GPU-accelerated kNN construction** — the q→k kNN stage is offloaded to a
  simulated GPU (cuVS in the paper) and overlapped layer-by-layer with the
  CPU→GPU transfer.  The builder reports both the *measured* wall-clock time
  of the Python build and the *modelled* time from the cost model, which is
  what the Figure 11 benchmark plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..simulator.cost_model import CostModel
from .roargraph import RoarGraphConfig, RoarGraphIndex

__all__ = ["IndexBuildConfig", "BuildReport", "LayerIndexes", "ContextIndexBuilder"]


@dataclass(frozen=True)
class IndexBuildConfig:
    """Options controlling index construction."""

    backend: str = "cpu"
    """Where the kNN stage runs: ``"cpu"`` or ``"gpu"`` (simulated cuVS)."""

    gqa_share: bool = True
    """Share one index per KV-head group instead of one per query head."""

    query_sample_ratio: float = 0.4
    """Fraction of query vectors (relative to the number of keys) sampled for
    the bipartite stage — the paper uses 40%."""

    pipeline_overlap: bool = True
    """Overlap CPU→GPU transfer with per-layer computation (GPU backend)."""

    roargraph: RoarGraphConfig = field(default_factory=RoarGraphConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ("cpu", "gpu"):
            raise ValueError(f"backend must be 'cpu' or 'gpu', got {self.backend!r}")
        if not 0.0 < self.query_sample_ratio <= 1.0:
            raise ValueError(f"query_sample_ratio must be in (0, 1], got {self.query_sample_ratio}")


@dataclass
class BuildReport:
    """What one build produced and what it cost."""

    num_indexes: int
    num_keys: int
    num_query_samples: int
    backend: str
    gqa_share: bool
    wall_clock_seconds: float
    modeled_seconds: float
    index_memory_bytes: int


@dataclass
class LayerIndexes:
    """The per-head indexes of a single transformer layer.

    With GQA sharing there is one index per KV head; without sharing there is
    one per query head.  ``index_for_query_head`` hides the difference.
    """

    layer: int
    indexes: list[RoarGraphIndex]
    shared: bool
    gqa_group_size: int

    def index_for_query_head(self, query_head: int) -> RoarGraphIndex:
        if self.shared:
            return self.indexes[query_head // self.gqa_group_size]
        return self.indexes[query_head]

    def index_for_kv_head(self, kv_head: int) -> RoarGraphIndex:
        if self.shared:
            return self.indexes[kv_head]
        return self.indexes[kv_head * self.gqa_group_size]

    @property
    def memory_bytes(self) -> int:
        return sum(index.memory_bytes for index in self.indexes)


class ContextIndexBuilder:
    """Builds fine-grained indexes over the key vectors of a context."""

    def __init__(self, config: IndexBuildConfig | None = None, cost_model: CostModel | None = None):
        self.config = config or IndexBuildConfig()
        self.cost_model = cost_model or CostModel()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _sample_queries(self, queries: np.ndarray, num_keys: int, rng: np.random.Generator) -> np.ndarray:
        """Sample query vectors for the bipartite stage.

        ``queries`` is ``(num_heads_in_group, m, head_dim)``; samples are drawn
        uniformly across the group so a shared index still captures every
        query head's distribution.
        """
        flat = queries.reshape(-1, queries.shape[-1])
        target = max(1, int(self.config.query_sample_ratio * num_keys))
        if flat.shape[0] <= target:
            return flat
        chosen = rng.choice(flat.shape[0], size=target, replace=False)
        return flat[chosen]

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build_layer(
        self,
        layer: int,
        keys: np.ndarray,
        queries: np.ndarray,
    ) -> tuple[LayerIndexes, BuildReport]:
        """Build the indexes of one layer.

        ``keys``: ``(num_kv_heads, n, head_dim)`` — the cached key vectors.
        ``queries``: ``(num_query_heads, m, head_dim)`` — historical query
        vectors of the same layer (the prefill queries in practice).
        """
        keys = np.asarray(keys, dtype=np.float32)
        queries = np.asarray(queries, dtype=np.float32)
        num_kv_heads, num_keys, _ = keys.shape
        num_query_heads = queries.shape[0]
        if num_query_heads % num_kv_heads != 0:
            raise ValueError(
                f"num_query_heads={num_query_heads} not a multiple of num_kv_heads={num_kv_heads}"
            )
        group_size = num_query_heads // num_kv_heads
        rng = np.random.default_rng(self.config.seed + layer)

        start = time.perf_counter()
        indexes: list[RoarGraphIndex] = []
        total_query_samples = 0
        if self.config.gqa_share:
            for kv_head in range(num_kv_heads):
                group = queries[kv_head * group_size : (kv_head + 1) * group_size]
                sample = self._sample_queries(group, num_keys, rng)
                total_query_samples += sample.shape[0]
                index = RoarGraphIndex(self.config.roargraph)
                index.build(keys[kv_head], query_sample=sample)
                indexes.append(index)
        else:
            for query_head in range(num_query_heads):
                kv_head = query_head // group_size
                sample = self._sample_queries(queries[query_head : query_head + 1], num_keys, rng)
                total_query_samples += sample.shape[0]
                index = RoarGraphIndex(self.config.roargraph)
                index.build(keys[kv_head], query_sample=sample)
                indexes.append(index)
        wall_clock = time.perf_counter() - start

        num_indexes = len(indexes)
        modeled = self.cost_model.index_build_seconds(
            num_keys=num_keys,
            num_queries=max(1, total_query_samples // num_indexes),
            num_indexes=num_indexes,
            on_gpu=self.config.backend == "gpu",
            pipeline_overlap=self.config.pipeline_overlap,
        )
        layer_indexes = LayerIndexes(layer=layer, indexes=indexes, shared=self.config.gqa_share, gqa_group_size=group_size)
        report = BuildReport(
            num_indexes=num_indexes,
            num_keys=num_keys,
            num_query_samples=total_query_samples,
            backend=self.config.backend,
            gqa_share=self.config.gqa_share,
            wall_clock_seconds=wall_clock,
            modeled_seconds=modeled,
            index_memory_bytes=layer_indexes.memory_bytes,
        )
        return layer_indexes, report

    def build_context(
        self,
        keys_per_layer: dict[int, np.ndarray],
        queries_per_layer: dict[int, np.ndarray],
    ) -> tuple[dict[int, LayerIndexes], BuildReport]:
        """Build indexes for every layer of a context; returns an aggregate report."""
        if set(keys_per_layer) != set(queries_per_layer):
            raise ValueError("keys and queries must cover the same layers")
        layer_indexes: dict[int, LayerIndexes] = {}
        reports: list[BuildReport] = []
        for layer in sorted(keys_per_layer):
            built, report = self.build_layer(layer, keys_per_layer[layer], queries_per_layer[layer])
            layer_indexes[layer] = built
            reports.append(report)
        aggregate = BuildReport(
            num_indexes=sum(r.num_indexes for r in reports),
            num_keys=reports[0].num_keys if reports else 0,
            num_query_samples=sum(r.num_query_samples for r in reports),
            backend=self.config.backend,
            gqa_share=self.config.gqa_share,
            wall_clock_seconds=sum(r.wall_clock_seconds for r in reports),
            modeled_seconds=sum(r.modeled_seconds for r in reports),
            index_memory_bytes=sum(r.index_memory_bytes for r in reports),
        )
        return layer_indexes, aggregate
