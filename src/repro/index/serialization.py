"""Versioned serialization of vector indexes (deserialize, don't rebuild).

A spilled or persisted context used to come back index-less: its RoarGraph
fine indexes were *rebuilt* from the raw keys on the next sparse use — the
q→k kNN stage all over again.  This module gives the indexes a durable
format so reload is a deserialize:

* :class:`~repro.index.roargraph.RoarGraphIndex` round-trips as vectors +
  CSR adjacency (``neighbor_ids`` / ``offsets``) + entry point + build
  config — search over a loaded index is **bit-identical** to search over
  the index that was saved;
* :class:`~repro.index.coarse.CoarseBlockIndex` round-trips as vectors +
  block boundaries + representative matrix;
* a whole context's indexes (per-layer :class:`LayerIndexes`, per-layer
  coarse lists, and the OOD query samples) pack into one ``.npz`` blob via
  :func:`serialize_context_indexes` / :func:`deserialize_context_indexes`.

Every blob embeds ``INDEX_FORMAT_VERSION``; an unknown version raises a
clean :class:`~repro.errors.ContextLoadError` instead of misparsing.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import ContextLoadError
from .builder import LayerIndexes
from .coarse import BlockSummary, CoarseBlockIndex
from .graph import NeighborGraph
from .roargraph import RoarGraphConfig, RoarGraphIndex

__all__ = [
    "INDEX_FORMAT_VERSION",
    "roargraph_to_arrays",
    "roargraph_from_arrays",
    "coarse_to_arrays",
    "coarse_from_arrays",
    "save_roargraph",
    "load_roargraph",
    "save_coarse",
    "load_coarse",
    "serialize_context_indexes",
    "deserialize_context_indexes",
]

INDEX_FORMAT_VERSION = 1

_META_KEY = "__meta__"


def _meta_array(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _parse_meta(archive) -> dict:
    if _META_KEY not in archive.files:
        raise ContextLoadError("index blob is missing its metadata record")
    try:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ContextLoadError(f"corrupted index metadata: {exc}") from exc
    version = meta.get("format_version")
    if version != INDEX_FORMAT_VERSION:
        raise ContextLoadError(
            f"index format version {version!r} is not supported "
            f"(this build reads version {INDEX_FORMAT_VERSION})"
        )
    return meta


# ----------------------------------------------------------------------
# RoarGraph
# ----------------------------------------------------------------------
def roargraph_to_arrays(index: RoarGraphIndex, prefix: str = "rg") -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a built RoarGraph into named arrays plus a JSON-able meta dict."""
    graph = index.graph  # raises IndexNotBuiltError on an unbuilt index
    arrays = {
        f"{prefix}_vectors": index.vectors,
        f"{prefix}_neighbor_ids": graph.neighbor_ids,
        f"{prefix}_offsets": graph.offsets,
    }
    meta = {"entry_point": index.entry_point, "config": asdict(index.config)}
    return arrays, meta


def roargraph_from_arrays(arrays: dict[str, np.ndarray], meta: dict, prefix: str = "rg") -> RoarGraphIndex:
    """Reconstruct a RoarGraph without rebuilding (no kNN stage runs)."""
    try:
        config = RoarGraphConfig(**meta["config"])
        index = RoarGraphIndex(config)
        index._vectors = np.asarray(arrays[f"{prefix}_vectors"], dtype=np.float32)
        index._graph = NeighborGraph(
            arrays[f"{prefix}_neighbor_ids"], arrays[f"{prefix}_offsets"]
        )
        index._entry_point = int(meta["entry_point"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ContextLoadError(f"malformed RoarGraph record: {exc!r}") from exc
    if not 0 <= index._entry_point < index._graph.num_nodes:
        raise ContextLoadError(
            f"RoarGraph entry point {index._entry_point} outside graph of "
            f"{index._graph.num_nodes} nodes"
        )
    if index._graph.num_nodes != index._vectors.shape[0]:
        raise ContextLoadError(
            f"RoarGraph adjacency covers {index._graph.num_nodes} nodes but "
            f"{index._vectors.shape[0]} vectors were stored"
        )
    return index


def save_roargraph(index: RoarGraphIndex, path: str | Path) -> Path:
    """Persist one RoarGraph as a standalone versioned ``.npz`` file."""
    arrays, meta = roargraph_to_arrays(index)
    payload = {"format_version": INDEX_FORMAT_VERSION, "kind": "roargraph", "index": meta}
    path = Path(path)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays, **{_META_KEY: _meta_array(payload)})
    path.write_bytes(buffer.getvalue())
    return path


def load_roargraph(path: str | Path) -> RoarGraphIndex:
    """Load a RoarGraph saved by :func:`save_roargraph`."""
    try:
        with np.load(Path(path)) as archive:
            meta = _parse_meta(archive)
            if meta.get("kind") != "roargraph":
                raise ContextLoadError(f"{path} does not hold a RoarGraph (kind={meta.get('kind')!r})")
            arrays = {name: archive[name] for name in archive.files if name != _META_KEY}
    except FileNotFoundError:
        raise ContextLoadError(f"index file not found: {path}") from None
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as exc:
        raise ContextLoadError(f"corrupted index file {path}: {exc!r}") from exc
    return roargraph_from_arrays(arrays, meta["index"])


def save_coarse(index: CoarseBlockIndex, path: str | Path) -> Path:
    """Persist one coarse block index as a standalone versioned ``.npz``."""
    arrays, meta = coarse_to_arrays(index)
    payload = {"format_version": INDEX_FORMAT_VERSION, "kind": "coarse", "index": meta}
    path = Path(path)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays, **{_META_KEY: _meta_array(payload)})
    path.write_bytes(buffer.getvalue())
    return path


def load_coarse(path: str | Path) -> CoarseBlockIndex:
    """Load a coarse index saved by :func:`save_coarse`."""
    try:
        with np.load(Path(path)) as archive:
            meta = _parse_meta(archive)
            if meta.get("kind") != "coarse":
                raise ContextLoadError(f"{path} does not hold a coarse index (kind={meta.get('kind')!r})")
            arrays = {name: archive[name] for name in archive.files if name != _META_KEY}
    except FileNotFoundError:
        raise ContextLoadError(f"index file not found: {path}") from None
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as exc:
        raise ContextLoadError(f"corrupted index file {path}: {exc!r}") from exc
    return coarse_from_arrays(arrays, meta["index"])


# ----------------------------------------------------------------------
# CoarseBlockIndex
# ----------------------------------------------------------------------
def coarse_to_arrays(index: CoarseBlockIndex, prefix: str = "cb") -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a built coarse block index into named arrays + meta."""
    vectors = index.vectors  # raises IndexNotBuiltError on an unbuilt index
    arrays = {
        f"{prefix}_vectors": vectors,
        f"{prefix}_representatives": index._representative_matrix,
        f"{prefix}_rep_block_ids": index._representative_block_ids,
        f"{prefix}_block_starts": index._block_starts,
        f"{prefix}_block_stops": index._block_stops,
    }
    meta = {"block_size": index.block_size, "num_representatives": index.num_representatives}
    return arrays, meta


def coarse_from_arrays(arrays: dict[str, np.ndarray], meta: dict, prefix: str = "cb") -> CoarseBlockIndex:
    """Reconstruct a coarse index from its stored arrays (no rebuild pass)."""
    try:
        index = CoarseBlockIndex(
            block_size=int(meta["block_size"]),
            num_representatives=int(meta["num_representatives"]),
        )
        index._vectors = np.asarray(arrays[f"{prefix}_vectors"], dtype=np.float32)
        rep_matrix = np.asarray(arrays[f"{prefix}_representatives"], dtype=np.float32)
        rep_block_ids = np.asarray(arrays[f"{prefix}_rep_block_ids"], dtype=np.int64)
        starts = np.asarray(arrays[f"{prefix}_block_starts"], dtype=np.int64)
        stops = np.asarray(arrays[f"{prefix}_block_stops"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as exc:
        raise ContextLoadError(f"malformed coarse-index record: {exc!r}") from exc
    if rep_block_ids.shape[0] != rep_matrix.shape[0] or starts.shape[0] != stops.shape[0]:
        raise ContextLoadError("coarse-index arrays disagree on block counts")
    index._representative_matrix = rep_matrix
    index._representative_block_ids = rep_block_ids
    counts = np.bincount(rep_block_ids, minlength=starts.shape[0])
    index._representative_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    index._block_starts = starts
    index._block_stops = stops
    index._blocks = []
    for block_id in range(starts.shape[0]):
        lo = int(index._representative_offsets[block_id])
        hi = lo + int(counts[block_id])
        index._blocks.append(
            BlockSummary(
                block_id=block_id,
                start=int(starts[block_id]),
                stop=int(stops[block_id]),
                representatives=rep_matrix[lo:hi],
            )
        )
    return index


# ----------------------------------------------------------------------
# whole-context bundles (what the ContextStore persists per context)
# ----------------------------------------------------------------------
def serialize_context_indexes(
    fine_indexes: dict[int, LayerIndexes],
    coarse_indexes: dict[int, list[CoarseBlockIndex]] | None = None,
    query_samples: dict[int, np.ndarray] | None = None,
) -> bytes:
    """Pack a context's per-layer indexes into one versioned ``.npz`` blob."""
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"format_version": INDEX_FORMAT_VERSION, "kind": "context-indexes"}

    fine_meta: dict[str, dict] = {}
    for layer, layer_indexes in fine_indexes.items():
        per_index_meta = []
        for i, index in enumerate(layer_indexes.indexes):
            sub_arrays, sub_meta = roargraph_to_arrays(index, prefix=f"f{layer}_i{i}")
            arrays.update(sub_arrays)
            per_index_meta.append(sub_meta)
        fine_meta[str(layer)] = {
            "shared": layer_indexes.shared,
            "gqa_group_size": layer_indexes.gqa_group_size,
            "indexes": per_index_meta,
        }
    meta["fine"] = fine_meta

    coarse_meta: dict[str, dict] = {}
    for layer, per_head in (coarse_indexes or {}).items():
        head_meta = []
        for head, index in enumerate(per_head):
            sub_arrays, sub_meta = coarse_to_arrays(index, prefix=f"c{layer}_h{head}")
            arrays.update(sub_arrays)
            head_meta.append(sub_meta)
        coarse_meta[str(layer)] = {"indexes": head_meta}
    meta["coarse"] = coarse_meta

    sample_layers = []
    for layer, sample in (query_samples or {}).items():
        sample = np.asarray(sample, dtype=np.float32)
        if sample.size:
            arrays[f"q{layer}"] = sample
            sample_layers.append(int(layer))
    meta["query_sample_layers"] = sample_layers

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays, **{_META_KEY: _meta_array(meta)})
    return buffer.getvalue()


def deserialize_context_indexes(
    data: bytes,
) -> tuple[dict[int, LayerIndexes], dict[int, list[CoarseBlockIndex]], dict[int, np.ndarray]]:
    """Unpack :func:`serialize_context_indexes` output.

    Returns ``(fine_indexes, coarse_indexes, query_samples)``; raises
    :class:`ContextLoadError` on truncation, corruption, or an unknown
    format version — never a raw numpy/zipfile traceback.
    """
    try:
        with np.load(io.BytesIO(data)) as archive:
            meta = _parse_meta(archive)
            if meta.get("kind") != "context-indexes":
                raise ContextLoadError(
                    f"blob does not hold context indexes (kind={meta.get('kind')!r})"
                )
            arrays = {name: archive[name] for name in archive.files if name != _META_KEY}
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as exc:
        raise ContextLoadError(f"corrupted context-index blob: {exc!r}") from exc

    fine: dict[int, LayerIndexes] = {}
    for layer_str, layer_meta in meta.get("fine", {}).items():
        layer = int(layer_str)
        indexes = [
            roargraph_from_arrays(arrays, sub_meta, prefix=f"f{layer}_i{i}")
            for i, sub_meta in enumerate(layer_meta["indexes"])
        ]
        fine[layer] = LayerIndexes(
            layer=layer,
            indexes=indexes,
            shared=bool(layer_meta["shared"]),
            gqa_group_size=int(layer_meta["gqa_group_size"]),
        )

    coarse: dict[int, list[CoarseBlockIndex]] = {}
    for layer_str, layer_meta in meta.get("coarse", {}).items():
        layer = int(layer_str)
        coarse[layer] = [
            coarse_from_arrays(arrays, sub_meta, prefix=f"c{layer}_h{head}")
            for head, sub_meta in enumerate(layer_meta["indexes"])
        ]

    samples: dict[int, np.ndarray] = {}
    for layer in meta.get("query_sample_layers", []):
        samples[int(layer)] = np.asarray(arrays[f"q{layer}"], dtype=np.float32)
    return fine, coarse, samples
