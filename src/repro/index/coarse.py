"""Coarse-grained block index (InfLLM / Quest style).

Adjacent tokens are grouped into fixed-size blocks; each block is summarised
by a small set of representative vectors.  At query time only the inner
products between the query and the representatives are computed, the top
blocks are selected, and *all* tokens of the selected blocks participate in
attention.  This trades retrieval precision for very low retrieval latency
and is the index the AlayaDB optimizer picks when the GPU memory budget is
large (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import SearchResult, VectorIndex, validate_query

__all__ = ["BlockSummary", "CoarseBlockIndex"]


@dataclass
class BlockSummary:
    """Representative vectors of one token block."""

    block_id: int
    start: int
    stop: int
    representatives: np.ndarray  # (num_representatives, dim)

    @property
    def num_tokens(self) -> int:
        return self.stop - self.start

    def score(self, query: np.ndarray) -> float:
        """Block relevance = max inner product over its representatives."""
        return float(np.max(self.representatives @ query))


class CoarseBlockIndex(VectorIndex):
    """Block index with mean + max-magnitude representatives per block.

    ``num_representatives`` follows InfLLM: a handful of "semantic anchor"
    vectors summarise the block.  Here the representatives are the block mean
    plus the tokens with the largest vector norms, which approximates picking
    the tokens most likely to maximise an inner product.
    """

    def __init__(self, block_size: int = 128, num_representatives: int = 4):
        super().__init__()
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self.num_representatives = max(1, num_representatives)
        self._blocks: list[BlockSummary] = []
        self._representative_matrix: np.ndarray | None = None
        self._representative_block_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, vectors: np.ndarray, **kwargs) -> None:
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"expected (n, dim), got {vectors.shape}")
        self._vectors = vectors
        self._blocks = []
        representatives = []
        block_ids = []
        for block_id, start in enumerate(range(0, vectors.shape[0], self.block_size)):
            stop = min(start + self.block_size, vectors.shape[0])
            block_vectors = vectors[start:stop]
            reps = [block_vectors.mean(axis=0)]
            norms = np.linalg.norm(block_vectors, axis=1)
            num_extra = min(self.num_representatives - 1, block_vectors.shape[0])
            if num_extra > 0:
                top = np.argsort(-norms)[:num_extra]
                reps.extend(block_vectors[top])
            rep_matrix = np.stack(reps).astype(np.float32)
            summary = BlockSummary(block_id=block_id, start=start, stop=stop, representatives=rep_matrix)
            self._blocks.append(summary)
            representatives.append(rep_matrix)
            block_ids.extend([block_id] * rep_matrix.shape[0])
        self._representative_matrix = np.concatenate(representatives, axis=0)
        self._representative_block_ids = np.asarray(block_ids, dtype=np.int64)
        counts = np.asarray([rep.shape[0] for rep in representatives], dtype=np.int64)
        self._representative_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        self._block_starts = np.asarray([block.start for block in self._blocks], dtype=np.int64)
        self._block_stops = np.asarray([block.stop for block in self._blocks], dtype=np.int64)

    # ------------------------------------------------------------------
    # persistence (versioned save/load, see repro.index.serialization)
    # ------------------------------------------------------------------
    def save(self, path) -> "CoarseBlockIndex":
        """Persist this built index to ``path`` (versioned ``.npz`` format)."""
        from .serialization import save_coarse

        save_coarse(self, path)
        return self

    @classmethod
    def load(cls, path) -> "CoarseBlockIndex":
        """Load an index saved by :meth:`save` (no rebuild pass runs)."""
        from .serialization import load_coarse

        return load_coarse(path)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def blocks(self) -> list[BlockSummary]:
        return self._blocks

    @property
    def memory_bytes(self) -> int:
        """Blocks must be resident (typically on GPU): vectors + representatives."""
        base = super().memory_bytes
        if self._representative_matrix is not None:
            base += int(self._representative_matrix.nbytes)
        return base

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search_blocks(self, query: np.ndarray, num_blocks: int) -> list[BlockSummary]:
        """Return the ``num_blocks`` most relevant blocks for ``query``.

        Delegates to the batched selection so the single-query and batched
        paths share one top-k algorithm (identical tie-breaking included).
        """
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        top = self._top_block_ids_batch(query[None, :], num_blocks)[0]
        return [self._blocks[int(b)] for b in top]

    def search_blocks_batch(self, queries: np.ndarray, num_blocks: int) -> list[list[BlockSummary]]:
        """Top blocks for a batch of queries sharing one representative scan.

        ``queries`` is ``(g, dim)``; the query-to-representative inner
        products come from a single matmul instead of ``g`` separate scans,
        and the per-block reduction/top-k runs once over the whole batch.
        Row ``i`` of the result matches ``search_blocks`` on ``queries[i]``.
        """
        top = self._top_block_ids_batch(queries, num_blocks)
        return [[self._blocks[int(b)] for b in row] for row in top]

    def block_scores_batch(self, queries: np.ndarray) -> np.ndarray:
        """Per-block relevance scores for a query batch, ``(g, num_blocks)``.

        One representative matmul scores every block for every query.  A shard
        router merges these across shard-local indexes: because blocks are cut
        from offset 0 in ``block_size`` steps, a shard whose token range starts
        on a block boundary produces exactly the blocks the full-context index
        would, so concatenating per-shard score rows reconstructs the global
        block-score vector and the global top-k block selection is exact.
        """
        vectors = self._require_built()
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != vectors.shape[1]:
            raise ValueError(
                f"expected queries of shape (g, {vectors.shape[1]}), got {queries.shape}"
            )
        scores = queries @ self._representative_matrix.T
        return np.maximum.reduceat(scores, self._representative_offsets, axis=1)

    @property
    def block_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, stops)`` token bounds of every block, ``(num_blocks,)`` each."""
        self._require_built()
        return self._block_starts, self._block_stops

    def _top_block_ids_batch(self, queries: np.ndarray, num_blocks: int) -> np.ndarray:
        """Block ids of the top blocks per query, ``(g, num_blocks)``, batched."""
        return self.top_blocks_from_scores(self.block_scores_batch(queries), num_blocks)

    @staticmethod
    def top_blocks_from_scores(block_scores: np.ndarray, num_blocks: int) -> np.ndarray:
        """Top-block selection over precomputed scores, ``(g, num_blocks)``.

        The selection algorithm (argpartition + ordering, tie-breaking
        included) in one reusable place: the per-index search paths run it on
        their own scores, and a shard router runs it on block-score rows
        *concatenated* across shard-local indexes so the cross-shard selection
        is exactly the selection a full-context index would make.
        """
        total_blocks = block_scores.shape[1]
        num_blocks = min(num_blocks, total_blocks)
        if num_blocks >= total_blocks:
            top = np.argsort(-block_scores, axis=1)
        else:
            top = np.argpartition(-block_scores, num_blocks - 1, axis=1)[:, :num_blocks]
            order = np.argsort(np.take_along_axis(-block_scores, top, axis=1), axis=1)
            top = np.take_along_axis(top, order, axis=1)
        return top[:, :num_blocks]

    def search_topk(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """Token-level top-k limited to the most relevant blocks.

        The selected blocks jointly contain at least ``k`` tokens; tokens are
        then ranked exactly within them.
        """
        vectors = self._require_built()
        query = validate_query(query, vectors.shape[1])
        num_blocks = max(1, int(np.ceil(k / self.block_size)))
        blocks = self.search_blocks(query, num_blocks)
        positions = np.concatenate([np.arange(b.start, b.stop) for b in blocks])
        scores = vectors[positions] @ query
        distance_computations = int(self._representative_matrix.shape[0] + positions.shape[0])
        k = min(k, positions.shape[0])
        order = np.argsort(-scores)[:k]
        return SearchResult(
            indices=positions[order].astype(np.int64),
            scores=scores[order].astype(np.float32),
            num_distance_computations=distance_computations,
        )

    def selected_positions(self, query: np.ndarray, num_blocks: int) -> np.ndarray:
        """All token positions of the top ``num_blocks`` blocks (InfLLM's retrieval)."""
        return self._block_positions(self.search_blocks(query, num_blocks))

    def selected_positions_batch(self, queries: np.ndarray, num_blocks: int) -> list[np.ndarray]:
        """Per-query selected positions with one shared representative scan."""
        top = self._top_block_ids_batch(queries, num_blocks)
        return [self._block_range_positions(row) for row in top]

    def _block_range_positions(self, block_ids: np.ndarray) -> np.ndarray:
        if block_ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [
                np.arange(self._block_starts[b], self._block_stops[b])
                for b in block_ids
            ]
        ).astype(np.int64)

    @staticmethod
    def _block_positions(blocks: list[BlockSummary]) -> np.ndarray:
        if not blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(b.start, b.stop) for b in blocks]).astype(np.int64)
