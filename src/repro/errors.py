"""Exception hierarchy for the AlayaDB reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes are grouped by subsystem (database interface,
query processing, index, storage, simulator) mirroring the components in
DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatabaseError(ReproError):
    """Base class for errors raised by the DB / Session user interface."""


class SessionClosedError(DatabaseError):
    """An operation was attempted on a session that has been closed."""


class ContextNotFoundError(DatabaseError):
    """A requested context id does not exist in the context store."""


class DuplicateContextError(DatabaseError):
    """A context with the same id has already been imported."""


class ContextEvictedError(DatabaseError):
    """The KV data of a spilled context was accessed without reloading it."""


class AdmissionRejectedError(DatabaseError):
    """A request was rejected by admission control (it can never fit the
    configured GPU memory budget)."""


class RequestFailedError(DatabaseError):
    """A scheduled request failed during session setup (``begin_request``
    raised); the original error message is carried in ``args[0]``."""


class RequestCancelledError(DatabaseError):
    """The result of a cancelled request was demanded; cancelled requests
    produce no :class:`GenerationResult`."""


class UnknownTenantError(DatabaseError):
    """A request named a tenant the service does not know and the tenant
    registry runs in strict mode (``strict_tenants``)."""


class TenantThrottledError(DatabaseError):
    """Backpressure: the tenant's queue is at its depth limit, so the request
    was refused at submission instead of queuing without bound.  Carries what
    an HTTP frontend needs for a 429 response: the tenant, its current queue
    depth, the position this request *would* have taken, and a retry hint."""

    def __init__(
        self,
        message: str,
        *,
        tenant: str = "default",
        queue_depth: int = 0,
        queue_position: int = 0,
        retry_after_seconds: float = 1.0,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.queue_position = queue_position
        self.retry_after_seconds = retry_after_seconds


class QueryError(ReproError):
    """Base class for query-processing errors."""


class UnsupportedQueryError(QueryError):
    """The selected index type cannot process the requested query type."""


class PlanningError(QueryError):
    """The query optimizer could not produce a valid execution plan."""


class IndexError_(ReproError):
    """Base class for vector-index errors (named with a trailing underscore to
    avoid shadowing the built-in :class:`IndexError`)."""


class IndexNotBuiltError(IndexError_):
    """A search was issued against an index that has not been built yet."""


class DimensionMismatchError(IndexError_):
    """Vectors with an unexpected dimensionality were supplied."""


class StorageError(ReproError):
    """Base class for vector-file-system and buffer-manager errors."""


class BlockNotFoundError(StorageError):
    """A block id was requested that is not present in the vector file."""


class ContextLoadError(StorageError):
    """Persisted context data (snapshot, index file, or manifest) is missing,
    truncated, corrupted, or written by an incompatible format version."""


class BufferPoolExhaustedError(StorageError):
    """The buffer pool cannot evict enough blocks to satisfy a pin request."""


class SimulatorError(ReproError):
    """Base class for device-simulator errors."""


class OutOfDeviceMemoryError(SimulatorError):
    """An allocation exceeded the simulated device memory capacity."""


class SLOViolationError(SimulatorError):
    """Raised when an operation is required to meet an SLO but does not."""
