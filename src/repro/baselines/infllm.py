"""InfLLM baseline: coarse block retrieval with GPU-resident blocks.

The context is split into fixed-size blocks summarised by representative
vectors; at decode time the query scores the representatives and the top
blocks (all their tokens) join the window in the attention computation.
Block retrieval is cheap, but precision is block-granular and the selected
blocks must live in GPU memory — the memory/quality trade-off Figure 9 of the
paper explores by varying the number of cached blocks.
"""

from __future__ import annotations

import numpy as np

from ..core.context_store import StoredContext
from ..index.coarse import CoarseBlockIndex
from .base import SelectionOutcome, SelectionStrategy

__all__ = ["InfLLMStrategy"]


class InfLLMStrategy(SelectionStrategy):
    """Block-level retrieval (coarse-grained sparse attention)."""

    name = "infllm"

    def __init__(
        self,
        block_size: int = 128,
        num_retrieved_blocks: int = 32,
        initial_tokens: int = 128,
        recent_tokens: int = 4096,
        num_representatives: int = 4,
    ):
        self.block_size = block_size
        self.num_retrieved_blocks = num_retrieved_blocks
        self.initial_tokens = initial_tokens
        self.recent_tokens = recent_tokens
        self.num_representatives = num_representatives
        self._indexes: dict[tuple[int, int], CoarseBlockIndex] = {}
        self._gqa_group_size = 1

    def prepare(self, context: StoredContext, num_query_heads: int) -> None:
        self._indexes.clear()
        for layer, keys in context.snapshot.keys.items():
            num_kv_heads = keys.shape[0]
            self._gqa_group_size = max(1, num_query_heads // num_kv_heads)
            for kv_head in range(num_kv_heads):
                index = CoarseBlockIndex(block_size=self.block_size, num_representatives=self.num_representatives)
                index.build(keys[kv_head])
                self._indexes[(layer, kv_head)] = index

    def _window(self, context_length: int) -> np.ndarray:
        initial = np.arange(0, min(self.initial_tokens, context_length), dtype=np.int64)
        recent_start = max(0, context_length - self.recent_tokens)
        recent = np.arange(recent_start, context_length, dtype=np.int64)
        return np.unique(np.concatenate([initial, recent]))

    def select(self, layer: int, query_head: int, query: np.ndarray, context_length: int) -> SelectionOutcome:
        kv_head = query_head // self._gqa_group_size
        index = self._indexes.get((layer, kv_head))
        if index is None:
            return SelectionOutcome(positions=np.empty(0, dtype=np.int64))
        positions = index.selected_positions(query, self.num_retrieved_blocks)
        work = index.num_blocks * self.num_representatives
        return SelectionOutcome(positions=positions, num_distance_computations=work)

    def resident_positions(self, context_length: int) -> np.ndarray:
        return self._window(context_length)

    def gpu_token_equivalent(self, context_length: int) -> int:
        window = int(self._window(context_length).shape[0])
        retrieved = self.num_retrieved_blocks * self.block_size
        representatives = 0
        if self._indexes:
            representatives = sum(index.num_blocks * self.num_representatives for index in self._indexes.values())
            representatives //= max(len(self._indexes), 1)
        return window + retrieved + representatives
