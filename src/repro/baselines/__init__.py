"""The systems AlayaDB is compared against in the paper's evaluation."""

from .alayadb_ttft import AlayaDBTTFTModel
from .base import RetrievalCache, SelectionOutcome, SelectionStrategy
from .diprs import DIPRSStrategy
from .full_attention import FullAttentionStrategy
from .infllm import InfLLMStrategy
from .lmcache import LMCacheStore, NoReusePrefill, TTFTBreakdown
from .streaming_llm import StreamingLLMStrategy
from .topk_retrieval import TopKRetrievalStrategy

__all__ = [
    "AlayaDBTTFTModel",
    "DIPRSStrategy",
    "FullAttentionStrategy",
    "InfLLMStrategy",
    "LMCacheStore",
    "NoReusePrefill",
    "RetrievalCache",
    "SelectionOutcome",
    "SelectionStrategy",
    "StreamingLLMStrategy",
    "TTFTBreakdown",
    "TopKRetrievalStrategy",
]
