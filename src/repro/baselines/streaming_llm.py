"""StreamingLLM baseline: attention sinks + a sliding window, nothing else.

Keeps the first ``initial_tokens`` (attention sinks) and the most recent
``recent_tokens`` on the GPU and simply drops everything in between.  Very
fast and very small, but retrieval-style tasks collapse because the evidence
tokens in the middle of the context are never attended — the behaviour
Table 5 of the paper shows (near-zero scores on Retr.* tasks).
"""

from __future__ import annotations

import numpy as np

from ..core.context_store import StoredContext
from .base import SelectionOutcome, SelectionStrategy

__all__ = ["StreamingLLMStrategy"]


class StreamingLLMStrategy(SelectionStrategy):
    """Window-only attention (no retrieval of middle tokens)."""

    name = "streaming_llm"

    def __init__(self, initial_tokens: int = 128, recent_tokens: int = 8192):
        self.initial_tokens = initial_tokens
        self.recent_tokens = recent_tokens

    def prepare(self, context: StoredContext, num_query_heads: int) -> None:
        return None

    def _window(self, context_length: int) -> np.ndarray:
        initial = np.arange(0, min(self.initial_tokens, context_length), dtype=np.int64)
        recent_start = max(0, context_length - self.recent_tokens)
        recent = np.arange(recent_start, context_length, dtype=np.int64)
        return np.unique(np.concatenate([initial, recent]))

    def select(self, layer: int, query_head: int, query: np.ndarray, context_length: int) -> SelectionOutcome:
        return SelectionOutcome(positions=np.empty(0, dtype=np.int64), num_distance_computations=0)

    def resident_positions(self, context_length: int) -> np.ndarray:
        return self._window(context_length)

    def gpu_token_equivalent(self, context_length: int) -> int:
        return int(self._window(context_length).shape[0])
