"""Top-k retrieval baseline (RetrievalAttention-style fine-grained retrieval).

A RoarGraph index per KV head retrieves a *fixed* number of critical tokens
per head per step.  This is the strongest prior method in the paper's
comparison — the one DIPR improves on by making the number of retrieved
tokens dynamic (k=100 loses quality on token-hungry heads, k=2000 blows the
latency SLO; see Table 5).
"""

from __future__ import annotations

import numpy as np

from ..core.context_store import StoredContext
from ..index.roargraph import RoarGraphConfig, RoarGraphIndex
from ..query.topk import graph_topk_search
from .base import SelectionOutcome, SelectionStrategy

__all__ = ["TopKRetrievalStrategy"]


class TopKRetrievalStrategy(SelectionStrategy):
    """Fixed top-k retrieval over fine-grained graph indexes."""

    name = "topk"

    def __init__(
        self,
        k: int = 100,
        initial_tokens: int = 128,
        recent_tokens: int = 512,
        roargraph: RoarGraphConfig | None = None,
        reuse_context_indexes: bool = True,
    ):
        self.k = k
        self.initial_tokens = initial_tokens
        self.recent_tokens = recent_tokens
        self.roargraph = roargraph or RoarGraphConfig()
        self.reuse_context_indexes = reuse_context_indexes
        self._indexes: dict[tuple[int, int], RoarGraphIndex] = {}
        self._gqa_group_size = 1
        self.name = f"top{k}"

    def prepare(self, context: StoredContext, num_query_heads: int) -> None:
        self._indexes.clear()
        for layer, keys in context.snapshot.keys.items():
            num_kv_heads = keys.shape[0]
            self._gqa_group_size = max(1, num_query_heads // num_kv_heads)
            stored = context.fine_indexes.get(layer) if self.reuse_context_indexes else None
            for kv_head in range(num_kv_heads):
                if stored is not None:
                    self._indexes[(layer, kv_head)] = stored.index_for_kv_head(kv_head)
                    continue
                sample = context.query_samples.get(layer)
                query_sample = None
                if sample is not None and sample.size:
                    group = sample[kv_head * self._gqa_group_size : (kv_head + 1) * self._gqa_group_size]
                    query_sample = group.reshape(-1, group.shape[-1])
                index = RoarGraphIndex(self.roargraph)
                index.build(keys[kv_head], query_sample=query_sample)
                self._indexes[(layer, kv_head)] = index

    def _window(self, context_length: int) -> np.ndarray:
        initial = np.arange(0, min(self.initial_tokens, context_length), dtype=np.int64)
        recent_start = max(0, context_length - self.recent_tokens)
        recent = np.arange(recent_start, context_length, dtype=np.int64)
        return np.unique(np.concatenate([initial, recent]))

    def select(self, layer: int, query_head: int, query: np.ndarray, context_length: int) -> SelectionOutcome:
        kv_head = query_head // self._gqa_group_size
        index = self._indexes.get((layer, kv_head))
        if index is None:
            return SelectionOutcome(positions=np.empty(0, dtype=np.int64))
        result = graph_topk_search(
            index.vectors, index.graph, query, self.k, [index.entry_point]
        )
        return SelectionOutcome(positions=result.indices, num_distance_computations=result.num_distance_computations)

    def resident_positions(self, context_length: int) -> np.ndarray:
        return self._window(context_length)

    def gpu_token_equivalent(self, context_length: int) -> int:
        return int(self._window(context_length).shape[0]) + self.k
