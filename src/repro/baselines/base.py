"""Common machinery of the compared sparse-attention methods.

Every method in the paper's evaluation (Table 5, Figure 9) reduces to a
*selection strategy*: given the decode query vector of one head, choose which
cached token positions participate in attention.  ``SelectionStrategy``
captures that; ``RetrievalCache`` adapts any strategy into the cache protocol
the transformer substrate understands, so each baseline can also drive real
end-to-end generation, exactly like an AlayaDB :class:`~repro.core.Session`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.attention_engine import DataCentricAttentionEngine
from ..core.context_store import StoredContext
from ..kvcache.cache import LayerKVCache
from ..llm.attention import full_attention

__all__ = ["SelectionOutcome", "SelectionStrategy", "RetrievalCache"]


@dataclass
class SelectionOutcome:
    """Positions one strategy selected for one head, plus its search work."""

    positions: np.ndarray
    num_distance_computations: int = 0

    @property
    def num_selected(self) -> int:
        return int(self.positions.shape[0])


class SelectionStrategy(abc.ABC):
    """A sparse-attention method, reduced to its token-selection rule."""

    name: str = "strategy"

    @abc.abstractmethod
    def prepare(self, context: StoredContext, num_query_heads: int) -> None:
        """Build whatever per-context state the method needs (indexes, blocks)."""

    @abc.abstractmethod
    def select(self, layer: int, query_head: int, query: np.ndarray, context_length: int) -> SelectionOutcome:
        """Choose the stored-context positions this head attends to."""

    @abc.abstractmethod
    def resident_positions(self, context_length: int) -> np.ndarray:
        """Positions permanently resident in GPU memory (window / blocks)."""

    @abc.abstractmethod
    def gpu_token_equivalent(self, context_length: int) -> int:
        """How many tokens' worth of KV the method keeps on the GPU.

        Used for the quality-vs-memory trade-off of Figure 9: GPU bytes =
        tokens × kv-bytes-per-token (plus model weights, added by the bench).
        """

    def describe(self) -> str:
        return self.name


class RetrievalCache:
    """Adapts a :class:`SelectionStrategy` into the model's cache protocol."""

    def __init__(self, strategy: SelectionStrategy, context: StoredContext, num_query_heads: int):
        self.strategy = strategy
        self.context = context
        self.num_query_heads = num_query_heads
        self.engine = DataCentricAttentionEngine()
        self._local: dict[int, LayerKVCache] = {}
        self._gqa_group_size: int | None = None
        self.total_selected = 0
        self.total_distance_computations = 0
        strategy.prepare(context, num_query_heads)

    # ------------------------------------------------------------------
    # cache protocol
    # ------------------------------------------------------------------
    def sequence_length(self, layer: int = 0) -> int:
        local = self._local.get(layer)
        return self.context.num_tokens + (len(local) if local is not None else 0)

    def update_query(self, q: np.ndarray, k: np.ndarray, v: np.ndarray, layer: int) -> None:
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        if self._gqa_group_size is None:
            self._gqa_group_size = q.shape[0] // k.shape[0]
        cache = self._local.get(layer)
        if cache is None:
            cache = LayerKVCache(k.shape[0], k.shape[2])
            self._local[layer] = cache
        cache.append(k, v)

    def attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        q = np.asarray(q, dtype=np.float32)
        if q.shape[1] > 1:
            return self._prefill_attention(q, layer)
        return self._decode_attention(q, layer)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _materialized_kv(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        stored_keys = self.context.keys(layer)
        stored_values = self.context.values(layer)
        local = self._local.get(layer)
        if local is None or len(local) == 0:
            return stored_keys, stored_values
        return (
            np.concatenate([stored_keys, local.keys], axis=1),
            np.concatenate([stored_values, local.values], axis=1),
        )

    def _prefill_attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        keys, values = self._materialized_kv(layer)
        return full_attention(q, keys, values, causal=True)

    def _decode_attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        stored_keys = self.context.keys(layer)
        stored_values = self.context.values(layer)
        local = self._local.get(layer)
        local_keys = local.keys if local is not None else None
        local_values = local.values if local is not None else None
        context_length = self.context.num_tokens
        group = self._gqa_group_size or (self.num_query_heads // stored_keys.shape[0])
        resident = self.strategy.resident_positions(context_length)

        head_dim = q.shape[2]
        outputs = np.zeros((q.shape[0], 1, head_dim), dtype=np.float32)
        for head in range(q.shape[0]):
            kv_head = head // group
            query = q[head, 0, :]
            outcome = self.strategy.select(layer, head, query, context_length)
            self.total_selected += outcome.num_selected
            self.total_distance_computations += outcome.num_distance_computations
            output, _ = self.engine.head_output(
                query,
                stored_keys[kv_head],
                stored_values[kv_head],
                window_positions=resident,
                retrieved_positions=outcome.positions,
                local_keys=local_keys[kv_head] if local_keys is not None else None,
                local_values=local_values[kv_head] if local_values is not None else None,
            )
            outputs[head, 0, :] = output
        return outputs
