"""Full-attention baseline: attend to every cached token.

The quality upper bound of the coupled architecture (vLLM / transformers);
every token's KV stays on the GPU, and the decode latency grows linearly with
the context length — which is why it fails the TPOT SLO on long contexts in
Table 5 of the paper.
"""

from __future__ import annotations

import numpy as np

from ..core.context_store import StoredContext
from .base import SelectionOutcome, SelectionStrategy

__all__ = ["FullAttentionStrategy"]


class FullAttentionStrategy(SelectionStrategy):
    """Select every stored position (exact attention)."""

    name = "full"

    def prepare(self, context: StoredContext, num_query_heads: int) -> None:
        self._context_length = context.num_tokens

    def select(self, layer: int, query_head: int, query: np.ndarray, context_length: int) -> SelectionOutcome:
        return SelectionOutcome(
            positions=np.arange(context_length, dtype=np.int64),
            num_distance_computations=0,
        )

    def resident_positions(self, context_length: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def gpu_token_equivalent(self, context_length: int) -> int:
        return context_length
