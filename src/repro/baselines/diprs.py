"""DIPRS as a selection strategy.

This wraps AlayaDB's DIPR query processing in the same strategy interface as
the baselines so the benchmark harnesses can compare every method through one
code path.  End-to-end applications should use :class:`repro.core.DB` /
:class:`repro.core.Session`, which add the optimizer, context reuse and the
rest of the database machinery on top of the same search.
"""

from __future__ import annotations

import numpy as np

from ..core.context_store import StoredContext
from ..index.roargraph import RoarGraphConfig, RoarGraphIndex
from ..query.dipr import diprs_search
from .base import SelectionOutcome, SelectionStrategy

__all__ = ["DIPRSStrategy"]


class DIPRSStrategy(SelectionStrategy):
    """Dynamic critical-token retrieval via the DIPRS graph search."""

    name = "diprs"

    def __init__(
        self,
        beta: float = 50.0,
        capacity_threshold: int = 128,
        initial_tokens: int = 128,
        recent_tokens: int = 512,
        use_window_seed: bool = True,
        max_tokens: int | None = None,
        roargraph: RoarGraphConfig | None = None,
        reuse_context_indexes: bool = True,
    ):
        self.beta = beta
        self.capacity_threshold = capacity_threshold
        self.initial_tokens = initial_tokens
        self.recent_tokens = recent_tokens
        self.use_window_seed = use_window_seed
        self.max_tokens = max_tokens
        self.roargraph = roargraph or RoarGraphConfig()
        self.reuse_context_indexes = reuse_context_indexes
        self._indexes: dict[tuple[int, int], RoarGraphIndex] = {}
        self._keys: dict[int, np.ndarray] = {}
        self._gqa_group_size = 1

    def prepare(self, context: StoredContext, num_query_heads: int) -> None:
        self._indexes.clear()
        self._keys = context.snapshot.keys
        for layer, keys in context.snapshot.keys.items():
            num_kv_heads = keys.shape[0]
            self._gqa_group_size = max(1, num_query_heads // num_kv_heads)
            stored = context.fine_indexes.get(layer) if self.reuse_context_indexes else None
            for kv_head in range(num_kv_heads):
                if stored is not None:
                    self._indexes[(layer, kv_head)] = stored.index_for_kv_head(kv_head)
                    continue
                sample = context.query_samples.get(layer)
                query_sample = None
                if sample is not None and sample.size:
                    group = sample[kv_head * self._gqa_group_size : (kv_head + 1) * self._gqa_group_size]
                    query_sample = group.reshape(-1, group.shape[-1])
                index = RoarGraphIndex(self.roargraph)
                index.build(keys[kv_head], query_sample=query_sample)
                self._indexes[(layer, kv_head)] = index

    def _window(self, context_length: int) -> np.ndarray:
        initial = np.arange(0, min(self.initial_tokens, context_length), dtype=np.int64)
        recent_start = max(0, context_length - self.recent_tokens)
        recent = np.arange(recent_start, context_length, dtype=np.int64)
        return np.unique(np.concatenate([initial, recent]))

    def select(self, layer: int, query_head: int, query: np.ndarray, context_length: int) -> SelectionOutcome:
        kv_head = query_head // self._gqa_group_size
        index = self._indexes.get((layer, kv_head))
        if index is None:
            return SelectionOutcome(positions=np.empty(0, dtype=np.int64))
        window_max = None
        if self.use_window_seed:
            window = self._window(context_length)
            keys = self._keys[layer][kv_head]
            if window.size:
                window_max = float((keys[window] @ np.asarray(query, dtype=np.float32)).max())
        result, stats = diprs_search(
            index.vectors,
            index.graph,
            query,
            self.beta,
            [index.entry_point],
            capacity_threshold=self.capacity_threshold,
            window_max_score=window_max,
            max_tokens=self.max_tokens,
        )
        return SelectionOutcome(positions=result.indices, num_distance_computations=stats.num_distance_computations)

    def resident_positions(self, context_length: int) -> np.ndarray:
        return self._window(context_length)

    def gpu_token_equivalent(self, context_length: int) -> int:
        return int(self._window(context_length).shape[0])
