"""AlayaDB's TTFT model for context reuse (the red curve of Figure 10).

AlayaDB never moves the stored KV cache: the first decode step runs sparse
attention directly over the offloaded context through the vector indexes, so
TTFT is one sparse decode step — essentially independent of context length.
This small helper mirrors :class:`repro.baselines.lmcache.LMCacheStore`'s
TTFT interface so the Figure 10 benchmark can sweep all three systems through
one loop.
"""

from __future__ import annotations

from ..simulator.cost_model import CostModel
from .lmcache import TTFTBreakdown

__all__ = ["AlayaDBTTFTModel"]


class AlayaDBTTFTModel:
    """Modelled TTFT of decoding directly over the offloaded, indexed context."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        selected_tokens_per_head: int = 640,
        distance_computations_per_head: int = 2000,
    ):
        self.cost_model = cost_model or CostModel()
        self.selected_tokens_per_head = selected_tokens_per_head
        self.distance_computations_per_head = distance_computations_per_head

    def ttft_for_length(self, num_tokens: int) -> TTFTBreakdown:
        decode = self.cost_model.sparse_decode_seconds(
            num_selected_tokens=min(self.selected_tokens_per_head, num_tokens),
            num_distance_computations=min(self.distance_computations_per_head, num_tokens),
        )
        return TTFTBreakdown(load_seconds=0.0, decode_seconds=decode)
