"""KV-cache disaggregation baseline (LMCache / Mooncake style).

The stored context's KV cache lives compressed in CPU memory (or on disk);
reusing it means *decompressing and transferring the whole thing back to the
GPU* before decoding can start.  That load time grows linearly with the
context length and dominates TTFT — the effect Figure 10 of the paper
measures against AlayaDB, which decodes directly over the offloaded cache and
never moves it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ContextNotFoundError
from ..kvcache.compression import CompressedKV, compress_kv, decompress_kv
from ..kvcache.serialization import KVSnapshot
from ..simulator.cost_model import CostModel

__all__ = ["TTFTBreakdown", "LMCacheStore", "NoReusePrefill"]


@dataclass
class TTFTBreakdown:
    """TTFT split into its phases (Figure 10(b) of the paper)."""

    load_seconds: float
    decode_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.decode_seconds


class LMCacheStore:
    """A disaggregated KV cache: compressed storage + load-on-reuse."""

    def __init__(self, cost_model: CostModel | None = None, compress: bool = True):
        self.cost_model = cost_model or CostModel()
        self.compress = compress
        self._entries: dict[str, CompressedKV | KVSnapshot] = {}
        self._num_tokens: dict[str, int] = {}

    # ------------------------------------------------------------------
    # store / load
    # ------------------------------------------------------------------
    def store(self, context_id: str, snapshot: KVSnapshot) -> int:
        """Store a context's KV cache; returns its stored size in bytes."""
        snapshot.validate()
        if self.compress:
            entry = compress_kv(snapshot.keys, snapshot.values)
            stored_bytes = entry.nbytes
        else:
            entry = snapshot
            stored_bytes = snapshot.nbytes
        self._entries[context_id] = entry
        self._num_tokens[context_id] = snapshot.num_tokens
        return int(stored_bytes)

    def load(self, context_id: str) -> tuple[dict, dict, float]:
        """Load a context's KV back: returns (keys, values, modelled load seconds)."""
        entry = self._entries.get(context_id)
        if entry is None:
            raise ContextNotFoundError(f"context {context_id!r} not stored in LMCache")
        num_tokens = self._num_tokens[context_id]
        if isinstance(entry, CompressedKV):
            keys, values = decompress_kv(entry)
            ratio = entry.nbytes / max(1, num_tokens * self.cost_model.shape.kv_bytes_per_token)
            seconds = self.cost_model.kv_load_seconds(num_tokens, compressed_ratio=min(ratio, 1.0), decompress=True)
        else:
            keys, values = entry.keys, entry.values
            seconds = self.cost_model.kv_load_seconds(num_tokens, compressed_ratio=1.0, decompress=False)
        return keys, values, seconds

    def stored_tokens(self, context_id: str) -> int:
        if context_id not in self._num_tokens:
            raise ContextNotFoundError(f"context {context_id!r} not stored in LMCache")
        return self._num_tokens[context_id]

    # ------------------------------------------------------------------
    # TTFT model (Figure 10)
    # ------------------------------------------------------------------
    def ttft(self, context_id: str) -> TTFTBreakdown:
        """Modelled TTFT of reusing a stored context through the load path."""
        num_tokens = self.stored_tokens(context_id)
        load = self.cost_model.kv_load_seconds(num_tokens)
        decode = self.cost_model.full_decode_seconds(num_tokens)
        return TTFTBreakdown(load_seconds=load, decode_seconds=decode)

    def ttft_for_length(self, num_tokens: int) -> TTFTBreakdown:
        """TTFT model without storing anything (pure length sweep)."""
        load = self.cost_model.kv_load_seconds(num_tokens)
        decode = self.cost_model.full_decode_seconds(num_tokens)
        return TTFTBreakdown(load_seconds=load, decode_seconds=decode)


class NoReusePrefill:
    """The no-reuse baseline: recompute the whole prefill every time."""

    def __init__(self, cost_model: CostModel | None = None):
        self.cost_model = cost_model or CostModel()

    def ttft_for_length(self, num_tokens: int) -> TTFTBreakdown:
        prefill = self.cost_model.prefill_seconds(num_tokens)
        return TTFTBreakdown(load_seconds=0.0, decode_seconds=prefill)
