"""Pluggable storage backends for the durable context database.

The context store persists three kinds of objects — KV snapshots, serialized
vector indexes, and the manifest — as opaque byte blobs under string keys.
:class:`StorageBackend` is the adapter interface that hides *where* those
blobs live; the context store, the snapshot/index serializers, and the
manifest never touch the filesystem directly.

Two implementations ship:

* :class:`FilesystemBackend` — one file per key under a root directory.
  Writes are **atomic** (temp file + ``os.replace``), so a crash mid-write
  leaves either the old object or nothing, never a truncated blob the next
  process trips over.
* :class:`InMemoryBackend` — a dict.  Used by tests and as a scratch store;
  sharing one instance between two stores models two processes over shared
  storage without touching disk.
"""

from __future__ import annotations

import abc
import os
import tempfile
from pathlib import Path

from ..errors import ContextLoadError, StorageError

__all__ = [
    "StorageBackend",
    "FilesystemBackend",
    "InMemoryBackend",
    "make_backend",
    "register_backend",
    "unregister_backend",
    "available_backends",
]


class StorageBackend(abc.ABC):
    """Byte-blob storage under string keys (the durable-tier adapter).

    Keys are relative, ``/``-separated paths (``"ctx-0001.npz"``,
    ``"manifest.json"``).  ``write_bytes`` must be atomic: a reader never
    observes a partially written object under a key.
    """

    @abc.abstractmethod
    def write_bytes(self, key: str, data: bytes) -> None:
        """Atomically store ``data`` under ``key`` (replacing any old value)."""

    @abc.abstractmethod
    def read_bytes(self, key: str) -> bytes:
        """The blob stored under ``key``; raises :class:`ContextLoadError`
        when the key does not exist."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` currently holds a blob."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns False (a no-op) when it was absent."""

    @abc.abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """All stored keys starting with ``prefix``, sorted.

        ``prefix`` is a plain *string* prefix of the key, **not** a directory:
        ``list_keys("ctx-1")`` matches ``"ctx-1.npz"`` and
        ``"ctx-1/part.npz"`` alike, and ``list_keys("a/")`` matches exactly
        the keys under the ``a/`` key namespace.  Every backend must follow
        this contract so byte accounting (:meth:`total_bytes`) and per-context
        key enumeration behave identically across backends.
        """

    @abc.abstractmethod
    def size_bytes(self, key: str) -> int:
        """Size of the blob under ``key`` (0 when absent)."""

    @property
    def location(self) -> str | None:
        """A human-readable location (directory path), if the backend has one."""
        return None

    def total_bytes(self, prefix: str = "") -> int:
        """Combined size of every blob whose key starts with ``prefix``.

        Follows the same key-string prefix semantics as :meth:`list_keys`.
        """
        return sum(self.size_bytes(key) for key in self.list_keys(prefix))


class FilesystemBackend(StorageBackend):
    """One file per key under ``root``; atomic writes via temp + rename."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FilesystemBackend({str(self.root)!r})"

    @property
    def location(self) -> str | None:
        return str(self.root)

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if self.root.resolve() not in path.parents and path != self.root.resolve():
            raise StorageError(f"key {key!r} escapes the backend root {self.root}")
        return path

    def write_bytes(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # write-temp-then-rename: a crash leaves the old object (or nothing),
        # never a truncated file under the real key
        fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def read_bytes(self, key: str) -> bytes:
        path = self._path(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise ContextLoadError(f"no object stored under key {key!r} in {self.root}") from None

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def list_keys(self, prefix: str = "") -> list[str]:
        keys = []
        for path in self.root.rglob("*"):
            if not path.is_file():
                continue
            # skip only our own in-flight atomic-write temps (".<name>.*.tmp"
            # from write_bytes) — a legitimate key that merely *ends* in
            # ".tmp" must stay visible
            if path.name.startswith(".") and path.name.endswith(".tmp"):
                continue
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def size_bytes(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except FileNotFoundError:
            return 0


class InMemoryBackend(StorageBackend):
    """Dict-backed storage: durable for the life of the backend object.

    Two context stores sharing one instance see each other's writes, which
    is how the tests model two processes over a shared directory.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"InMemoryBackend(keys={len(self._blobs)})"

    def write_bytes(self, key: str, data: bytes) -> None:
        self._blobs[key] = bytes(data)

    def read_bytes(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise ContextLoadError(f"no object stored under key {key!r} (in-memory backend)") from None

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def delete(self, key: str) -> bool:
        return self._blobs.pop(key, None) is not None

    def list_keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._blobs if key.startswith(prefix))

    def size_bytes(self, key: str) -> int:
        blob = self._blobs.get(key)
        return len(blob) if blob is not None else 0


def _make_filesystem_backend(path: str | Path | None) -> StorageBackend:
    if path is None:
        raise StorageError("the filesystem backend requires a directory path")
    return FilesystemBackend(path)


#: named backend factories; a factory takes the (optional) location path and
#: returns a ready backend.  Extensible so a remote/object-store backend can
#: plug in without touching core (`register_backend`).
_BACKEND_FACTORIES: dict[str, "object"] = {
    "filesystem": _make_filesystem_backend,
    "memory": lambda path=None: InMemoryBackend(),
}


def register_backend(kind: str, factory, *, overwrite: bool = False) -> None:
    """Register a named backend factory for :func:`make_backend`.

    ``factory`` is called as ``factory(path)`` where ``path`` may be ``None``.
    Re-registering an existing name raises unless ``overwrite=True`` — the
    built-in names stay protected against accidental shadowing.
    """
    if not kind:
        raise StorageError("backend kind must be a non-empty string")
    if kind in _BACKEND_FACTORIES and not overwrite:
        raise StorageError(
            f"storage backend {kind!r} is already registered (pass overwrite=True to replace it)"
        )
    _BACKEND_FACTORIES[kind] = factory


def unregister_backend(kind: str) -> bool:
    """Remove a registered factory (tests clean up after themselves).

    The built-in ``"filesystem"``/``"memory"`` factories cannot be removed.
    """
    if kind in ("filesystem", "memory"):
        raise StorageError(f"the built-in backend {kind!r} cannot be unregistered")
    return _BACKEND_FACTORIES.pop(kind, None) is not None


def available_backends() -> tuple[str, ...]:
    """The currently registered backend names, sorted."""
    return tuple(sorted(_BACKEND_FACTORIES))


def make_backend(kind: str, path: str | Path | None = None) -> StorageBackend:
    """Construct a backend by registered name.

    ``"filesystem"`` (requires ``path``) and ``"memory"`` are built in;
    additional kinds come from :func:`register_backend`.
    """
    factory = _BACKEND_FACTORIES.get(kind)
    if factory is None:
        names = ", ".join(repr(name) for name in available_backends())
        raise StorageError(f"unknown storage backend {kind!r} (registered: {names})")
    backend = factory(path)
    if not isinstance(backend, StorageBackend):
        raise StorageError(
            f"backend factory for {kind!r} returned {type(backend).__name__}, "
            "expected a StorageBackend"
        )
    return backend
