"""Pluggable storage backends for the durable context database.

The context store persists three kinds of objects — KV snapshots, serialized
vector indexes, and the manifest — as opaque byte blobs under string keys.
:class:`StorageBackend` is the adapter interface that hides *where* those
blobs live; the context store, the snapshot/index serializers, and the
manifest never touch the filesystem directly.

Two implementations ship:

* :class:`FilesystemBackend` — one file per key under a root directory.
  Writes are **atomic** (temp file + ``os.replace``), so a crash mid-write
  leaves either the old object or nothing, never a truncated blob the next
  process trips over.
* :class:`InMemoryBackend` — a dict.  Used by tests and as a scratch store;
  sharing one instance between two stores models two processes over shared
  storage without touching disk.
"""

from __future__ import annotations

import abc
import os
import tempfile
from pathlib import Path

from ..errors import ContextLoadError, StorageError

__all__ = ["StorageBackend", "FilesystemBackend", "InMemoryBackend", "make_backend"]


class StorageBackend(abc.ABC):
    """Byte-blob storage under string keys (the durable-tier adapter).

    Keys are relative, ``/``-separated paths (``"ctx-0001.npz"``,
    ``"manifest.json"``).  ``write_bytes`` must be atomic: a reader never
    observes a partially written object under a key.
    """

    @abc.abstractmethod
    def write_bytes(self, key: str, data: bytes) -> None:
        """Atomically store ``data`` under ``key`` (replacing any old value)."""

    @abc.abstractmethod
    def read_bytes(self, key: str) -> bytes:
        """The blob stored under ``key``; raises :class:`ContextLoadError`
        when the key does not exist."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` currently holds a blob."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns False (a no-op) when it was absent."""

    @abc.abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """All stored keys starting with ``prefix``, sorted."""

    @abc.abstractmethod
    def size_bytes(self, key: str) -> int:
        """Size of the blob under ``key`` (0 when absent)."""

    @property
    def location(self) -> str | None:
        """A human-readable location (directory path), if the backend has one."""
        return None

    def total_bytes(self, prefix: str = "") -> int:
        """Combined size of every blob under ``prefix``."""
        return sum(self.size_bytes(key) for key in self.list_keys(prefix))


class FilesystemBackend(StorageBackend):
    """One file per key under ``root``; atomic writes via temp + rename."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FilesystemBackend({str(self.root)!r})"

    @property
    def location(self) -> str | None:
        return str(self.root)

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if self.root.resolve() not in path.parents and path != self.root.resolve():
            raise StorageError(f"key {key!r} escapes the backend root {self.root}")
        return path

    def write_bytes(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # write-temp-then-rename: a crash leaves the old object (or nothing),
        # never a truncated file under the real key
        fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def read_bytes(self, key: str) -> bytes:
        path = self._path(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise ContextLoadError(f"no object stored under key {key!r} in {self.root}") from None

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def list_keys(self, prefix: str = "") -> list[str]:
        keys = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.suffix == ".tmp":
                continue
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def size_bytes(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except FileNotFoundError:
            return 0


class InMemoryBackend(StorageBackend):
    """Dict-backed storage: durable for the life of the backend object.

    Two context stores sharing one instance see each other's writes, which
    is how the tests model two processes over a shared directory.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"InMemoryBackend(keys={len(self._blobs)})"

    def write_bytes(self, key: str, data: bytes) -> None:
        self._blobs[key] = bytes(data)

    def read_bytes(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise ContextLoadError(f"no object stored under key {key!r} (in-memory backend)") from None

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def delete(self, key: str) -> bool:
        return self._blobs.pop(key, None) is not None

    def list_keys(self, prefix: str = "") -> list[str]:
        return sorted(key for key in self._blobs if key.startswith(prefix))

    def size_bytes(self, key: str) -> int:
        blob = self._blobs.get(key)
        return len(blob) if blob is not None else 0


def make_backend(kind: str, path: str | Path | None = None) -> StorageBackend:
    """Construct a backend by name: ``"filesystem"`` (requires ``path``) or
    ``"memory"``."""
    if kind == "filesystem":
        if path is None:
            raise StorageError("the filesystem backend requires a directory path")
        return FilesystemBackend(path)
    if kind == "memory":
        return InMemoryBackend()
    raise StorageError(f"unknown storage backend {kind!r} (expected 'filesystem' or 'memory')")
