"""Vector files: the on-disk layout of one attention head's vectors.

Each vector file stores the key (or value) vectors of a single attention head
of a single layer, split into fixed-capacity data blocks, plus the graph
adjacency of that head's index split into index blocks.  The file is backed by
a directory containing one ``.npy`` per data block and one ``.npz`` per index
block, with a JSON manifest — simple, append-friendly and mmap-able, which is
the property the paper's SPDK layout is after (insert/delete without
rewriting the file, block-granular reads).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import BlockNotFoundError, StorageError
from .blocks import BlockId, BlockType, DataBlock, IndexBlock

__all__ = ["VectorFileMeta", "VectorFile"]


@dataclass
class VectorFileMeta:
    """Manifest of one vector file."""

    file_id: str
    dim: int
    block_capacity: int
    num_vectors: int = 0
    num_data_blocks: int = 0
    num_index_blocks: int = 0

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "VectorFileMeta":
        return cls(**json.loads(payload))


class VectorFile:
    """Block-structured storage of one head's vectors and adjacency."""

    def __init__(self, directory: str | Path, file_id: str, dim: int, block_capacity: int = 256):
        self.directory = Path(directory) / file_id
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = self.directory / "manifest.json"
        if manifest.exists():
            self.meta = VectorFileMeta.from_json(manifest.read_text())
            if self.meta.dim != dim:
                raise StorageError(
                    f"vector file {file_id!r} has dim {self.meta.dim}, expected {dim}"
                )
        else:
            self.meta = VectorFileMeta(file_id=file_id, dim=dim, block_capacity=block_capacity)
            self._write_manifest()

    # ------------------------------------------------------------------
    # manifest and paths
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        (self.directory / "manifest.json").write_text(self.meta.to_json())

    def _data_block_path(self, number: int) -> Path:
        return self.directory / f"data_{number:06d}.npy"

    def _index_block_path(self, number: int) -> Path:
        return self.directory / f"index_{number:06d}.npz"

    @property
    def file_id(self) -> str:
        return self.meta.file_id

    @property
    def num_vectors(self) -> int:
        return self.meta.num_vectors

    @property
    def num_data_blocks(self) -> int:
        return self.meta.num_data_blocks

    @property
    def num_index_blocks(self) -> int:
        return self.meta.num_index_blocks

    # ------------------------------------------------------------------
    # data blocks
    # ------------------------------------------------------------------
    def append_vectors(self, vectors: np.ndarray) -> list[BlockId]:
        """Append ``(n, dim)`` vectors, creating as many data blocks as needed.

        The last existing block is extended first if it has spare capacity, so
        repeated small appends do not fragment the file.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self.meta.dim:
            raise StorageError(f"expected (n, {self.meta.dim}) vectors, got {vectors.shape}")
        written: list[BlockId] = []
        remaining = vectors

        # top up the last block when it is not full
        if self.meta.num_data_blocks > 0:
            last_number = self.meta.num_data_blocks - 1
            last = self.read_data_block(last_number)
            spare = self.meta.block_capacity - last.num_vectors
            if spare > 0 and remaining.shape[0] > 0:
                take = remaining[:spare]
                merged = np.concatenate([last.vectors, take], axis=0)
                np.save(self._data_block_path(last_number), merged)
                self.meta.num_vectors += take.shape[0]
                remaining = remaining[spare:]
                written.append(BlockId(self.file_id, last_number))

        while remaining.shape[0] > 0:
            number = self.meta.num_data_blocks
            chunk = remaining[: self.meta.block_capacity]
            np.save(self._data_block_path(number), np.ascontiguousarray(chunk))
            self.meta.num_data_blocks += 1
            self.meta.num_vectors += chunk.shape[0]
            remaining = remaining[self.meta.block_capacity :]
            written.append(BlockId(self.file_id, number))
        self._write_manifest()
        return written

    def read_data_block(self, number: int) -> DataBlock:
        path = self._data_block_path(number)
        if not path.exists():
            raise BlockNotFoundError(f"data block {number} of {self.file_id!r} does not exist")
        vectors = np.load(path)
        return DataBlock(
            block_id=BlockId(self.file_id, number),
            start_position=number * self.meta.block_capacity,
            vectors=vectors,
        )

    def block_number_for_position(self, position: int) -> int:
        if position < 0 or position >= self.meta.num_vectors:
            raise BlockNotFoundError(f"position {position} out of range ({self.meta.num_vectors} vectors)")
        return position // self.meta.block_capacity

    def read_vectors(self, positions: np.ndarray) -> np.ndarray:
        """Gather vectors at arbitrary positions (one block read per touched block)."""
        positions = np.asarray(positions, dtype=np.int64)
        output = np.empty((positions.shape[0], self.meta.dim), dtype=np.float32)
        touched = {}
        for out_idx, position in enumerate(positions):
            number = self.block_number_for_position(int(position))
            if number not in touched:
                touched[number] = self.read_data_block(number)
            output[out_idx] = touched[number].vector_at(int(position))
        return output

    def read_all_vectors(self) -> np.ndarray:
        """Materialise every vector in the file, in position order."""
        if self.meta.num_data_blocks == 0:
            return np.empty((0, self.meta.dim), dtype=np.float32)
        blocks = [self.read_data_block(i).vectors for i in range(self.meta.num_data_blocks)]
        return np.concatenate(blocks, axis=0)

    # ------------------------------------------------------------------
    # index blocks
    # ------------------------------------------------------------------
    def write_adjacency(self, adjacency: list[np.ndarray] | list[list[int]], nodes_per_block: int = 256) -> list[BlockId]:
        """Persist a graph adjacency as a chain of index blocks."""
        written: list[BlockId] = []
        number = self.meta.num_index_blocks
        for start in range(0, len(adjacency), nodes_per_block):
            chunk = adjacency[start : start + nodes_per_block]
            arrays = {f"n{i}": np.asarray(neighbors, dtype=np.int32) for i, neighbors in enumerate(chunk)}
            arrays["start_node"] = np.asarray([start], dtype=np.int64)
            np.savez(self._index_block_path(number), **arrays)
            written.append(BlockId(self.file_id, number))
            number += 1
        self.meta.num_index_blocks = number
        self._write_manifest()
        return written

    def read_index_block(self, number: int) -> IndexBlock:
        path = self._index_block_path(number)
        if not path.exists():
            raise BlockNotFoundError(f"index block {number} of {self.file_id!r} does not exist")
        with np.load(path) as archive:
            start_node = int(archive["start_node"][0])
            lists = []
            i = 0
            while f"n{i}" in archive.files:
                lists.append(archive[f"n{i}"])
                i += 1
        next_block = BlockId(self.file_id, number + 1) if number + 1 < self.meta.num_index_blocks else None
        return IndexBlock(
            block_id=BlockId(self.file_id, number),
            start_node=start_node,
            neighbor_lists=lists,
            next_block=next_block,
        )

    def read_adjacency(self) -> list[np.ndarray]:
        """Materialise the full adjacency by walking the index-block chain."""
        adjacency: list[np.ndarray] = []
        for number in range(self.meta.num_index_blocks):
            block = self.read_index_block(number)
            adjacency.extend(block.neighbor_lists)
        return adjacency

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def delete(self) -> None:
        """Remove every block and the manifest from disk."""
        for path in self.directory.glob("*"):
            path.unlink()
        self.directory.rmdir()
