"""Block model of the vector file system (Section 7.3 of the paper).

Vectors and graph adjacency are stored in separate block types:

* **data blocks** hold the raw key/value vectors of a run of token positions;
* **index blocks** hold a chunk of the graph adjacency (neighbour lists),
  linked so the graph can be traversed block by block.

Separating the two lets the buffer manager keep hot index blocks resident
while streaming data blocks through, and lets vectors be appended or deleted
without rewriting the whole file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BlockType", "BlockId", "DataBlock", "IndexBlock", "ResidencyBlock"]


class BlockType:
    """String constants identifying the block kinds."""

    DATA = "data"
    INDEX = "index"


@dataclass(frozen=True)
class BlockId:
    """Globally unique block address: (file id, block number)."""

    file_id: str
    number: int

    def __str__(self) -> str:
        return f"{self.file_id}#{self.number}"


@dataclass
class DataBlock:
    """A run of vectors for consecutive token positions."""

    block_id: BlockId
    start_position: int
    vectors: np.ndarray  # (num_vectors, dim), float32

    @property
    def block_type(self) -> str:
        return BlockType.DATA

    @property
    def num_vectors(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def stop_position(self) -> int:
        return self.start_position + self.num_vectors

    @property
    def nbytes(self) -> int:
        return int(self.vectors.nbytes)

    def contains(self, position: int) -> bool:
        return self.start_position <= position < self.stop_position

    def vector_at(self, position: int) -> np.ndarray:
        if not self.contains(position):
            raise IndexError(f"position {position} not in block {self.block_id}")
        return self.vectors[position - self.start_position]


@dataclass
class ResidencyBlock:
    """An accounting-only block: the bytes of a logical resident object.

    The DB registers whole-context KV snapshots and fine indexes as residency
    blocks so the buffer manager can track their hot-set hit ratios without
    owning the underlying arrays (those stay in the context store).
    """

    block_id: str
    resident_bytes: int
    kind: str = BlockType.DATA

    @property
    def block_type(self) -> str:
        return self.kind

    @property
    def nbytes(self) -> int:
        return int(self.resident_bytes)


@dataclass
class IndexBlock:
    """A chunk of graph adjacency: neighbour lists of a node range."""

    block_id: BlockId
    start_node: int
    neighbor_lists: list[np.ndarray] = field(default_factory=list)
    next_block: BlockId | None = None

    @property
    def block_type(self) -> str:
        return BlockType.INDEX

    @property
    def num_nodes(self) -> int:
        return len(self.neighbor_lists)

    @property
    def stop_node(self) -> int:
        return self.start_node + self.num_nodes

    @property
    def nbytes(self) -> int:
        return int(sum(np.asarray(l).nbytes for l in self.neighbor_lists))

    def contains(self, node: int) -> bool:
        return self.start_node <= node < self.stop_node

    def neighbors_of(self, node: int) -> np.ndarray:
        if not self.contains(node):
            raise IndexError(f"node {node} not in block {self.block_id}")
        return np.asarray(self.neighbor_lists[node - self.start_node], dtype=np.int32)
