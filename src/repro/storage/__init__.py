"""Vector storage engine: block layout, vector files, buffer manager, and the
durable-tier storage backends + manifest of the context database."""

from .backend import FilesystemBackend, InMemoryBackend, StorageBackend, make_backend
from .blocks import BlockId, BlockType, DataBlock, IndexBlock, ResidencyBlock
from .buffer_manager import BufferFrame, BufferManager, BufferStats
from .filesystem import VectorFileKey, VectorFileSystem
from .io_model import IOModel, IOStats
from .manifest import MANIFEST_FORMAT_VERSION, MANIFEST_KEY, ContextManifest, ManifestEntry
from .vector_file import VectorFile, VectorFileMeta

__all__ = [
    "BlockId",
    "BlockType",
    "BufferFrame",
    "BufferManager",
    "BufferStats",
    "ContextManifest",
    "DataBlock",
    "FilesystemBackend",
    "IOModel",
    "IOStats",
    "InMemoryBackend",
    "IndexBlock",
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_KEY",
    "ManifestEntry",
    "ResidencyBlock",
    "StorageBackend",
    "VectorFile",
    "VectorFileKey",
    "VectorFileMeta",
    "VectorFileSystem",
    "make_backend",
]
