"""Vector storage engine: block layout, vector files, buffer manager."""

from .blocks import BlockId, BlockType, DataBlock, IndexBlock, ResidencyBlock
from .buffer_manager import BufferFrame, BufferManager, BufferStats
from .filesystem import VectorFileKey, VectorFileSystem
from .io_model import IOModel, IOStats
from .vector_file import VectorFile, VectorFileMeta

__all__ = [
    "BlockId",
    "BlockType",
    "BufferFrame",
    "BufferManager",
    "BufferStats",
    "DataBlock",
    "IOModel",
    "IOStats",
    "IndexBlock",
    "ResidencyBlock",
    "VectorFile",
    "VectorFileKey",
    "VectorFileMeta",
    "VectorFileSystem",
]
