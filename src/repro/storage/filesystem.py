"""The vector file system: vector files + buffer manager + IO accounting.

One :class:`VectorFileSystem` manages every vector file of a deployment,
keyed by ``(context, layer, head, kind)``.  Reads go through the buffer
manager (hot index blocks stay resident, cold data blocks stream through) and
every miss is accounted against the SPDK/kernel IO model.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import StorageError
from .blocks import BlockId
from .buffer_manager import BufferManager
from .io_model import IOModel
from .vector_file import VectorFile

__all__ = ["VectorFileKey", "VectorFileSystem"]


@dataclass(frozen=True)
class VectorFileKey:
    """Identifies one vector file: a head of a layer of a context."""

    context_id: str
    layer: int
    head: int
    kind: str = "key"  # "key" or "value"

    @property
    def file_id(self) -> str:
        return f"{self.context_id}_L{self.layer:02d}_H{self.head:02d}_{self.kind}"


class VectorFileSystem:
    """Manages vector files on disk with buffered, IO-accounted access."""

    def __init__(
        self,
        root: str | Path,
        block_capacity: int = 256,
        buffer_capacity_bytes: int = 64 * 1024 * 1024,
        use_spdk: bool = True,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.block_capacity = block_capacity
        self.buffer = BufferManager(buffer_capacity_bytes)
        self.io = IOModel(use_spdk=use_spdk)
        self._files: dict[str, VectorFile] = {}

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    def open_file(self, key: VectorFileKey, dim: int) -> VectorFile:
        """Open (or create) the vector file identified by ``key``."""
        file = self._files.get(key.file_id)
        if file is None:
            file = VectorFile(self.root, key.file_id, dim=dim, block_capacity=self.block_capacity)
            self._files[key.file_id] = file
        elif file.meta.dim != dim:
            raise StorageError(f"vector file {key.file_id!r} has dim {file.meta.dim}, expected {dim}")
        return file

    def list_files(self) -> list[str]:
        return sorted(self._files)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write_head_vectors(self, key: VectorFileKey, vectors: np.ndarray) -> None:
        """Append a head's vectors, accounting the write IO."""
        vectors = np.asarray(vectors, dtype=np.float32)
        file = self.open_file(key, vectors.shape[1])
        file.append_vectors(vectors)
        self.io.record_write(int(vectors.nbytes))

    def write_head_adjacency(self, key: VectorFileKey, adjacency: list[np.ndarray] | list[list[int]]) -> None:
        """Persist a head's graph adjacency as index blocks."""
        if key.file_id not in self._files:
            raise StorageError(f"vector file {key.file_id!r} must hold vectors before adjacency")
        file = self._files[key.file_id]
        blocks = file.write_adjacency(adjacency)
        nbytes = sum(file.read_index_block(b.number).nbytes for b in blocks)
        self.io.record_write(int(nbytes))

    def store_context_layer(
        self,
        context_id: str,
        layer: int,
        keys: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Persist one layer of a context: per-head key and value files."""
        for head in range(keys.shape[0]):
            self.write_head_vectors(VectorFileKey(context_id, layer, head, "key"), keys[head])
            self.write_head_vectors(VectorFileKey(context_id, layer, head, "value"), values[head])

    # ------------------------------------------------------------------
    # reads (buffered)
    # ------------------------------------------------------------------
    def read_vectors(self, key: VectorFileKey, positions: np.ndarray) -> np.ndarray:
        """Gather vectors by position through the buffer manager."""
        file = self._files.get(key.file_id)
        if file is None:
            raise StorageError(f"vector file {key.file_id!r} is not open")
        positions = np.asarray(positions, dtype=np.int64)
        output = np.empty((positions.shape[0], file.meta.dim), dtype=np.float32)
        for out_idx, position in enumerate(positions):
            number = file.block_number_for_position(int(position))
            block_id = BlockId(file.file_id, number)
            if block_id not in self.buffer:
                self.io.record_read(file.meta.block_capacity * file.meta.dim * 4)
            block = self.buffer.get(block_id, loader=lambda n=number: file.read_data_block(n))
            output[out_idx] = block.vector_at(int(position))
        return output

    def read_adjacency(self, key: VectorFileKey, node: int) -> np.ndarray:
        """Read one node's neighbour list through the buffer manager."""
        file = self._files.get(key.file_id)
        if file is None:
            raise StorageError(f"vector file {key.file_id!r} is not open")
        nodes_per_block = 256
        number = node // nodes_per_block
        block_id = BlockId(file.file_id, number)
        if block_id not in self.buffer:
            self.io.record_read(4 * 1024)
        block = self.buffer.get(block_id, loader=lambda n=number: file.read_index_block(n))
        return block.neighbors_of(node)

    def read_all_vectors(self, key: VectorFileKey) -> np.ndarray:
        """Materialise a head's full vector matrix (sequential scan)."""
        file = self._files.get(key.file_id)
        if file is None:
            raise StorageError(f"vector file {key.file_id!r} is not open")
        vectors = file.read_all_vectors()
        self.io.record_read(int(vectors.nbytes))
        return vectors
