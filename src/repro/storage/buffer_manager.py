"""Purpose-built buffer manager (Section 7.3 of the paper).

A byte-budgeted block cache with a **type-aware eviction policy**: index
blocks (graph adjacency, touched on every traversal) are preferred residents;
data blocks (raw vectors, typically read once per attention computation) are
evicted first.  Within each class eviction is LRU.  Pinned blocks are never
evicted.  Access is serialised with a lock so multiple worker threads can
share one pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import BufferPoolExhaustedError
from .blocks import BlockId, BlockType, DataBlock, IndexBlock

__all__ = ["BufferStats", "BufferFrame", "BufferManager"]


@dataclass
class BufferStats:
    """Hit/miss/eviction counters of a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def num_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / max(self.num_accesses, 1)


@dataclass
class BufferFrame:
    """One cached block plus its bookkeeping."""

    block: DataBlock | IndexBlock
    pin_count: int = 0

    @property
    def nbytes(self) -> int:
        return self.block.nbytes

    @property
    def block_type(self) -> str:
        return self.block.block_type


class BufferManager:
    """Byte-budgeted block cache with class-aware LRU eviction."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._frames: OrderedDict[str, BufferFrame] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(frame.nbytes for frame in self._frames.values())

    @property
    def num_blocks(self) -> int:
        return len(self._frames)

    def resident_ids(self) -> list[str]:
        return list(self._frames)

    def __contains__(self, block_id: BlockId | str) -> bool:
        return str(block_id) in self._frames

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId | str, loader=None, pin: bool = False) -> DataBlock | IndexBlock:
        """Return the cached block, loading it with ``loader()`` on a miss.

        ``loader`` must be a zero-argument callable returning the block; it is
        required on a miss.  ``pin`` keeps the block ineligible for eviction
        until :meth:`unpin` is called.
        """
        key = str(block_id)
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(key)
                if pin:
                    frame.pin_count += 1
                return frame.block
            self.stats.misses += 1
        if loader is None:
            raise BufferPoolExhaustedError(f"block {key} not cached and no loader supplied")
        block = loader()
        self.put(block, pin=pin)
        return block

    def put(self, block: DataBlock | IndexBlock, pin: bool = False) -> None:
        """Insert a block, evicting colder blocks as needed."""
        key = str(block.block_id)
        with self._lock:
            if block.nbytes > self.capacity_bytes:
                raise BufferPoolExhaustedError(
                    f"block {key} ({block.nbytes} bytes) exceeds pool capacity {self.capacity_bytes}"
                )
            self._evict_until_fits(block.nbytes, incoming_key=key)
            frame = BufferFrame(block=block, pin_count=1 if pin else 0)
            self._frames[key] = frame
            self._frames.move_to_end(key)

    def pin(self, block_id: BlockId | str) -> None:
        key = str(block_id)
        with self._lock:
            self._frames[key].pin_count += 1

    def unpin(self, block_id: BlockId | str) -> None:
        key = str(block_id)
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None and frame.pin_count > 0:
                frame.pin_count -= 1

    def clear(self) -> None:
        with self._lock:
            self._frames.clear()

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _eviction_candidates(self) -> list[str]:
        """Keys in eviction order: data blocks (LRU first), then index blocks."""
        data_keys = [k for k, f in self._frames.items() if f.block_type == BlockType.DATA and f.pin_count == 0]
        index_keys = [k for k, f in self._frames.items() if f.block_type == BlockType.INDEX and f.pin_count == 0]
        return data_keys + index_keys

    def _evict_until_fits(self, incoming_bytes: int, incoming_key: str) -> None:
        existing = self._frames.pop(incoming_key, None)
        current = sum(frame.nbytes for frame in self._frames.values())
        if existing is not None:
            pass  # replacing a block: its bytes are already excluded
        if current + incoming_bytes <= self.capacity_bytes:
            return
        for key in self._eviction_candidates():
            frame = self._frames.pop(key)
            current -= frame.nbytes
            self.stats.evictions += 1
            if current + incoming_bytes <= self.capacity_bytes:
                return
        if current + incoming_bytes > self.capacity_bytes:
            raise BufferPoolExhaustedError(
                f"cannot fit {incoming_bytes} bytes: {current} bytes pinned or resident "
                f"of {self.capacity_bytes} capacity"
            )
