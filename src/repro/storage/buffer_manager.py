"""Purpose-built buffer manager (Section 7.3 of the paper).

A byte-budgeted block cache with a **type-aware eviction policy**: index
blocks (graph adjacency, touched on every traversal) are preferred residents;
data blocks (raw vectors, typically read once per attention computation) are
evicted first.  Within each class eviction is LRU.  Pinned blocks are never
evicted.  Access is serialised with a lock so multiple worker threads can
share one pool; concurrent misses on the same block are single-flighted so
``loader()`` runs at most once per block at a time.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import BufferPoolExhaustedError
from .blocks import BlockId, BlockType, DataBlock, IndexBlock

__all__ = ["BufferStats", "BufferFrame", "BufferManager"]


@dataclass
class BufferStats:
    """Hit/miss/eviction counters of a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def num_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / max(self.num_accesses, 1)


@dataclass
class BufferFrame:
    """One cached block plus its bookkeeping."""

    block: DataBlock | IndexBlock
    pin_count: int = 0

    @property
    def nbytes(self) -> int:
        return self.block.nbytes

    @property
    def block_type(self) -> str:
        return self.block.block_type


class BufferManager:
    """Byte-budgeted block cache with class-aware LRU eviction."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._frames: OrderedDict[str, BufferFrame] = OrderedDict()
        self._lock = threading.Lock()
        self._used_bytes = 0
        self._inflight: dict[str, threading.Event] = {}
        self.stats = BufferStats()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def num_blocks(self) -> int:
        return len(self._frames)

    def resident_ids(self) -> list[str]:
        return list(self._frames)

    def resident_blocks(self) -> dict[str, int]:
        """Mapping of cached block id → bytes (for accounting cross-checks)."""
        with self._lock:
            return {key: frame.nbytes for key, frame in self._frames.items()}

    def __contains__(self, block_id: BlockId | str) -> bool:
        return str(block_id) in self._frames

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId | str, loader=None, pin: bool = False) -> DataBlock | IndexBlock:
        """Return the cached block, loading it with ``loader()`` on a miss.

        ``loader`` must be a zero-argument callable returning the block; it is
        required on a miss.  ``pin`` keeps the block ineligible for eviction
        until :meth:`unpin` is called.  Concurrent misses on the same block
        are single-flighted: one caller runs the loader, the others wait for
        it and then take the cached result.
        """
        key = str(block_id)
        while True:
            with self._lock:
                frame = self._frames.get(key)
                if frame is not None:
                    self.stats.hits += 1
                    self._frames.move_to_end(key)
                    if pin:
                        frame.pin_count += 1
                    return frame.block
                pending = self._inflight.get(key)
                if pending is None:
                    self.stats.misses += 1
                    if loader is None:
                        raise BufferPoolExhaustedError(
                            f"block {key} not cached and no loader supplied"
                        )
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            # another thread is loading this block: wait, then re-check the
            # pool (if the load failed or was evicted, this thread retries as
            # the loader)
            pending.wait()
        try:
            block = loader()
            self.put(block, pin=pin)
            return block
        finally:
            with self._lock:
                del self._inflight[key]
            event.set()

    def put(self, block: DataBlock | IndexBlock, pin: bool = False) -> None:
        """Insert a block, evicting colder blocks as needed."""
        key = str(block.block_id)
        with self._lock:
            if block.nbytes > self.capacity_bytes:
                raise BufferPoolExhaustedError(
                    f"block {key} ({block.nbytes} bytes) exceeds pool capacity {self.capacity_bytes}"
                )
            self._evict_until_fits(block.nbytes, incoming_key=key)
            frame = BufferFrame(block=block, pin_count=1 if pin else 0)
            self._frames[key] = frame
            self._frames.move_to_end(key)
            self._used_bytes += block.nbytes

    def remove(self, block_id: BlockId | str) -> bool:
        """Drop a block from the pool (no eviction counted); True if present."""
        key = str(block_id)
        with self._lock:
            frame = self._frames.pop(key, None)
            if frame is None:
                return False
            self._used_bytes -= frame.nbytes
            return True

    def pin(self, block_id: BlockId | str) -> None:
        key = str(block_id)
        with self._lock:
            self._frames[key].pin_count += 1

    def unpin(self, block_id: BlockId | str) -> None:
        key = str(block_id)
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None and frame.pin_count > 0:
                frame.pin_count -= 1

    def clear(self) -> None:
        with self._lock:
            self._frames.clear()
            self._used_bytes = 0

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _eviction_candidates(self) -> list[str]:
        """Keys in eviction order: data blocks (LRU first), then index blocks."""
        data_keys = [k for k, f in self._frames.items() if f.block_type == BlockType.DATA and f.pin_count == 0]
        index_keys = [k for k, f in self._frames.items() if f.block_type == BlockType.INDEX and f.pin_count == 0]
        return data_keys + index_keys

    def _evict_until_fits(self, incoming_bytes: int, incoming_key: str) -> None:
        existing = self._frames.pop(incoming_key, None)
        if existing is not None:
            # replacing a block: its bytes no longer count against the budget
            self._used_bytes -= existing.nbytes
        if self._used_bytes + incoming_bytes <= self.capacity_bytes:
            return
        for key in self._eviction_candidates():
            frame = self._frames.pop(key)
            self._used_bytes -= frame.nbytes
            self.stats.evictions += 1
            if self._used_bytes + incoming_bytes <= self.capacity_bytes:
                return
        raise BufferPoolExhaustedError(
            f"cannot fit {incoming_bytes} bytes: {self._used_bytes} bytes pinned or resident "
            f"of {self.capacity_bytes} capacity"
        )
