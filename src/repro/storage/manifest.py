"""The persistent manifest of the durable context database.

The manifest is the database's catalog: one JSON object recording, for every
persisted context, its id, token sequence, snapshot/index object keys, byte
sizes, and index policy.  A restarted :class:`~repro.core.service.InferenceService`
— or a second process sharing the directory — reads it on
``ContextStore.open`` and can prefix-match and serve contexts it never
prefilled.

Crash safety comes from two sides: the backend's atomic write (temp +
rename, so a reader never sees a torn manifest) and a monotonically
increasing **generation** stamp, bumped on every write, so stale copies are
detectable and a reopened store continues the sequence instead of resetting
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ContextLoadError
from .backend import StorageBackend

__all__ = ["MANIFEST_FORMAT_VERSION", "MANIFEST_KEY", "ManifestEntry", "ContextManifest"]

MANIFEST_FORMAT_VERSION = 1
MANIFEST_KEY = "manifest.json"


@dataclass
class ManifestEntry:
    """Catalog row for one persisted context."""

    context_id: str
    tokens: list[int]
    num_layers: int
    kv_bytes: int
    snapshot_key: str
    index_key: str | None = None
    """Key of the serialized fine/coarse index bundle; ``None`` when the
    context's indexes were never persisted (reload falls back to rebuild)."""
    index_bytes: int = 0
    wants_fine_indexes: bool = True
    wants_coarse_indexes: bool = True
    prefix_matchable: bool = True
    """Whether the context participates in token-trie prefix matching.  A
    *shard* of a context stores an arbitrary mid-document token slice, which
    must never be offered as a reusable prompt prefix; shards set this
    False."""
    metadata: dict[str, str] = field(default_factory=dict)

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    def to_json(self) -> dict:
        return {
            "context_id": self.context_id,
            "tokens": self.tokens,
            "num_layers": self.num_layers,
            "kv_bytes": self.kv_bytes,
            "snapshot_key": self.snapshot_key,
            "index_key": self.index_key,
            "index_bytes": self.index_bytes,
            "wants_fine_indexes": self.wants_fine_indexes,
            "wants_coarse_indexes": self.wants_coarse_indexes,
            "prefix_matchable": self.prefix_matchable,
            "metadata": self.metadata,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ManifestEntry":
        try:
            return cls(
                context_id=payload["context_id"],
                tokens=[int(t) for t in payload["tokens"]],
                num_layers=int(payload["num_layers"]),
                kv_bytes=int(payload["kv_bytes"]),
                snapshot_key=payload["snapshot_key"],
                index_key=payload.get("index_key"),
                index_bytes=int(payload.get("index_bytes", 0)),
                wants_fine_indexes=bool(payload.get("wants_fine_indexes", True)),
                wants_coarse_indexes=bool(payload.get("wants_coarse_indexes", True)),
                prefix_matchable=bool(payload.get("prefix_matchable", True)),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ContextLoadError(f"malformed manifest entry: {exc!r}") from exc


class ContextManifest:
    """The generation-stamped catalog of every persisted context."""

    def __init__(self, entries: dict[str, ManifestEntry] | None = None, generation: int = 0):
        self.entries: dict[str, ManifestEntry] = dict(entries or {})
        self.generation = generation

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, context_id: str) -> bool:
        return context_id in self.entries

    def get(self, context_id: str) -> ManifestEntry | None:
        return self.entries.get(context_id)

    def upsert(self, entry: ManifestEntry) -> None:
        self.entries[entry.context_id] = entry

    def remove(self, context_id: str) -> bool:
        return self.entries.pop(context_id, None) is not None

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, backend: StorageBackend, key: str = MANIFEST_KEY) -> int:
        """Atomically write the manifest, bumping its generation stamp.

        The bump continues from the *persisted* generation when that is ahead
        of this handle's: with two store handles interleaving writes over one
        shared backend, every save still produces a strictly larger stamp than
        whatever a reader last observed, so generations stay monotonic even
        though entry content is last-writer-wins.
        """
        self.generation = max(self.generation, self.persisted_generation(backend, key))
        self.generation += 1
        payload = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "generation": self.generation,
            "contexts": [self.entries[cid].to_json() for cid in sorted(self.entries)],
        }
        backend.write_bytes(key, json.dumps(payload, indent=1).encode("utf-8"))
        return self.generation

    @staticmethod
    def persisted_generation(backend: StorageBackend, key: str = MANIFEST_KEY) -> int:
        """The generation stamp currently stored on ``backend`` (0 if none).

        Corruption is treated as "no usable stamp" — :meth:`load` is where
        corruption surfaces as an error; here it must not block a save that
        would overwrite the corrupt blob with a good one.
        """
        if not backend.exists(key):
            return 0
        try:
            payload = json.loads(backend.read_bytes(key).decode("utf-8"))
            return int(payload.get("generation", 0))
        except (UnicodeDecodeError, json.JSONDecodeError, TypeError, ValueError, ContextLoadError):
            return 0

    @classmethod
    def load(cls, backend: StorageBackend, key: str = MANIFEST_KEY) -> "ContextManifest":
        """Read the manifest back; raises :class:`ContextLoadError` when the
        blob is corrupted or written by an unknown format version."""
        raw = backend.read_bytes(key)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ContextLoadError(f"corrupted context manifest under {key!r}: {exc}") from exc
        version = payload.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise ContextLoadError(
                f"manifest format version {version!r} is not supported "
                f"(this build reads version {MANIFEST_FORMAT_VERSION})"
            )
        entries = {}
        for row in payload.get("contexts", []):
            entry = ManifestEntry.from_json(row)
            entries[entry.context_id] = entry
        return cls(entries=entries, generation=int(payload.get("generation", 0)))

    @classmethod
    def load_or_empty(cls, backend: StorageBackend, key: str = MANIFEST_KEY) -> "ContextManifest":
        """Like :meth:`load`, but an *absent* manifest yields an empty one
        (a fresh directory); corruption still raises."""
        if not backend.exists(key):
            return cls()
        return cls.load(backend, key)
