"""IO path model: SPDK user-space access vs the kernel block layer.

The real system reads blocks through SPDK to bypass the kernel IO path.  The
reproduction performs real file reads (tiny and fast), but *accounts* each
read with the latency the configured IO path would cost on NVMe, so the
benchmark harnesses can report the SPDK-vs-kernel difference the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simulator.cost_model import CostModel

__all__ = ["IOStats", "IOModel"]


@dataclass
class IOStats:
    """Counters accumulated by an :class:`IOModel`."""

    num_reads: int = 0
    num_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    modeled_seconds: float = 0.0

    def reset(self) -> None:
        self.num_reads = 0
        self.num_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.modeled_seconds = 0.0


@dataclass
class IOModel:
    """Accounts block IO against the simulated NVMe device."""

    use_spdk: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    stats: IOStats = field(default_factory=IOStats)

    def record_read(self, nbytes: int) -> float:
        """Account one block read; returns the modelled latency in seconds."""
        seconds = self.cost_model.disk_read_seconds(nbytes, use_spdk=self.use_spdk)
        self.stats.num_reads += 1
        self.stats.bytes_read += int(nbytes)
        self.stats.modeled_seconds += seconds
        return seconds

    def record_write(self, nbytes: int) -> float:
        """Account one block write; returns the modelled latency in seconds."""
        seconds = self.cost_model.disk_read_seconds(nbytes, use_spdk=self.use_spdk)
        self.stats.num_writes += 1
        self.stats.bytes_written += int(nbytes)
        self.stats.modeled_seconds += seconds
        return seconds
