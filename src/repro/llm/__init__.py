"""NumPy LLM inference substrate (Section 2 of the paper).

Public surface: a decoder-only GQA transformer, exact attention kernels with
flash-attention-style partial merging, a byte-level tokenizer and a two-phase
(prefill/decode) generation loop.
"""

from .attention import (
    PartialAttention,
    attention_logits,
    attention_weights,
    decode_attention,
    full_attention,
    merge_partial_attention,
    partial_attention,
    repeat_kv,
    softmax,
    sparse_attention,
)
from .generation import GenerationLoop, GenerationResult, generate
from .layers import Embedding, Linear, RMSNorm, SwiGLU
from .model import ModelConfig, TransformerLayer, TransformerModel
from .rope import RotaryEmbedding, apply_rotary
from .sampling import SamplingConfig, greedy, sample_token
from .tokenizer import ByteTokenizer, SpecialTokens

__all__ = [
    "ByteTokenizer",
    "Embedding",
    "GenerationLoop",
    "GenerationResult",
    "Linear",
    "ModelConfig",
    "PartialAttention",
    "RMSNorm",
    "RotaryEmbedding",
    "SamplingConfig",
    "SpecialTokens",
    "SwiGLU",
    "TransformerLayer",
    "TransformerModel",
    "apply_rotary",
    "attention_logits",
    "attention_weights",
    "decode_attention",
    "full_attention",
    "generate",
    "greedy",
    "merge_partial_attention",
    "partial_attention",
    "repeat_kv",
    "sample_token",
    "softmax",
    "sparse_attention",
]
