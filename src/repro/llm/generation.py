"""The LLM generation loop: prefill phase + decode phase.

This module wires the transformer substrate, a tokenizer, a KV cache and a
sampler into the two-phase inference procedure described in Section 2 of the
paper.  The loop records per-phase timings (TTFT for prefill, per-token
latency for decode) so benchmark harnesses can report the same SLO metrics
the paper uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..kvcache.cache import DynamicCache, KVCacheProtocol
from .model import TransformerModel
from .sampling import SamplingConfig, sample_token
from .tokenizer import ByteTokenizer

__all__ = ["GenerationResult", "GenerationLoop", "generate"]


@dataclass
class GenerationResult:
    """Outcome of one prompt → response inference."""

    prompt_tokens: list[int]
    generated_tokens: list[int]
    text: str
    ttft_seconds: float
    decode_seconds: list[float] = field(default_factory=list)
    finished_by_eos: bool = False

    @property
    def num_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def tpot_seconds(self) -> float:
        """Mean time-per-output-token over the decode phase."""
        if not self.decode_seconds:
            return 0.0
        return float(np.mean(self.decode_seconds))

    @property
    def total_seconds(self) -> float:
        return self.ttft_seconds + float(np.sum(self.decode_seconds))


class GenerationLoop:
    """Drives prefill + decode against any cache implementing the protocol."""

    def __init__(
        self,
        model: TransformerModel,
        tokenizer: ByteTokenizer | None = None,
        sampling: SamplingConfig | None = None,
    ):
        self.model = model
        self.tokenizer = tokenizer or ByteTokenizer()
        self.sampling = sampling or SamplingConfig()

    def run_tokens(
        self,
        prompt_tokens: list[int] | np.ndarray,
        cache: KVCacheProtocol | None = None,
        max_new_tokens: int = 16,
        stop_on_eos: bool = True,
    ) -> GenerationResult:
        """Generate from a pre-tokenised prompt.

        ``max_new_tokens=0`` runs the prefill (filling ``cache``) but samples
        nothing; negative values are rejected.
        """
        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be non-negative, got {max_new_tokens}")
        prompt_tokens = [int(t) for t in prompt_tokens]
        cache = cache if cache is not None else DynamicCache()
        rng = self.sampling.make_rng()

        start = time.perf_counter()
        if prompt_tokens:
            last_logits, cache = self.model.prefill(np.asarray(prompt_tokens), cache)
        else:
            last_logits, cache = self.model.prefill(np.asarray([self.tokenizer.bos_id]), cache)
        ttft = time.perf_counter() - start

        generated: list[int] = []
        decode_times: list[float] = []
        finished_by_eos = False
        if max_new_tokens > 0:
            next_token = sample_token(last_logits, self.sampling, rng)
            generated.append(next_token)
            for _ in range(max_new_tokens - 1):
                if stop_on_eos and next_token == self.tokenizer.eos_id:
                    finished_by_eos = True
                    break
                step_start = time.perf_counter()
                logits = self.model.decode_step(next_token, cache)
                decode_times.append(time.perf_counter() - step_start)
                next_token = sample_token(logits, self.sampling, rng)
                generated.append(next_token)
            if stop_on_eos and generated[-1] == self.tokenizer.eos_id:
                finished_by_eos = True

        text = self.tokenizer.decode(generated)
        return GenerationResult(
            prompt_tokens=prompt_tokens,
            generated_tokens=generated,
            text=text,
            ttft_seconds=ttft,
            decode_seconds=decode_times,
            finished_by_eos=finished_by_eos,
        )

    def run(
        self,
        prompt: str,
        cache: KVCacheProtocol | None = None,
        max_new_tokens: int = 16,
    ) -> GenerationResult:
        """Generate from a text prompt."""
        tokens = self.tokenizer.encode(prompt)
        return self.run_tokens(tokens, cache=cache, max_new_tokens=max_new_tokens)


def generate(
    model: TransformerModel,
    prompt: str,
    cache: KVCacheProtocol | None = None,
    max_new_tokens: int = 16,
    sampling: SamplingConfig | None = None,
) -> GenerationResult:
    """Convenience wrapper: one-shot generation with default components."""
    loop = GenerationLoop(model, sampling=sampling)
    return loop.run(prompt, cache=cache, max_new_tokens=max_new_tokens)
