"""Building blocks of the NumPy transformer: RMSNorm, Linear, SwiGLU MLP.

Weights are initialised from a seeded :class:`numpy.random.Generator` so that
every run of the substrate is deterministic — a requirement for reproducible
quality measurements.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Linear", "RMSNorm", "SwiGLU", "Embedding"]


class Linear:
    """A dense projection ``y = x @ W^T`` without bias (Llama convention)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.in_features = in_features
        self.out_features = out_features
        scale = 1.0 / np.sqrt(in_features)
        self.weight = rng.normal(0.0, scale, size=(out_features, in_features)).astype(np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float32) @ self.weight.T

    @property
    def num_parameters(self) -> int:
        return int(self.weight.size)

    @property
    def num_bytes(self) -> int:
        return int(self.weight.nbytes)


class Embedding:
    """Token-id to vector lookup table."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = rng.normal(0.0, 0.02, size=(vocab_size, dim)).astype(np.float32)

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        return self.weight[token_ids]

    @property
    def num_parameters(self) -> int:
        return int(self.weight.size)

    @property
    def num_bytes(self) -> int:
        return int(self.weight.nbytes)


class RMSNorm:
    """Root-mean-square layer norm (no mean subtraction, learned gain)."""

    def __init__(self, dim: int, eps: float = 1e-6):
        self.dim = dim
        self.eps = eps
        self.weight = np.ones(dim, dtype=np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        variance = np.mean(x * x, axis=-1, keepdims=True)
        return x / np.sqrt(variance + self.eps) * self.weight

    @property
    def num_parameters(self) -> int:
        return int(self.weight.size)

    @property
    def num_bytes(self) -> int:
        return int(self.weight.nbytes)


def _silu(x: np.ndarray) -> np.ndarray:
    # piecewise form keeps exp() arguments non-positive so large-magnitude
    # activations (which batched decode stacks into one matmul) never overflow
    positive = x >= 0
    exp_neg = np.exp(np.where(positive, -x, x))
    return np.where(positive, x / (1.0 + exp_neg), x * exp_neg / (1.0 + exp_neg))


class SwiGLU:
    """The gated feed-forward network used by Llama-family models."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator):
        self.gate_proj = Linear(dim, hidden_dim, rng)
        self.up_proj = Linear(dim, hidden_dim, rng)
        self.down_proj = Linear(hidden_dim, dim, rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.down_proj(_silu(self.gate_proj(x)) * self.up_proj(x))

    @property
    def num_parameters(self) -> int:
        return (
            self.gate_proj.num_parameters
            + self.up_proj.num_parameters
            + self.down_proj.num_parameters
        )

    @property
    def num_bytes(self) -> int:
        return self.gate_proj.num_bytes + self.up_proj.num_bytes + self.down_proj.num_bytes
