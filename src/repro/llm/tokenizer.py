"""A deterministic byte-level tokenizer.

The paper runs Llama's BPE tokenizer; this substrate uses a byte-level
tokenizer with a small set of special tokens.  A byte-level vocabulary keeps
the implementation dependency-free while preserving the property the library
actually needs: a reversible mapping from text to an integer token sequence
whose length is proportional to the text length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpecialTokens", "ByteTokenizer"]


@dataclass(frozen=True)
class SpecialTokens:
    """Ids of the special tokens used by the generation loop."""

    bos: int = 256
    eos: int = 257
    pad: int = 258

    @property
    def all(self) -> tuple[int, int, int]:
        return (self.bos, self.eos, self.pad)


@dataclass
class ByteTokenizer:
    """Byte-level tokenizer with BOS/EOS/PAD special tokens.

    Every UTF-8 byte maps to its own token id (0..255); special tokens occupy
    ids 256..258.  ``vocab_size`` is therefore 259 unless extended.
    """

    special: SpecialTokens = field(default_factory=SpecialTokens)

    @property
    def vocab_size(self) -> int:
        return 256 + len(self.special.all)

    @property
    def bos_id(self) -> int:
        return self.special.bos

    @property
    def eos_id(self) -> int:
        return self.special.eos

    @property
    def pad_id(self) -> int:
        return self.special.pad

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = False) -> list[int]:
        """Encode ``text`` into a list of token ids."""
        ids = list(text.encode("utf-8"))
        if add_bos:
            ids.insert(0, self.special.bos)
        if add_eos:
            ids.append(self.special.eos)
        return ids

    def decode(self, ids: list[int] | tuple[int, ...], skip_special: bool = True) -> str:
        """Decode token ids back into text."""
        specials = set(self.special.all)
        payload = bytes(i for i in ids if 0 <= i < 256 or not skip_special and i not in specials)
        if not skip_special:
            payload = bytes(i for i in ids if 0 <= i < 256)
        return payload.decode("utf-8", errors="replace")

    def encode_batch(self, texts: list[str], add_bos: bool = True) -> list[list[int]]:
        """Encode a batch of texts (no padding is applied)."""
        return [self.encode(text, add_bos=add_bos) for text in texts]
