"""Token sampling strategies for the generation loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .attention import softmax

__all__ = ["SamplingConfig", "greedy", "sample_token"]


@dataclass(frozen=True)
class SamplingConfig:
    """How the next token is chosen from the logits.

    ``temperature == 0`` means greedy decoding.  ``top_p`` applies nucleus
    filtering before sampling; ``top_k`` keeps only the k most likely tokens.
    """

    temperature: float = 0.0
    top_p: float = 1.0
    top_k: int = 0
    seed: int = 0

    def make_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


def greedy(logits: np.ndarray) -> int:
    """Return the argmax token id."""
    return int(np.argmax(np.asarray(logits)))


def _apply_top_k(probs: np.ndarray, top_k: int) -> np.ndarray:
    if top_k <= 0 or top_k >= probs.shape[-1]:
        return probs
    threshold = np.sort(probs)[-top_k]
    filtered = np.where(probs >= threshold, probs, 0.0)
    return filtered / filtered.sum()


def _apply_top_p(probs: np.ndarray, top_p: float) -> np.ndarray:
    if top_p >= 1.0:
        return probs
    order = np.argsort(probs)[::-1]
    sorted_probs = probs[order]
    cumulative = np.cumsum(sorted_probs)
    cutoff = int(np.searchsorted(cumulative, top_p) + 1)
    keep = order[:cutoff]
    filtered = np.zeros_like(probs)
    filtered[keep] = probs[keep]
    return filtered / filtered.sum()


def sample_token(
    logits: np.ndarray,
    config: SamplingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> int:
    """Choose the next token id from ``logits`` according to ``config``."""
    config = config or SamplingConfig()
    logits = np.asarray(logits, dtype=np.float64)
    if config.temperature <= 0.0:
        return greedy(logits)
    probs = softmax(logits / config.temperature).astype(np.float64)
    probs = probs / probs.sum()
    probs = _apply_top_k(probs, config.top_k)
    probs = _apply_top_p(probs, config.top_p)
    rng = rng or config.make_rng()
    return int(rng.choice(probs.shape[-1], p=probs))
