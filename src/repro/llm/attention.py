"""Exact attention kernels and the partial-attention merge.

This module is the NumPy equivalent of the flash-attention kernels used by
the paper.  It provides:

* numerically-stable softmax and full (causal) attention,
* single-query decode attention (the hot path during token generation),
* *partial attention*: attention restricted to a subset of keys, returned
  together with its log-sum-exp statistics so that several partial results
  computed on different devices (GPU window cache vs CPU-resident index
  blocks) can be merged exactly — the "data-centric attention engine" of
  Section 7.2 of the paper,
* sparse attention over an explicit list of selected token indices.

All kernels operate on ``float32`` arrays.  Shapes follow the convention
``(num_heads, seq_len, head_dim)`` for K/V and ``(num_heads, head_dim)`` or
``(num_heads, seq_q, head_dim)`` for queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "softmax",
    "attention_logits",
    "attention_weights",
    "full_attention",
    "decode_attention",
    "sparse_attention",
    "PartialAttention",
    "partial_attention",
    "merge_partial_attention",
    "combine_partial_attention",
    "repeat_kv",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def repeat_kv(kv: np.ndarray, num_query_heads: int) -> np.ndarray:
    """Expand grouped key/value heads to match the number of query heads.

    ``kv`` has shape ``(num_kv_heads, seq, head_dim)``.  With GQA each KV head
    serves ``num_query_heads // num_kv_heads`` query heads.
    """
    num_kv_heads = kv.shape[0]
    if num_query_heads == num_kv_heads:
        return kv
    if num_query_heads % num_kv_heads != 0:
        raise ValueError(
            f"num_query_heads={num_query_heads} is not a multiple of num_kv_heads={num_kv_heads}"
        )
    group = num_query_heads // num_kv_heads
    return np.repeat(kv, group, axis=0)


def attention_logits(q: np.ndarray, k: np.ndarray, scale: float | None = None) -> np.ndarray:
    """Pre-softmax attention logits ``q @ k^T / sqrt(d)``.

    ``q``: ``(..., seq_q, d)``; ``k``: ``(..., seq_k, d)``.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    return np.matmul(q, np.swapaxes(k, -1, -2)) * np.float32(scale)


def attention_weights(
    q: np.ndarray, k: np.ndarray, scale: float | None = None, causal: bool = False
) -> np.ndarray:
    """Softmax attention weights, optionally with a causal mask."""
    logits = attention_logits(q, k, scale)
    if causal:
        seq_q, seq_k = logits.shape[-2], logits.shape[-1]
        offset = seq_k - seq_q
        mask = np.triu(np.ones((seq_q, seq_k), dtype=bool), k=offset + 1)
        logits = np.where(mask, np.float32(-np.inf), logits)
    return softmax(logits, axis=-1)


def full_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Exact multi-head attention.

    ``q``: ``(h, seq_q, d)``; ``k``/``v``: ``(h_kv, seq_k, d)`` where ``h_kv``
    divides ``h`` (GQA).  Returns ``(h, seq_q, d)``.
    """
    q = np.asarray(q, dtype=np.float32)
    k = repeat_kv(np.asarray(k, dtype=np.float32), q.shape[0])
    v = repeat_kv(np.asarray(v, dtype=np.float32), q.shape[0])
    weights = attention_weights(q, k, scale=scale, causal=causal)
    return np.matmul(weights, v)


def decode_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
) -> np.ndarray:
    """Single-token decode attention.

    ``q``: ``(h, d)``; ``k``/``v``: ``(h_kv, seq, d)``.  Returns ``(h, d)``.
    The query attends to every cached key (no mask is needed because all
    cached positions precede the query).
    """
    q3 = np.asarray(q, dtype=np.float32)[:, None, :]
    out = full_attention(q3, k, v, causal=False, scale=scale)
    return out[:, 0, :]


def sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    selected: np.ndarray,
    scale: float | None = None,
) -> np.ndarray:
    """Decode attention restricted to ``selected`` token indices.

    ``selected`` is a 1-D integer array of token positions; the same subset is
    used for every head.  Returns ``(h, d)``.
    """
    selected = np.asarray(selected, dtype=np.int64)
    return decode_attention(q, k[:, selected, :], v[:, selected, :], scale=scale)


@dataclass
class PartialAttention:
    """Attention over a subset of keys plus its softmax statistics.

    ``output`` is the *normalised* attention output over the subset,
    ``max_logit`` the per-head maximum pre-softmax logit and ``sum_exp`` the
    per-head sum of ``exp(logit - max_logit)``.  Two partials can be merged
    exactly with :func:`merge_partial_attention` — the same decomposition
    flash-attention uses across KV blocks.
    """

    output: np.ndarray  # (h, d)
    max_logit: np.ndarray  # (h,)
    sum_exp: np.ndarray  # (h,)

    @property
    def num_heads(self) -> int:
        return int(self.output.shape[0])

    @classmethod
    def empty(cls, num_heads: int, head_dim: int) -> "PartialAttention":
        """A neutral element for the merge (attends to nothing)."""
        return cls(
            output=np.zeros((num_heads, head_dim), dtype=np.float32),
            max_logit=np.full((num_heads,), -np.inf, dtype=np.float32),
            sum_exp=np.zeros((num_heads,), dtype=np.float32),
        )

    def is_empty(self) -> bool:
        return bool(np.all(np.isneginf(self.max_logit)))


def partial_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
) -> PartialAttention:
    """Compute decode attention over a KV subset, keeping merge statistics.

    ``q``: ``(h, d)``; ``k``/``v``: ``(h_kv, m, d)``.  An empty subset
    (``m == 0``) yields the neutral element.
    """
    q = np.asarray(q, dtype=np.float32)
    num_heads, head_dim = q.shape
    if k.shape[1] == 0:
        return PartialAttention.empty(num_heads, head_dim)
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    k = repeat_kv(np.asarray(k, dtype=np.float32), num_heads)
    v = repeat_kv(np.asarray(v, dtype=np.float32), num_heads)
    logits = np.einsum("hd,hmd->hm", q, k) * np.float32(scale)
    max_logit = logits.max(axis=1)
    exps = np.exp(logits - max_logit[:, None])
    sum_exp = exps.sum(axis=1)
    output = np.einsum("hm,hmd->hd", exps, v) / sum_exp[:, None]
    return PartialAttention(output=output.astype(np.float32), max_logit=max_logit, sum_exp=sum_exp)


def merge_partial_attention(parts: list[PartialAttention]) -> np.ndarray:
    """Merge partial attentions computed over disjoint KV subsets.

    Returns the exact attention output ``(h, d)`` as if a single softmax had
    been computed over the union of the subsets.  Raises ``ValueError`` when
    no non-empty partial is supplied.
    """
    parts = [p for p in parts if not p.is_empty()]
    if not parts:
        raise ValueError("cannot merge an empty list of partial attentions")
    if len(parts) == 1:
        return parts[0].output.copy()

    global_max = np.max(np.stack([p.max_logit for p in parts], axis=0), axis=0)
    total_weight = np.zeros_like(parts[0].sum_exp)
    accumulated = np.zeros_like(parts[0].output)
    for part in parts:
        correction = np.exp(part.max_logit - global_max)
        weight = part.sum_exp * correction
        accumulated += part.output * weight[:, None]
        total_weight += weight
    return (accumulated / total_weight[:, None]).astype(np.float32)


def combine_partial_attention(parts: list[PartialAttention]) -> PartialAttention:
    """Merge partials into one :class:`PartialAttention`, keeping the statistics.

    The statistics-preserving sibling of :func:`merge_partial_attention`: the
    result carries the (``max_logit``, ``sum_exp``) of the union subset, so a
    shard can collapse its window/retrieved partials into a single partial and
    ship only that across the (simulated) wire — the receiver merges shard
    partials with other shards' exactly, as if one softmax had run over all
    subsets.  Heads that are empty in every input stay the neutral element
    (``max_logit=-inf``, ``sum_exp=0``), so per-head-empty inputs are safe.
    """
    if not parts:
        raise ValueError("cannot combine an empty list of partial attentions")
    if len(parts) == 1:
        part = parts[0]
        return PartialAttention(
            output=part.output.copy(),
            max_logit=part.max_logit.copy(),
            sum_exp=part.sum_exp.copy(),
        )
    global_max = np.max(np.stack([p.max_logit for p in parts], axis=0), axis=0)
    safe_max = np.where(np.isneginf(global_max), np.float32(0.0), global_max)
    total_weight = np.zeros_like(parts[0].sum_exp)
    accumulated = np.zeros_like(parts[0].output)
    for part in parts:
        # exp(-inf - finite) underflows to 0, so all-empty inputs contribute
        # nothing; np.where keeps -inf inputs from producing exp(-inf - -inf)
        weight = np.where(
            np.isneginf(part.max_logit),
            np.float32(0.0),
            part.sum_exp * np.exp(part.max_logit - safe_max),
        )
        accumulated += part.output * weight[:, None]
        total_weight += weight
    denom = np.where(total_weight == 0.0, np.float32(1.0), total_weight)
    return PartialAttention(
        output=(accumulated / denom[:, None]).astype(np.float32),
        max_logit=global_max.astype(np.float32),
        sum_exp=total_weight.astype(np.float32),
    )
