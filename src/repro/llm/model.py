"""A from-scratch NumPy decoder-only transformer with GQA.

This is the substrate that replaces Llama-3-8B-Instruct-262k in the paper's
experiments (see DESIGN.md, substitution table).  Architecturally it mirrors
Llama: RMSNorm → GQA self-attention with RoPE → RMSNorm → SwiGLU, residual
connections around both, tied to a byte-level vocabulary.  Weights are drawn
from a seeded RNG so runs are deterministic.

The attention layer supports two cache styles:

* a plain :class:`~repro.kvcache.cache.DynamicCache` — the model materialises
  the full K/V tensors and runs exact attention (coupled architecture);
* a :class:`~repro.kvcache.cache.NativeAttentionCache` such as an AlayaDB
  ``Session`` — the model hands Q/K/V to the cache and receives the attention
  output back, never touching the KV tensors (decoupled architecture).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..kvcache.cache import DynamicCache, KVCacheProtocol
from .attention import full_attention
from .layers import Embedding, Linear, RMSNorm, SwiGLU
from .rope import RotaryEmbedding

__all__ = ["ModelConfig", "TransformerLayer", "TransformerModel"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of the NumPy transformer substrate.

    The defaults describe a small model that runs comfortably on CPU while
    keeping the same head structure ratios as Llama-3-8B (query heads a
    multiple of KV heads, even head dimension for RoPE).
    """

    vocab_size: int = 259
    dim: int = 64
    num_layers: int = 4
    num_query_heads: int = 8
    num_kv_heads: int = 2
    hidden_dim: int = 128
    max_positions: int = 8192
    rope_base: float = 10000.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.dim % self.num_query_heads != 0:
            raise ConfigError(
                f"dim={self.dim} must be divisible by num_query_heads={self.num_query_heads}"
            )
        if self.num_query_heads % self.num_kv_heads != 0:
            raise ConfigError(
                f"num_query_heads={self.num_query_heads} must be a multiple of "
                f"num_kv_heads={self.num_kv_heads}"
            )
        if (self.dim // self.num_query_heads) % 2 != 0:
            raise ConfigError("head_dim must be even for rotary embeddings")

    @property
    def head_dim(self) -> int:
        return self.dim // self.num_query_heads

    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing one KV head."""
        return self.num_query_heads // self.num_kv_heads

    @classmethod
    def tiny(cls, seed: int = 1234) -> "ModelConfig":
        """A minimal configuration for fast unit tests."""
        return cls(dim=32, num_layers=2, num_query_heads=4, num_kv_heads=2, hidden_dim=64, seed=seed)

    @classmethod
    def llama_like(cls, seed: int = 1234) -> "ModelConfig":
        """A configuration with Llama-3-8B's head structure at reduced width.

        32 query heads and 8 KV heads per layer (the real ratios), 8 layers
        instead of 32 and head_dim 16 instead of 128 to stay CPU-friendly.
        """
        return cls(
            dim=512,
            num_layers=8,
            num_query_heads=32,
            num_kv_heads=8,
            hidden_dim=1024,
            seed=seed,
        )


@dataclass
class LayerActivations:
    """Per-layer Q/K/V captured during a forward pass (for analysis)."""

    layer: int
    queries: np.ndarray  # (num_query_heads, seq, head_dim)
    keys: np.ndarray  # (num_kv_heads, seq, head_dim)
    values: np.ndarray  # (num_kv_heads, seq, head_dim)


class TransformerLayer:
    """One decoder block: attention + feed-forward with pre-norm residuals."""

    def __init__(self, config: ModelConfig, layer_index: int, rng: np.random.Generator):
        self.config = config
        self.layer_index = layer_index
        dim, head_dim = config.dim, config.head_dim
        self.input_norm = RMSNorm(dim)
        self.post_attention_norm = RMSNorm(dim)
        self.q_proj = Linear(dim, config.num_query_heads * head_dim, rng)
        self.k_proj = Linear(dim, config.num_kv_heads * head_dim, rng)
        self.v_proj = Linear(dim, config.num_kv_heads * head_dim, rng)
        self.o_proj = Linear(config.num_query_heads * head_dim, dim, rng)
        self.mlp = SwiGLU(dim, config.hidden_dim, rng)

    def project_qkv(
        self, hidden: np.ndarray, rope: RotaryEmbedding, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project the (normalised) hidden states into rotated Q/K and V.

        ``hidden``: ``(seq, dim)``.  Returns arrays shaped
        ``(heads, seq, head_dim)``.
        """
        config = self.config
        seq_len = hidden.shape[0]
        head_dim = config.head_dim
        q = self.q_proj(hidden).reshape(seq_len, config.num_query_heads, head_dim)
        k = self.k_proj(hidden).reshape(seq_len, config.num_kv_heads, head_dim)
        v = self.v_proj(hidden).reshape(seq_len, config.num_kv_heads, head_dim)
        q = np.transpose(q, (1, 0, 2))
        k = np.transpose(k, (1, 0, 2))
        v = np.transpose(v, (1, 0, 2))
        q = rope.rotate(q, positions)
        k = rope.rotate(k, positions)
        return q.astype(np.float32), k.astype(np.float32), v.astype(np.float32)

    def __call__(
        self,
        hidden: np.ndarray,
        cache: KVCacheProtocol,
        rope: RotaryEmbedding,
        positions: np.ndarray,
        capture: list[LayerActivations] | None = None,
    ) -> np.ndarray:
        """Run the block over ``hidden`` of shape ``(seq, dim)``."""
        config = self.config
        normed = self.input_norm(hidden)
        q, k, v = self.project_qkv(normed, rope, positions)
        if capture is not None:
            capture.append(LayerActivations(self.layer_index, q.copy(), k.copy(), v.copy()))

        if hasattr(cache, "attention"):
            # Decoupled path: the cache (AlayaDB Session or a baseline) owns
            # the KV data and returns the attention output directly.
            cache.update_query(q, k, v, self.layer_index)
            attn = cache.attention(q, self.layer_index)
        else:
            full_k, full_v = cache.update(k, v, self.layer_index)
            attn = full_attention(q, full_k, full_v, causal=True)

        seq_len = hidden.shape[0]
        attn = np.transpose(attn, (1, 0, 2)).reshape(seq_len, config.num_query_heads * config.head_dim)
        hidden = hidden + self.o_proj(attn)
        hidden = hidden + self.mlp(self.post_attention_norm(hidden))
        return hidden

    def forward_batch(
        self,
        hidden: np.ndarray,
        caches: list[KVCacheProtocol],
        rope: RotaryEmbedding,
        positions: np.ndarray,
        attention_round=None,
    ) -> np.ndarray:
        """Run the block over one token from each of ``len(caches)`` requests.

        ``hidden``: ``(batch, dim)``, one row per request; ``positions``: the
        per-request cache position of that token.  The dense work (norms,
        Q/K/V/O projections, MLP) runs as single stacked matmuls across the
        batch; attention and KV appends route through each request's own
        cache, which keeps per-request state (sparse plans, stored prefixes,
        window caches) untouched — unless an ``attention_round`` coordinator
        is supplied, in which case it receives the whole layer's Q/K/V at
        once and may stack compatible requests' sparse attention (appending
        KV to each cache itself).
        """
        config = self.config
        batch, head_dim = hidden.shape[0], config.head_dim
        normed = self.input_norm(hidden)
        # the batch rides project_qkv's seq axis, so rope rotates request i
        # by its own cache position positions[i]
        q, k, v = self.project_qkv(normed, rope, positions)

        if attention_round is not None:
            attn_rows = attention_round.layer_attention(self.layer_index, q, k, v, caches)
        else:
            attn_rows = np.empty((batch, config.num_query_heads * head_dim), dtype=np.float32)
            for i, cache in enumerate(caches):
                qi = q[:, i : i + 1, :]
                ki = k[:, i : i + 1, :]
                vi = v[:, i : i + 1, :]
                if hasattr(cache, "attention"):
                    cache.update_query(qi, ki, vi, self.layer_index)
                    attn = cache.attention(qi, self.layer_index)
                else:
                    full_k, full_v = cache.update(ki, vi, self.layer_index)
                    attn = full_attention(qi, full_k, full_v, causal=True)
                attn_rows[i] = attn[:, 0, :].reshape(-1)
        hidden = hidden + self.o_proj(attn_rows)
        hidden = hidden + self.mlp(self.post_attention_norm(hidden))
        return hidden

    @property
    def num_parameters(self) -> int:
        return (
            self.q_proj.num_parameters
            + self.k_proj.num_parameters
            + self.v_proj.num_parameters
            + self.o_proj.num_parameters
            + self.mlp.num_parameters
            + self.input_norm.num_parameters
            + self.post_attention_norm.num_parameters
        )

    @property
    def num_bytes(self) -> int:
        return (
            self.q_proj.num_bytes
            + self.k_proj.num_bytes
            + self.v_proj.num_bytes
            + self.o_proj.num_bytes
            + self.mlp.num_bytes
            + self.input_norm.num_bytes
            + self.post_attention_norm.num_bytes
        )


class TransformerModel:
    """The decoder-only model: embeddings, a stack of layers, an LM head."""

    def __init__(self, config: ModelConfig | None = None):
        self.config = config or ModelConfig()
        rng = np.random.default_rng(self.config.seed)
        self.embedding = Embedding(self.config.vocab_size, self.config.dim, rng)
        self.layers = [TransformerLayer(self.config, i, rng) for i in range(self.config.num_layers)]
        self.final_norm = RMSNorm(self.config.dim)
        self.lm_head = Linear(self.config.dim, self.config.vocab_size, rng)
        self.rope = RotaryEmbedding(self.config.head_dim, self.config.max_positions, self.config.rope_base)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def forward(
        self,
        token_ids: np.ndarray | list[int],
        cache: KVCacheProtocol | None = None,
        capture_activations: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, list[LayerActivations]]:
        """Run a forward pass over ``token_ids`` using/extending ``cache``.

        Returns logits of shape ``(seq, vocab_size)``; when
        ``capture_activations`` is set, also returns the per-layer Q/K/V of
        this pass (used by the analysis tooling to study attention sparsity).
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError(f"token_ids must be 1-D, got shape {token_ids.shape}")
        if cache is None:
            cache = DynamicCache()
        start = cache.sequence_length(0)
        positions = np.arange(start, start + token_ids.shape[0], dtype=np.int64)

        hidden = self.embedding(token_ids)
        captured: list[LayerActivations] = []
        capture = captured if capture_activations else None
        for layer in self.layers:
            hidden = layer(hidden, cache, self.rope, positions, capture)
        hidden = self.final_norm(hidden)
        logits = self.lm_head(hidden)
        if capture_activations:
            return logits, captured
        return logits

    def prefill(
        self, token_ids: np.ndarray | list[int], cache: KVCacheProtocol | None = None
    ) -> tuple[np.ndarray, KVCacheProtocol]:
        """Process a prompt, filling ``cache``; returns (last-token logits, cache)."""
        if cache is None:
            cache = DynamicCache()
        logits = self.forward(token_ids, cache)
        return logits[-1], cache

    def decode_step(self, token_id: int, cache: KVCacheProtocol) -> np.ndarray:
        """Generate logits for a single new token appended to ``cache``."""
        logits = self.forward(np.asarray([token_id], dtype=np.int64), cache)
        return logits[-1]

    def decode_batch(
        self,
        token_ids: np.ndarray | list[int],
        caches: list[KVCacheProtocol],
        attention_round=None,
    ) -> np.ndarray:
        """One decode step for several independent requests in one forward pass.

        ``token_ids[i]`` is appended to ``caches[i]``.  The embedding, every
        layer's projections and MLP, and the LM head run once over the stacked
        ``(batch, dim)`` activations — the continuous-batching win when many
        in-flight requests share the weights — while attention/KV-append go
        through each request's own cache, so each request keeps its own
        positions, stored prefix, and sparse plan.  An ``attention_round``
        coordinator (``layer_attention(layer, q, k, v, caches)``) additionally
        stacks compatible requests' *sparse* attention per layer — one
        retrieval + merge round per scheduler step.  Returns logits of shape
        ``(batch, vocab_size)``; row ``i`` equals ``decode_step(token_ids[i],
        caches[i])``.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError(f"token_ids must be 1-D, got shape {token_ids.shape}")
        if token_ids.shape[0] != len(caches):
            raise ValueError(
                f"got {token_ids.shape[0]} tokens for {len(caches)} caches"
            )
        if token_ids.shape[0] == 0:
            return np.empty((0, self.config.vocab_size), dtype=np.float32)
        positions = np.asarray([cache.sequence_length(0) for cache in caches], dtype=np.int64)
        hidden = self.embedding(token_ids)
        for layer in self.layers:
            hidden = layer.forward_batch(hidden, caches, self.rope, positions, attention_round)
        hidden = self.final_norm(hidden)
        return self.lm_head(hidden)

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return (
            self.embedding.num_parameters
            + sum(layer.num_parameters for layer in self.layers)
            + self.final_norm.num_parameters
            + self.lm_head.num_parameters
        )

    @property
    def num_bytes(self) -> int:
        """Bytes of model weights (float32)."""
        return (
            self.embedding.num_bytes
            + sum(layer.num_bytes for layer in self.layers)
            + self.final_norm.num_bytes
            + self.lm_head.num_bytes
        )

    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache stored per token across all layers (float32)."""
        config = self.config
        per_layer = 2 * config.num_kv_heads * config.head_dim * 4
        return per_layer * config.num_layers
