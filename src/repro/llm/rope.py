"""Rotary position embeddings (RoPE).

Llama-family models encode token positions by rotating pairs of query/key
channels with position-dependent angles.  AlayaDB stores *pre-rotated* key
vectors in its vector indexes, so the inner product used by the DIPR query is
exactly the pre-softmax attention logit.  This module provides the same
rotation used by the NumPy transformer substrate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RotaryEmbedding", "apply_rotary"]


class RotaryEmbedding:
    """Precomputed rotary embedding table.

    Parameters
    ----------
    head_dim:
        Dimensionality of a single attention head.  Must be even.
    max_positions:
        Number of positions to precompute.  The table grows automatically if
        a larger position is requested.
    base:
        The RoPE frequency base (10000.0 in Llama).
    """

    def __init__(self, head_dim: int, max_positions: int = 4096, base: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even, got {head_dim}")
        self.head_dim = head_dim
        self.base = float(base)
        inv_freq = 1.0 / (self.base ** (np.arange(0, head_dim, 2, dtype=np.float64) / head_dim))
        self._inv_freq = inv_freq.astype(np.float64)
        self._cos = np.empty((0, head_dim // 2), dtype=np.float32)
        self._sin = np.empty((0, head_dim // 2), dtype=np.float32)
        self._extend(max_positions)

    def _extend(self, max_positions: int) -> None:
        """Grow the cos/sin tables to cover ``max_positions`` positions."""
        current = self._cos.shape[0]
        if max_positions <= current:
            return
        positions = np.arange(current, max_positions, dtype=np.float64)
        angles = np.outer(positions, self._inv_freq)
        self._cos = np.concatenate([self._cos, np.cos(angles).astype(np.float32)], axis=0)
        self._sin = np.concatenate([self._sin, np.sin(angles).astype(np.float32)], axis=0)

    def tables(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(cos, sin)`` tables for the given integer positions."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and int(positions.max()) >= self._cos.shape[0]:
            self._extend(int(positions.max()) + 1)
        return self._cos[positions], self._sin[positions]

    def rotate(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Apply the rotation to ``x``.

        Parameters
        ----------
        x:
            Array of shape ``(..., seq, head_dim)``.
        positions:
            Integer positions of shape ``(seq,)``.
        """
        cos, sin = self.tables(positions)
        return apply_rotary(x, cos, sin)


def apply_rotary(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate interleaved channel pairs of ``x`` by the given cos/sin tables.

    ``x`` has shape ``(..., seq, head_dim)``; ``cos``/``sin`` have shape
    ``(seq, head_dim // 2)``.  The first half of the head dimension is paired
    with the second half (the "rotate_half" convention used by Llama).
    """
    x = np.asarray(x, dtype=np.float32)
    head_dim = x.shape[-1]
    half = head_dim // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated_first = x1 * cos - x2 * sin
    rotated_second = x2 * cos + x1 * sin
    return np.concatenate([rotated_first, rotated_second], axis=-1)
