"""Paged KV cache (vLLM-style), used by the coupled-architecture baseline.

Tokens are stored in fixed-size pages so memory grows in page granularity and
pages of evicted contexts can be recycled.  AlayaDB itself does not page the
KV cache (it indexes it), but the paged cache is part of the coupled baseline
the paper compares against and of the LRU context-reuse behaviour described
in Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["PageTable", "PagedLayerCache", "PagedKVCache"]


@dataclass
class PageTable:
    """Logical-token → (page id, slot) mapping for one sequence."""

    page_size: int
    pages: list[int]
    length: int = 0

    def locate(self, position: int) -> tuple[int, int]:
        """Return (page id, slot within page) for a token position."""
        if position < 0 or position >= self.length:
            raise IndexError(f"position {position} out of range (length={self.length})")
        return self.pages[position // self.page_size], position % self.page_size


class PagedLayerCache:
    """Paged storage of K/V for one layer."""

    def __init__(self, num_kv_heads: int, head_dim: int, page_size: int = 64, initial_pages: int = 4):
        if page_size <= 0:
            raise ConfigError(f"page_size must be positive, got {page_size}")
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self.page_size = page_size
        self._key_pages: list[np.ndarray] = []
        self._value_pages: list[np.ndarray] = []
        self._free_pages: list[int] = []
        self.table = PageTable(page_size=page_size, pages=[])
        for _ in range(initial_pages):
            self._allocate_page()
            self._free_pages.append(len(self._key_pages) - 1)

    # ------------------------------------------------------------------
    # page management
    # ------------------------------------------------------------------
    def _allocate_page(self) -> int:
        page = np.zeros((self.num_kv_heads, self.page_size, self.head_dim), dtype=np.float32)
        self._key_pages.append(page)
        self._value_pages.append(np.zeros_like(page))
        return len(self._key_pages) - 1

    def _acquire_page(self) -> int:
        if self._free_pages:
            return self._free_pages.pop()
        return self._allocate_page()

    @property
    def num_pages_in_use(self) -> int:
        return len(self.table.pages)

    @property
    def num_pages_total(self) -> int:
        return len(self._key_pages)

    @property
    def nbytes(self) -> int:
        """Bytes allocated for all pages (K and V)."""
        return sum(p.nbytes for p in self._key_pages) + sum(p.nbytes for p in self._value_pages)

    def __len__(self) -> int:
        return self.table.length

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``(num_kv_heads, n, head_dim)`` keys and values."""
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        if k.shape != v.shape or k.shape[0] != self.num_kv_heads or k.shape[2] != self.head_dim:
            raise ValueError(f"unexpected KV shape {k.shape}")
        for i in range(k.shape[1]):
            position = self.table.length
            slot = position % self.page_size
            if slot == 0:
                self.table.pages.append(self._acquire_page())
            page_id = self.table.pages[-1]
            self._key_pages[page_id][:, slot, :] = k[:, i, :]
            self._value_pages[page_id][:, slot, :] = v[:, i, :]
            self.table.length += 1

    def gather(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialise keys/values for arbitrary positions."""
        positions = np.asarray(positions, dtype=np.int64)
        keys = np.empty((self.num_kv_heads, positions.shape[0], self.head_dim), dtype=np.float32)
        values = np.empty_like(keys)
        for out_idx, position in enumerate(positions):
            page_id, slot = self.table.locate(int(position))
            keys[:, out_idx, :] = self._key_pages[page_id][:, slot, :]
            values[:, out_idx, :] = self._value_pages[page_id][:, slot, :]
        return keys, values

    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise the full contiguous K/V tensors."""
        return self.gather(np.arange(self.table.length))

    def release(self) -> None:
        """Return all pages of this sequence to the free list."""
        self._free_pages.extend(self.table.pages)
        self.table = PageTable(page_size=self.page_size, pages=[])


class PagedKVCache:
    """Multi-layer paged KV cache implementing the model's cache protocol."""

    def __init__(self, page_size: int = 64):
        self.page_size = page_size
        self._layers: dict[int, PagedLayerCache] = {}

    def update(self, k: np.ndarray, v: np.ndarray, layer: int) -> tuple[np.ndarray, np.ndarray]:
        k = np.asarray(k, dtype=np.float32)
        store = self._layers.get(layer)
        if store is None:
            store = PagedLayerCache(k.shape[0], k.shape[2], self.page_size)
            self._layers[layer] = store
        store.append(k, v)
        return store.materialize()

    def sequence_length(self, layer: int = 0) -> int:
        store = self._layers.get(layer)
        return len(store) if store is not None else 0

    @property
    def nbytes(self) -> int:
        return sum(store.nbytes for store in self._layers.values())

    def layer(self, layer: int) -> PagedLayerCache | None:
        return self._layers.get(layer)

    def release(self) -> None:
        for store in self._layers.values():
            store.release()
