"""Serialisation of KV caches to and from disk.

``DB.import`` / ``DB.store`` persist contexts (prompt tokens + KV cache) so
they can be reused across sessions and across process restarts.  The format is
a single ``.npz`` archive per context (metadata embedded, plus a small JSON
sidecar header for human inspection), which keeps loading dependency-free.

Two properties matter for the durable context database:

* **crash safety** — :func:`save_snapshot` writes to a temp file and
  ``os.replace``\\ s it into place, so a crash mid-write leaves the previous
  snapshot (or nothing), never a truncated archive;
* **clean failure** — a truncated/corrupted/missing snapshot raises
  :class:`~repro.errors.ContextLoadError` (a :class:`StorageError`), never a
  raw numpy or zipfile traceback.

:func:`snapshot_to_bytes` / :func:`snapshot_from_bytes` are the in-memory
core; storage backends persist those blobs wherever they like.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ContextLoadError, StorageError
from .cache import DynamicCache

__all__ = [
    "KVSnapshot",
    "snapshot_from_cache",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "save_snapshot",
    "load_snapshot",
]

SNAPSHOT_FORMAT_VERSION = 1

_META_KEY = "__meta__"


@dataclass
class KVSnapshot:
    """An immutable picture of a context: tokens plus per-layer KV tensors.

    ``query_samples`` optionally carries the per-layer query vectors captured
    during the prefill that produced this KV (``(num_query_heads, m,
    head_dim)`` per layer).  Persisting them alongside the KV lets a context
    reloaded from disk rebuild its fine indexes with the same out-of-
    distribution query sample the original build used, instead of falling
    back to indexing with the keys themselves.
    """

    tokens: list[int]
    keys: dict[int, np.ndarray] = field(default_factory=dict)
    values: dict[int, np.ndarray] = field(default_factory=dict)
    metadata: dict[str, str] = field(default_factory=dict)
    query_samples: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    @property
    def num_layers(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        return sum(k.nbytes for k in self.keys.values()) + sum(v.nbytes for v in self.values.values())

    def validate(self) -> None:
        """Check internal consistency; raises ``StorageError`` on mismatch."""
        if set(self.keys) != set(self.values):
            raise StorageError("snapshot keys and values cover different layers")
        for layer, key_tensor in self.keys.items():
            value_tensor = self.values[layer]
            if key_tensor.shape != value_tensor.shape:
                raise StorageError(
                    f"layer {layer}: key shape {key_tensor.shape} != value shape {value_tensor.shape}"
                )
            if key_tensor.shape[1] != self.num_tokens:
                raise StorageError(
                    f"layer {layer}: {key_tensor.shape[1]} cached tokens but {self.num_tokens} prompt tokens"
                )


def snapshot_from_cache(tokens: list[int], cache: DynamicCache) -> KVSnapshot:
    """Build a snapshot from a filled ``DynamicCache``."""
    keys = {layer: cache.keys(layer).copy() for layer in range(cache.num_layers)}
    values = {layer: cache.values(layer).copy() for layer in range(cache.num_layers)}
    snapshot = KVSnapshot(tokens=list(tokens), keys=keys, values=values)
    snapshot.validate()
    return snapshot


def _snapshot_arrays(snapshot: KVSnapshot) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {"tokens": np.asarray(snapshot.tokens, dtype=np.int64)}
    for layer, key_tensor in snapshot.keys.items():
        arrays[f"key_{layer}"] = key_tensor
        arrays[f"value_{layer}"] = snapshot.values[layer]
    for layer, sample in snapshot.query_samples.items():
        if sample is not None and sample.size:
            arrays[f"qsample_{layer}"] = np.asarray(sample, dtype=np.float32)
    return arrays


def snapshot_to_bytes(snapshot: KVSnapshot) -> bytes:
    """Serialize a validated snapshot into one self-describing ``.npz`` blob."""
    snapshot.validate()
    arrays = _snapshot_arrays(snapshot)
    meta = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "num_tokens": snapshot.num_tokens,
        "num_layers": snapshot.num_layers,
        "metadata": snapshot.metadata,
    }
    meta_array = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays, **{_META_KEY: meta_array})
    return buffer.getvalue()


def snapshot_from_bytes(data: bytes, source: str = "<bytes>") -> KVSnapshot:
    """Deserialize :func:`snapshot_to_bytes` output.

    Raises :class:`ContextLoadError` on truncation, corruption, or an
    unsupported format version.
    """
    metadata: dict[str, str] = {}
    try:
        with np.load(io.BytesIO(data)) as archive:
            if _META_KEY in archive.files:
                meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
                version = meta.get("format_version")
                if version != SNAPSHOT_FORMAT_VERSION:
                    raise ContextLoadError(
                        f"snapshot {source}: format version {version!r} is not supported "
                        f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
                    )
                metadata = dict(meta.get("metadata", {}))
            tokens = [int(t) for t in archive["tokens"]]
            keys: dict[int, np.ndarray] = {}
            values: dict[int, np.ndarray] = {}
            query_samples: dict[int, np.ndarray] = {}
            for array_name in archive.files:
                if array_name.startswith("key_"):
                    keys[int(array_name[4:])] = archive[array_name]
                elif array_name.startswith("value_"):
                    values[int(array_name[6:])] = archive[array_name]
                elif array_name.startswith("qsample_"):
                    query_samples[int(array_name[8:])] = archive[array_name]
    except ContextLoadError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise ContextLoadError(f"snapshot {source} is truncated or corrupted: {exc!r}") from exc
    snapshot = KVSnapshot(
        tokens=tokens, keys=keys, values=values, metadata=metadata, query_samples=query_samples
    )
    try:
        snapshot.validate()
    except StorageError as exc:
        raise ContextLoadError(f"snapshot {source} is internally inconsistent: {exc}") from exc
    return snapshot


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-temp-then-rename so a crash never leaves a truncated file."""
    fd, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def save_snapshot(snapshot: KVSnapshot, directory: str | Path, name: str) -> Path:
    """Persist ``snapshot`` under ``directory/name`` and return the data path.

    Both the archive and the JSON sidecar header are written atomically
    (temp file + ``os.replace``): a crash mid-save leaves the previous
    snapshot intact rather than a truncated archive.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / f"{name}.npz"
    _atomic_write(data_path, snapshot_to_bytes(snapshot))
    header = {
        "name": name,
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "num_tokens": snapshot.num_tokens,
        "num_layers": snapshot.num_layers,
        "metadata": snapshot.metadata,
    }
    _atomic_write(directory / f"{name}.json", json.dumps(header, indent=2).encode("utf-8"))
    return data_path


def load_snapshot(directory: str | Path, name: str) -> KVSnapshot:
    """Load a snapshot persisted by :func:`save_snapshot`.

    A missing, truncated, or corrupted snapshot raises a clean
    :class:`ContextLoadError` naming the file.
    """
    directory = Path(directory)
    data_path = directory / f"{name}.npz"
    if not data_path.exists():
        raise ContextLoadError(f"snapshot data not found: {data_path}")
    return snapshot_from_bytes(data_path.read_bytes(), source=str(data_path))
