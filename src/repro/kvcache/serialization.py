"""Serialisation of KV caches to and from disk.

``DB.import`` / ``DB.store`` persist contexts (prompt tokens + KV cache) so
they can be reused across sessions and across process restarts.  The format is
a single ``.npz`` archive per context plus a small JSON header, which keeps
loading dependency-free and memory-mappable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import StorageError
from .cache import DynamicCache

__all__ = ["KVSnapshot", "snapshot_from_cache", "save_snapshot", "load_snapshot"]


@dataclass
class KVSnapshot:
    """An immutable picture of a context: tokens plus per-layer KV tensors.

    ``query_samples`` optionally carries the per-layer query vectors captured
    during the prefill that produced this KV (``(num_query_heads, m,
    head_dim)`` per layer).  Persisting them alongside the KV lets a context
    reloaded from disk rebuild its fine indexes with the same out-of-
    distribution query sample the original build used, instead of falling
    back to indexing with the keys themselves.
    """

    tokens: list[int]
    keys: dict[int, np.ndarray] = field(default_factory=dict)
    values: dict[int, np.ndarray] = field(default_factory=dict)
    metadata: dict[str, str] = field(default_factory=dict)
    query_samples: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    @property
    def num_layers(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        return sum(k.nbytes for k in self.keys.values()) + sum(v.nbytes for v in self.values.values())

    def validate(self) -> None:
        """Check internal consistency; raises ``StorageError`` on mismatch."""
        if set(self.keys) != set(self.values):
            raise StorageError("snapshot keys and values cover different layers")
        for layer, key_tensor in self.keys.items():
            value_tensor = self.values[layer]
            if key_tensor.shape != value_tensor.shape:
                raise StorageError(
                    f"layer {layer}: key shape {key_tensor.shape} != value shape {value_tensor.shape}"
                )
            if key_tensor.shape[1] != self.num_tokens:
                raise StorageError(
                    f"layer {layer}: {key_tensor.shape[1]} cached tokens but {self.num_tokens} prompt tokens"
                )


def snapshot_from_cache(tokens: list[int], cache: DynamicCache) -> KVSnapshot:
    """Build a snapshot from a filled ``DynamicCache``."""
    keys = {layer: cache.keys(layer).copy() for layer in range(cache.num_layers)}
    values = {layer: cache.values(layer).copy() for layer in range(cache.num_layers)}
    snapshot = KVSnapshot(tokens=list(tokens), keys=keys, values=values)
    snapshot.validate()
    return snapshot


def save_snapshot(snapshot: KVSnapshot, directory: str | Path, name: str) -> Path:
    """Persist ``snapshot`` under ``directory/name`` and return the data path."""
    snapshot.validate()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {"tokens": np.asarray(snapshot.tokens, dtype=np.int64)}
    for layer, key_tensor in snapshot.keys.items():
        arrays[f"key_{layer}"] = key_tensor
        arrays[f"value_{layer}"] = snapshot.values[layer]
    for layer, sample in snapshot.query_samples.items():
        if sample is not None and sample.size:
            arrays[f"qsample_{layer}"] = np.asarray(sample, dtype=np.float32)
    data_path = directory / f"{name}.npz"
    np.savez_compressed(data_path, **arrays)
    header = {
        "name": name,
        "num_tokens": snapshot.num_tokens,
        "num_layers": snapshot.num_layers,
        "metadata": snapshot.metadata,
    }
    (directory / f"{name}.json").write_text(json.dumps(header, indent=2))
    return data_path


def load_snapshot(directory: str | Path, name: str) -> KVSnapshot:
    """Load a snapshot persisted by :func:`save_snapshot`."""
    directory = Path(directory)
    data_path = directory / f"{name}.npz"
    header_path = directory / f"{name}.json"
    if not data_path.exists():
        raise StorageError(f"snapshot data not found: {data_path}")
    header = json.loads(header_path.read_text()) if header_path.exists() else {}
    with np.load(data_path) as archive:
        tokens = [int(t) for t in archive["tokens"]]
        keys: dict[int, np.ndarray] = {}
        values: dict[int, np.ndarray] = {}
        query_samples: dict[int, np.ndarray] = {}
        for array_name in archive.files:
            if array_name.startswith("key_"):
                keys[int(array_name[4:])] = archive[array_name]
            elif array_name.startswith("value_"):
                values[int(array_name[6:])] = archive[array_name]
            elif array_name.startswith("qsample_"):
                query_samples[int(array_name[8:])] = archive[array_name]
    snapshot = KVSnapshot(
        tokens=tokens,
        keys=keys,
        values=values,
        metadata=header.get("metadata", {}),
        query_samples=query_samples,
    )
    snapshot.validate()
    return snapshot
