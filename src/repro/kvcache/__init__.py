"""KV cache management substrate (Section 2/3 of the paper)."""

from .cache import DynamicCache, KVCacheProtocol, LayerKVCache, NativeAttentionCache
from .compression import (
    CompressedKV,
    QuantizedTensor,
    compress_kv,
    decompress_kv,
    dequantize_tensor,
    quantize_tensor,
)
from .paged import PagedKVCache, PagedLayerCache, PageTable
from .serialization import (
    KVSnapshot,
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_from_cache,
    snapshot_to_bytes,
)

__all__ = [
    "CompressedKV",
    "DynamicCache",
    "KVCacheProtocol",
    "KVSnapshot",
    "LayerKVCache",
    "NativeAttentionCache",
    "PageTable",
    "PagedKVCache",
    "PagedLayerCache",
    "QuantizedTensor",
    "compress_kv",
    "decompress_kv",
    "dequantize_tensor",
    "load_snapshot",
    "quantize_tensor",
    "save_snapshot",
    "snapshot_from_bytes",
    "snapshot_from_cache",
    "snapshot_to_bytes",
]
