"""KV cache abstractions.

``KVCacheProtocol`` is the contract the transformer substrate expects from a
cache object — intentionally shaped like HuggingFace's ``DynamicCache`` so
that an AlayaDB ``Session`` (which implements the same ``update`` signature
plus a native ``attention``) can replace it with a one-line change, exactly as
Figure 4 of the paper shows.

``DynamicCache`` is the coupled-architecture cache: it concatenates new keys
and values per layer and hands the full tensors back to the model, which then
runs full attention on them.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["KVCacheProtocol", "NativeAttentionCache", "LayerKVCache", "DynamicCache"]


@runtime_checkable
class KVCacheProtocol(Protocol):
    """Minimal cache interface consumed by the transformer substrate."""

    def update(
        self, k: np.ndarray, v: np.ndarray, layer: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values for ``layer`` and return the full cache."""
        ...

    def sequence_length(self, layer: int = 0) -> int:
        """Number of cached token positions for ``layer``."""
        ...


@runtime_checkable
class NativeAttentionCache(Protocol):
    """A cache that computes attention itself (AlayaDB Session, baselines).

    When a cache object exposes this interface the model delegates the whole
    attention computation to it instead of materialising the full KV tensors.
    """

    def update_query(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, layer: int
    ) -> None:
        """Register the new query/key/value tensors for ``layer``."""
        ...

    def attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        """Return the attention output for query ``q`` at ``layer``."""
        ...

    def sequence_length(self, layer: int = 0) -> int:
        ...


class LayerKVCache:
    """Growable key/value storage for a single transformer layer.

    Keys and values are stored as ``(num_kv_heads, capacity, head_dim)``
    arrays that double in capacity when full, so appending a token is
    amortised O(1) and reads can return zero-copy views.
    """

    def __init__(self, num_kv_heads: int, head_dim: int, initial_capacity: int = 256):
        self.num_kv_heads = num_kv_heads
        self.head_dim = head_dim
        self._capacity = max(int(initial_capacity), 1)
        self._length = 0
        self._keys = np.zeros((num_kv_heads, self._capacity, head_dim), dtype=np.float32)
        self._values = np.zeros((num_kv_heads, self._capacity, head_dim), dtype=np.float32)

    def __len__(self) -> int:
        return self._length

    @property
    def keys(self) -> np.ndarray:
        """View of the cached keys, shape ``(num_kv_heads, length, head_dim)``."""
        return self._keys[:, : self._length, :]

    @property
    def values(self) -> np.ndarray:
        """View of the cached values, shape ``(num_kv_heads, length, head_dim)``."""
        return self._values[:, : self._length, :]

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the *used* portion of the cache."""
        return int(self.keys.nbytes + self.values.nbytes)

    def _grow(self, needed: int) -> None:
        new_capacity = self._capacity
        while new_capacity < needed:
            new_capacity *= 2
        if new_capacity == self._capacity:
            return
        grown_keys = np.zeros((self.num_kv_heads, new_capacity, self.head_dim), dtype=np.float32)
        grown_values = np.zeros_like(grown_keys)
        grown_keys[:, : self._length, :] = self.keys
        grown_values[:, : self._length, :] = self.values
        self._keys, self._values = grown_keys, grown_values
        self._capacity = new_capacity

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new tokens; ``k``/``v`` shape ``(num_kv_heads, n, head_dim)``."""
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        if k.shape != v.shape:
            raise ValueError(f"key shape {k.shape} != value shape {v.shape}")
        if k.shape[0] != self.num_kv_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected ({self.num_kv_heads}, n, {self.head_dim}), got {k.shape}"
            )
        n = k.shape[1]
        self._grow(self._length + n)
        self._keys[:, self._length : self._length + n, :] = k
        self._values[:, self._length : self._length + n, :] = v
        self._length += n

    def slice(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (keys, values) views for positions ``[start, stop)``."""
        return (
            self._keys[:, start : min(stop, self._length), :],
            self._values[:, start : min(stop, self._length), :],
        )

    def gather(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (keys, values) copies for an arbitrary set of positions."""
        positions = np.asarray(positions, dtype=np.int64)
        return self.keys[:, positions, :], self.values[:, positions, :]


class DynamicCache:
    """The coupled-architecture KV cache (HuggingFace ``DynamicCache`` analogue)."""

    def __init__(self, initial_capacity: int = 256):
        self._layers: dict[int, LayerKVCache] = {}
        self._initial_capacity = initial_capacity

    def layer(self, layer: int) -> LayerKVCache | None:
        return self._layers.get(layer)

    def update(self, k: np.ndarray, v: np.ndarray, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Append ``k``/``v`` for ``layer`` and return the full cached tensors."""
        k = np.asarray(k, dtype=np.float32)
        store = self._layers.get(layer)
        if store is None:
            store = LayerKVCache(k.shape[0], k.shape[2], self._initial_capacity)
            self._layers[layer] = store
        store.append(k, v)
        return store.keys, store.values

    def sequence_length(self, layer: int = 0) -> int:
        store = self._layers.get(layer)
        return len(store) if store is not None else 0

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    @property
    def nbytes(self) -> int:
        return sum(store.nbytes for store in self._layers.values())

    def keys(self, layer: int) -> np.ndarray:
        store = self._layers[layer]
        return store.keys

    def values(self, layer: int) -> np.ndarray:
        store = self._layers[layer]
        return store.values
