"""KV cache compression, the mechanism behind LMCache/CacheGen-style reuse.

The disaggregated-cache baseline stores KV tensors in cheap CPU/disk storage
in a compressed form and must *decompress and transfer* them back to the GPU
before decoding — the cost that dominates its TTFT in Figure 10 of the paper.
This module implements a simple symmetric per-channel int8 quantiser, which
gives a realistic ~4x size reduction and a measurable decompression cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizedTensor", "quantize_tensor", "dequantize_tensor", "CompressedKV", "compress_kv", "decompress_kv"]


@dataclass
class QuantizedTensor:
    """Per-channel symmetric int8 quantisation of a float tensor."""

    data: np.ndarray  # int8, same shape as the original
    scale: np.ndarray  # float32, one scale per channel (last axis)
    original_dtype: str = "float32"

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes + self.scale.nbytes)


def quantize_tensor(x: np.ndarray) -> QuantizedTensor:
    """Quantise ``x`` to int8 with one scale per last-axis channel."""
    x = np.asarray(x, dtype=np.float32)
    max_abs = np.max(np.abs(x), axis=tuple(range(x.ndim - 1)), keepdims=False)
    scale = np.where(max_abs > 0, max_abs / 127.0, 1.0).astype(np.float32)
    quantised = np.clip(np.round(x / scale), -127, 127).astype(np.int8)
    return QuantizedTensor(data=quantised, scale=scale, original_dtype=str(x.dtype))


def dequantize_tensor(q: QuantizedTensor) -> np.ndarray:
    """Recover an approximate float32 tensor from its quantised form."""
    return (q.data.astype(np.float32) * q.scale).astype(np.float32)


@dataclass
class CompressedKV:
    """A compressed multi-layer KV cache ready for external storage."""

    keys: dict[int, QuantizedTensor]
    values: dict[int, QuantizedTensor]
    num_tokens: int

    @property
    def nbytes(self) -> int:
        return sum(q.nbytes for q in self.keys.values()) + sum(q.nbytes for q in self.values.values())

    @property
    def num_layers(self) -> int:
        return len(self.keys)


def compress_kv(keys: dict[int, np.ndarray], values: dict[int, np.ndarray]) -> CompressedKV:
    """Compress per-layer KV tensors ``{layer: (h_kv, seq, d)}``."""
    if set(keys) != set(values):
        raise ValueError("keys and values must cover the same layers")
    num_tokens = 0
    compressed_keys: dict[int, QuantizedTensor] = {}
    compressed_values: dict[int, QuantizedTensor] = {}
    for layer, key_tensor in keys.items():
        compressed_keys[layer] = quantize_tensor(key_tensor)
        compressed_values[layer] = quantize_tensor(values[layer])
        num_tokens = max(num_tokens, key_tensor.shape[1])
    return CompressedKV(keys=compressed_keys, values=compressed_values, num_tokens=num_tokens)


def decompress_kv(compressed: CompressedKV) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
    """Decompress back to per-layer float32 KV tensors."""
    keys = {layer: dequantize_tensor(q) for layer, q in compressed.keys.items()}
    values = {layer: dequantize_tensor(q) for layer, q in compressed.values.items()}
    return keys, values
