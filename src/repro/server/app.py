"""The asyncio HTTP serving frontend over :class:`InferenceService`.

``AlayaDBServer`` turns the in-process serving API into a network service
without adding a dependency or a thread: one asyncio event loop hosts the
listener, every connection handler, and a *pump* coroutine that runs
``service.step()`` whenever the scheduler has work, broadcasting a step
event that waiting handlers use to notice new tokens.  The substrate stays
single-threaded — "concurrency" is the same step-interleaving the scheduler
already does, now driven by the event loop instead of a blocking handle.

Endpoints (see ``ARCHITECTURE.md`` for the full table):

* ``POST /v1/completions`` — the ``repro.api`` surface over the wire: JSON
  body in, either a JSON completion or a server-sent-event stream of token
  chunks out (``stream: true``);
* ``DELETE /v1/requests/{id}`` — cancel, wherever the request lives;
* ``GET /v1/stats`` — server counters + ``memory_report()`` (including the
  per-tenant fairness rows) + scheduler stats;
* ``GET /v1/health`` — ``serving`` / ``draining`` / ``stopped``.

A client that disconnects mid-stream has its request cancelled through
``RequestScheduler.cancel`` — the admission reservation is released and the
session's context pins returned, exactly as an explicit ``cancel()``.
Tenant backpressure surfaces as HTTP 429 with ``Retry-After`` and
``X-Queue-Position`` headers; malformed and oversized bodies as structured
400/413 JSON errors.  :meth:`AlayaDBServer.shutdown` drains (or cancels) all
in-flight work and asserts the soak-test invariants — zero pinned contexts,
zero admission reservations, no non-terminal requests — via
:func:`check_drained`.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import asdict, dataclass

from ..core.service import InferenceService
from ..errors import TenantThrottledError, UnknownTenantError
from ..scheduler.request import RequestState
from ..simulator.slo import SLO
from .http import (
    HttpError,
    HttpRequest,
    error_response,
    json_response,
    read_request,
    sse_event,
    sse_headers,
)

__all__ = ["ServerStats", "AlayaDBServer", "check_drained"]

_COMPLETION_FIELDS = {
    "prompt",
    "max_new_tokens",
    "stream",
    "priority",
    "tenant",
    "store_context_id",
    "slo",
}


@dataclass
class ServerStats:
    """Counters describing frontend activity since the server started."""

    connections: int = 0
    requests: int = 0
    """HTTP requests parsed (any endpoint)."""
    completions: int = 0
    """Completion requests accepted (streaming and non-streaming)."""
    streams_started: int = 0
    streams_completed: int = 0
    """Streams that delivered their full token sequence and ``[DONE]``."""
    disconnect_cancels: int = 0
    """Requests cancelled because their client dropped the connection."""
    throttled: int = 0
    """Completions refused with 429 (tenant backpressure)."""
    client_errors: int = 0
    """4xx responses (malformed bodies, unknown tenants, unknown routes)."""


def check_drained(service: InferenceService) -> None:
    """Assert the drain-time invariants the serving soak establishes.

    After a drain nothing may linger: no scheduler work, no non-terminal
    request, zero admission reservations, zero pinned contexts, no live
    execution state, and an exact buffer-manager residency mirror.  Raises
    ``AssertionError`` naming every violated invariant (so a failing
    shutdown reports all of them, not just the first).
    """
    problems: list[str] = []
    scheduler = service.scheduler
    if scheduler.has_work:
        problems.append(
            f"scheduler still has work: queue={scheduler.queue_depth} "
            f"inflight={scheduler.num_inflight} preempted={scheduler.num_preempted}"
        )
    if scheduler.admission.committed_bytes != 0:
        problems.append(
            f"admission reservations leaked: {scheduler.admission.committed_bytes} bytes"
        )
    registry = service.db.store_registry
    if registry.num_pinned != 0:
        problems.append(f"pinned contexts leaked: {registry.pinned_ids()}")
    if service._live:
        problems.append(f"live execution state leaked: {sorted(service._live)}")
    buffer = service.db.buffer_manager
    blocks = buffer.resident_blocks()
    if buffer.used_bytes != sum(blocks.values()):
        problems.append(
            f"buffer mirror drift: used_bytes={buffer.used_bytes} "
            f"!= mirrored={sum(blocks.values())}"
        )
    for key, nbytes in blocks.items():
        kind, context_id = key.split("/", 1)
        context = registry.get(context_id)
        if not context.is_resident:
            problems.append(f"stale mirror block {key} for a spilled context")
            continue
        expected = context.kv_bytes if kind == "kv" else context.index_bytes
        if nbytes != expected:
            problems.append(
                f"mirror block {key} holds {nbytes} bytes but the context has {expected}"
            )
    if problems:
        raise AssertionError("drain invariants violated:\n  " + "\n  ".join(problems))


class AlayaDBServer:
    """An asyncio HTTP/1.1 + SSE frontend bound to one ``InferenceService``."""

    def __init__(
        self,
        service: InferenceService,
        host: str | None = None,
        port: int | None = None,
        max_body_bytes: int | None = None,
    ):
        config = service.config
        self.service = service
        self.host = host if host is not None else config.http_host
        self.port = port if port is not None else config.http_port
        self.max_body_bytes = (
            max_body_bytes if max_body_bytes is not None else config.http_max_body_bytes
        )
        self.stats = ServerStats()
        self.state = "created"
        """``created`` → ``serving`` → ``draining`` → ``stopped``."""
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._work_event = asyncio.Event()
        self._step_event = asyncio.Event()
        self._open_completions = 0
        """Completion handlers currently waiting on or streaming a request."""
        self._live_http_requests: set[int] = set()
        """Request ids submitted over HTTP and not yet answered (the set a
        cancel-mode shutdown tears down)."""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolving port 0 to the real one) and start the
        scheduler pump."""
        if self.state != "created":
            raise RuntimeError(f"server already {self.state}")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self._pump())
        self.state = "serving"

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def shutdown(self, drain: bool = True, max_seconds: float = 60.0) -> None:
        """Graceful shutdown: stop accepting, settle in-flight work, verify.

        ``drain=True`` lets every in-flight stream finish (the pump keeps
        stepping); ``drain=False`` cancels every HTTP-submitted request so
        streams end with a ``cancelled`` finish reason.  Either way the
        scheduler is then stepped dry and :func:`check_drained` asserts the
        exit is clean — zero pinned contexts, zero reservations, no
        non-terminal requests.
        """
        if self.state in ("stopped",):
            return
        self.state = "draining"
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if not drain:
            for request_id in list(self._live_http_requests):
                self.service.cancel(request_id)
        self._kick()
        deadline = asyncio.get_running_loop().time() + max_seconds
        while self._open_completions or self.service.scheduler.has_work:
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"shutdown did not settle within {max_seconds}s: "
                    f"{self._open_completions} open handlers, "
                    f"scheduler has_work={self.service.scheduler.has_work}"
                )
            self._kick()
            await asyncio.sleep(0.005)
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self.state = "stopped"
        check_drained(self.service)

    # ------------------------------------------------------------------
    # the scheduler pump
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        """Step the scheduler whenever it has work; park on an event when idle.

        Handlers never call ``service.step()`` themselves — they wait for the
        broadcast step event and re-read their request's state, so a single
        scheduler round serves every connection at once (the asyncio
        equivalent of the in-process continuous-batching loop).
        """
        while True:
            if self.service.scheduler.has_work:
                self.service.step()
                self._broadcast_step()
                await asyncio.sleep(0)
            else:
                self._work_event.clear()
                await self._work_event.wait()

    def _broadcast_step(self) -> None:
        event, self._step_event = self._step_event, asyncio.Event()
        event.set()

    def _kick(self) -> None:
        """Wake the pump and every handler parked on the step event (used
        after out-of-band state changes: submit, cancel, shutdown)."""
        self._work_event.set()
        self._broadcast_step()

    async def _wait_progress(self, watcher: asyncio.Task | None) -> bool:
        """Park until the next scheduler step; ``True`` when the client's
        connection died first (``watcher`` completed with EOF)."""
        step_event = self._step_event  # capture before awaiting: no lost wakeup
        self._work_event.set()
        waiter = asyncio.create_task(step_event.wait())
        pending = {waiter} if watcher is None else {waiter, watcher}
        done, _ = await asyncio.wait(pending, return_when=asyncio.FIRST_COMPLETED)
        if not waiter.done():
            waiter.cancel()
        if watcher is None or watcher not in done:
            return False
        # EOF and a reset both mean the client is gone; only a stray data
        # byte (a pipelining client) is not a disconnect
        return watcher.exception() is not None or watcher.result() == b""

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    request = await read_request(reader, self.max_body_bytes)
                except HttpError as exc:
                    self.stats.client_errors += 1
                    writer.write(error_response(exc, close=True))
                    await writer.drain()
                    return
                if request is None:
                    return  # clean EOF between requests
                self.stats.requests += 1
                try:
                    keep_going = await self._dispatch(request, reader, writer)
                except HttpError as exc:
                    if 400 <= exc.status < 500:
                        self.stats.client_errors += 1
                    writer.write(error_response(exc, close=not request.keep_alive))
                    await writer.drain()
                    keep_going = request.keep_alive
                if not keep_going:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            return  # the client went away mid-exchange; nothing left to say
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: HttpRequest, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether the connection may be reused."""
        path = request.path
        if path == "/v1/completions":
            if request.method != "POST":
                raise HttpError(405, "method_not_allowed", "use POST", {"Allow": "POST"})
            if self.state != "serving":
                raise HttpError(
                    503, "draining", "the server is draining and accepts no new requests"
                )
            await self._handle_completions(request, reader, writer)
            return False  # completions always close (SSE framing / read-ahead watcher)
        if path.startswith("/v1/requests/"):
            if request.method != "DELETE":
                raise HttpError(405, "method_not_allowed", "use DELETE", {"Allow": "DELETE"})
            return await self._respond(writer, self._handle_cancel(path), request.keep_alive)
        if path == "/v1/stats":
            if request.method != "GET":
                raise HttpError(405, "method_not_allowed", "use GET", {"Allow": "GET"})
            return await self._respond(writer, json_response(200, self._stats_payload()), request.keep_alive)
        if path == "/v1/health":
            if request.method != "GET":
                raise HttpError(405, "method_not_allowed", "use GET", {"Allow": "GET"})
            return await self._respond(
                writer, json_response(200, {"status": self.state}), request.keep_alive
            )
        raise HttpError(404, "not_found", f"no route for {request.method} {path}")

    async def _respond(
        self, writer: asyncio.StreamWriter, payload: bytes, keep_alive: bool
    ) -> bool:
        writer.write(payload)
        await writer.drain()
        return keep_alive

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_cancel(self, path: str) -> bytes:
        raw_id = path.removeprefix("/v1/requests/")
        try:
            request_id = int(raw_id)
        except ValueError:
            raise HttpError(400, "invalid_request_id", f"request id {raw_id!r} is not an integer")
        cancelled = self.service.cancel(request_id)
        if cancelled:
            self._kick()  # wake the stream (if any) so it observes CANCELLED
        return json_response(200, {"request_id": request_id, "cancelled": cancelled})

    def _stats_payload(self) -> dict:
        scheduler = self.service.scheduler.stats
        return {
            "state": self.state,
            "server": asdict(self.stats),
            "scheduler": asdict(scheduler),
            "memory": self.service.memory_report(),
        }

    def _parse_completion_payload(self, request: HttpRequest) -> dict:
        payload = request.json()
        unknown = sorted(set(payload) - _COMPLETION_FIELDS)
        if unknown:
            raise HttpError(
                400,
                "unknown_field",
                f"unknown field(s) {', '.join(map(repr, unknown))}; "
                f"expected a subset of {sorted(_COMPLETION_FIELDS)}",
            )
        prompt = payload.get("prompt")
        token_prompt = isinstance(prompt, list) and all(
            isinstance(t, int) and not isinstance(t, bool) for t in prompt
        )
        if not token_prompt and not isinstance(prompt, str):
            raise HttpError(
                400, "invalid_request", "prompt must be a string or a list of token ids"
            )
        max_new_tokens = payload.get("max_new_tokens", 16)
        if isinstance(max_new_tokens, bool) or not isinstance(max_new_tokens, int):
            raise HttpError(400, "invalid_request", "max_new_tokens must be an integer")
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise HttpError(400, "invalid_request", "priority must be an integer")
        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise HttpError(400, "invalid_request", "stream must be a boolean")
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise HttpError(400, "invalid_request", "tenant must be a string")
        store_context_id = payload.get("store_context_id")
        if store_context_id is not None and not isinstance(store_context_id, str):
            raise HttpError(400, "invalid_request", "store_context_id must be a string")
        slo = payload.get("slo")
        if slo is not None:
            if not isinstance(slo, dict) or not set(slo) <= {"ttft_seconds", "tpot_seconds"}:
                raise HttpError(
                    400,
                    "invalid_request",
                    "slo must be an object with ttft_seconds and/or tpot_seconds",
                )
            try:
                slo = SLO(**{k: float(v) for k, v in slo.items()})
            except (TypeError, ValueError):
                raise HttpError(400, "invalid_request", "slo fields must be numbers")
        return {
            "prompt": prompt,
            "max_new_tokens": max_new_tokens,
            "priority": priority,
            "stream": stream,
            "tenant": tenant,
            "store_context_id": store_context_id,
            "slo": slo,
        }

    def _submit(self, fields: dict):
        try:
            return self.service.submit(
                fields["prompt"],
                max_new_tokens=fields["max_new_tokens"],
                priority=fields["priority"],
                slo=fields["slo"],
                store_context_id=fields["store_context_id"],
                tenant=fields["tenant"],
            )
        except UnknownTenantError as exc:
            raise HttpError(400, "unknown_tenant", str(exc))
        except TenantThrottledError as exc:
            self.stats.throttled += 1
            raise HttpError(
                429,
                "tenant_throttled",
                str(exc),
                headers={
                    "Retry-After": str(int(math.ceil(exc.retry_after_seconds))),
                    "X-Queue-Position": str(exc.queue_position),
                    "X-Queue-Depth": str(exc.queue_depth),
                    "X-Tenant": exc.tenant,
                },
            )
        except ValueError as exc:
            raise HttpError(400, "invalid_request", str(exc))

    async def _handle_completions(
        self, request: HttpRequest, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        fields = self._parse_completion_payload(request)
        handle = self._submit(fields)
        request_id = handle.request_id
        self.stats.completions += 1
        self._live_http_requests.add(request_id)
        self._open_completions += 1
        # one byte of read-ahead doubles as the disconnect detector: a client
        # that drops the connection resolves it with EOF (b"") and the
        # request is cancelled so its reservation and pins free immediately
        watcher = asyncio.create_task(reader.read(1))
        self._kick()
        try:
            if fields["stream"]:
                await self._stream_completion(handle, writer, watcher)
            else:
                await self._blocking_completion(handle, writer, watcher)
        finally:
            self._open_completions -= 1
            self._live_http_requests.discard(request_id)
            if not watcher.done():
                watcher.cancel()

    def _disconnected(self, handle) -> None:
        """The client is gone: cancel its request and free its resources."""
        if self.service.cancel(handle.request_id):
            self.stats.disconnect_cancels += 1
            self._kick()

    def _completion_id(self, request_id: int) -> str:
        return f"cmpl-{request_id:08d}"

    def _finish_payload(self, handle) -> dict:
        """The terminal-state summary shared by both response shapes."""
        request_id = handle.request_id
        state = handle.status
        payload: dict = {
            "id": self._completion_id(request_id),
            "request_id": request_id,
            "status": state,
        }
        if state == RequestState.FINISHED:
            outcome = self.service.result(request_id)
            if outcome is None:  # aged out of the retained-results window
                payload["finish_reason"] = "unavailable"
                return payload
            result, record = outcome
            payload.update(
                finish_reason="stop" if result.finished_by_eos else "length",
                text=result.text,
                token_ids=[int(t) for t in result.generated_tokens],
                usage={
                    "prompt_tokens": record.prompt_tokens,
                    "completion_tokens": record.generated_tokens,
                    "reused_tokens": record.reused_tokens,
                    "total_tokens": record.prompt_tokens + record.generated_tokens,
                },
                ttft_seconds=record.ttft_seconds,
            )
        elif state == RequestState.CANCELLED:
            payload["finish_reason"] = "cancelled"
        elif state == RequestState.REJECTED:
            payload["finish_reason"] = "rejected"
        elif state == RequestState.FAILED:
            payload["finish_reason"] = "failed"
            payload["error"] = handle.request.error
        return payload

    async def _blocking_completion(self, handle, writer, watcher: asyncio.Task) -> None:
        while not handle.is_done:
            if await self._wait_progress(watcher):
                self._disconnected(handle)
                return  # nobody is listening for the response
            if watcher.done():
                watcher = None  # a pipelined byte arrived; stop watching
        payload = self._finish_payload(handle)
        status = {
            RequestState.FINISHED: 200,
            RequestState.CANCELLED: 499,
            RequestState.REJECTED: 422,
            RequestState.FAILED: 500,
        }.get(handle.status, 500)
        writer.write(json_response(status, payload, close=True))
        await writer.drain()

    async def _stream_completion(self, handle, writer, watcher: asyncio.Task) -> None:
        request_id = handle.request_id
        completion_id = self._completion_id(request_id)
        self.stats.streams_started += 1
        writer.write(sse_headers({"X-Request-Id": str(request_id)}))
        emitted = 0
        tokenizer = self.service.loop.tokenizer
        try:
            while True:
                tokens = self.service.generated_tokens(request_id)
                while emitted < len(tokens):
                    token_id = tokens[emitted]
                    writer.write(
                        sse_event(
                            {
                                "id": completion_id,
                                "index": emitted,
                                "token_id": int(token_id),
                                "text": tokenizer.decode([token_id]),
                            }
                        )
                    )
                    emitted += 1
                await writer.drain()  # raises once the client is gone
                if handle.is_done:
                    # flush tokens recorded between the snapshot and finish
                    tokens = self.service.generated_tokens(request_id)
                    while emitted < len(tokens):
                        token_id = tokens[emitted]
                        writer.write(
                            sse_event(
                                {
                                    "id": completion_id,
                                    "index": emitted,
                                    "token_id": int(token_id),
                                    "text": tokenizer.decode([token_id]),
                                }
                            )
                        )
                        emitted += 1
                    final = self._finish_payload(handle)
                    final["done"] = True
                    writer.write(sse_event(final))
                    writer.write(sse_event("[DONE]"))
                    await writer.drain()
                    self.stats.streams_completed += 1
                    return
                if await self._wait_progress(watcher):
                    self._disconnected(handle)
                    return
                if watcher is not None and watcher.done():
                    watcher = None  # stray bytes from the client; stop watching
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._disconnected(handle)
