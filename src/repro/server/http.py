"""Minimal HTTP/1.1 primitives over :mod:`asyncio` streams.

The serving frontend deliberately speaks a small, dependency-free subset of
HTTP/1.1 — enough for JSON request/response endpoints, server-sent-event
streaming, and the error surface a production gateway needs (structured JSON
error bodies, 413 on oversized payloads, 429 with ``Retry-After``).  Parsing
is strict about the few things that matter (a request line, CRLF-terminated
headers, ``Content-Length``-framed bodies) and rejects everything else with
a clean :class:`HttpError` instead of a traceback.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "response_bytes",
    "json_response",
    "error_response",
    "sse_headers",
    "sse_event",
    "STATUS_REASONS",
]

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_HEADER_BYTES = 16384
"""Request line + headers larger than this are refused (431-ish, sent as 400)."""


class HttpError(Exception):
    """A request the server refuses; carries everything needed to answer it.

    ``status``/``code``/``message`` become the structured JSON error body
    (``{"error": {"code": ..., "message": ...}}``); ``headers`` lets a raiser
    attach response headers (``Retry-After`` on a 429, ``Allow`` on a 405).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict[str, str] | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = headers or {}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    """Header names lower-cased; last occurrence wins."""
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless the client asked to close."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body parsed as a JSON object; :class:`HttpError` 400 otherwise."""
        if not self.body:
            raise HttpError(400, "invalid_json", "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, "invalid_json", f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpError(
                400, "invalid_json", f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF (no bytes).

    Raises :class:`HttpError` for malformed framing, missing
    ``Content-Length`` on a body-bearing method, or a body beyond
    ``max_body_bytes`` (413 — the body is not read in that case, so the
    connection must close afterwards).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "malformed_request", "connection closed mid-headers")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "headers_too_large", f"headers exceed {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "headers_too_large", f"headers exceed {MAX_HEADER_BYTES} bytes")
    try:
        request_line, *header_lines = head[:-4].decode("latin-1").split("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed_request", "unparseable request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "malformed_request", f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "malformed_request", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed_request", "non-numeric Content-Length")
        if length < 0:
            raise HttpError(400, "malformed_request", "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the {max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length)
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "length_required", f"{method} requests must send Content-Length")
    return HttpRequest(
        method=method.upper(),
        path=unquote(parts.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    close: bool = False,
) -> bytes:
    """Serialize one complete (``Content-Length``-framed) response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int, payload: dict, headers: dict[str, str] | None = None, close: bool = False
) -> bytes:
    return response_bytes(
        status, (json.dumps(payload) + "\n").encode(), headers=headers, close=close
    )


def error_response(error: HttpError, close: bool = False) -> bytes:
    """The structured JSON error body every refusal shares."""
    return json_response(
        error.status,
        {"error": {"code": error.code, "message": error.message, "status": error.status}},
        headers=error.headers,
        close=close,
    )


def sse_headers(headers: dict[str, str] | None = None) -> bytes:
    """The header block opening a server-sent-events stream.

    The stream is framed by connection close (no ``Content-Length``), so the
    response always carries ``Connection: close``.
    """
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: text/event-stream",
        "Cache-Control: no-cache",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def sse_event(data: dict | str) -> bytes:
    """One ``data:`` event frame."""
    text = data if isinstance(data, str) else json.dumps(data)
    return f"data: {text}\n\n".encode()
