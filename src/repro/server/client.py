"""A minimal asyncio client for the serving frontend.

Used by the network soak test, the HTTP serving benchmark, and
``examples/http_client.py``.  It speaks exactly the subset of HTTP/1.1 the
server does — ``Content-Length``-framed JSON exchanges and connection-close
server-sent-event streams — and exposes the disconnect path explicitly:
:meth:`SSEStream.abort` drops the TCP connection mid-stream, which the
server must translate into a request cancellation.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = ["HttpResponse", "SSEStream", "ServerClient"]

_MAX_LINE = 1 << 20


@dataclass
class HttpResponse:
    """One complete (non-streaming) HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body)


async def _read_head(reader: asyncio.StreamReader) -> tuple[int, dict[str, str]]:
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, *header_lines = head[:-4].decode("latin-1").split("\r\n")
    status = int(status_line.split(" ", 2)[1])
    headers: dict[str, str] = {}
    for line in header_lines:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return status, headers


def _request_bytes(method: str, path: str, host: str, body: bytes | None) -> bytes:
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    if body is not None:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b"")


class SSEStream:
    """An open server-sent-events response.

    Iterate :meth:`events` for decoded JSON payloads (the ``[DONE]`` sentinel
    is consumed, not yielded).  :meth:`abort` closes the socket immediately —
    the *client disconnect* the server detects and turns into a cancel.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        status: int,
        headers: dict[str, str],
    ):
        self.reader = reader
        self.writer = writer
        self.status = status
        self.headers = headers
        self.done = False
        """True once the ``[DONE]`` sentinel arrived (a complete stream)."""

    @property
    def request_id(self) -> int | None:
        raw = self.headers.get("x-request-id")
        return int(raw) if raw is not None else None

    async def events(self):
        """Yield each event's decoded JSON payload until ``[DONE]`` or EOF."""
        try:
            while True:
                try:
                    line = await self.reader.readline()
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                if not line:
                    return  # EOF without [DONE]: an aborted/cancelled stream
                line = line.strip()
                if not line.startswith(b"data: "):
                    continue
                payload = line[len(b"data: "):]
                if payload == b"[DONE]":
                    self.done = True
                    return
                yield json.loads(payload)
        finally:
            if self.done:
                await self.close()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    def abort(self) -> None:
        """Drop the connection without reading the rest of the stream."""
        transport = self.writer.transport
        if transport is not None:
            transport.abort()


class ServerClient:
    """One-connection-per-call client for :class:`~repro.server.AlayaDBServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port, limit=_MAX_LINE)

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> HttpResponse:
        """One complete JSON round trip (non-streaming endpoints)."""
        reader, writer = await self._connect()
        try:
            body = None if payload is None else json.dumps(payload).encode()
            writer.write(_request_bytes(method, path, self.host, body))
            await writer.drain()
            status, headers = await _read_head(reader)
            length = int(headers.get("content-length", 0))
            response_body = await reader.readexactly(length) if length else b""
            return HttpResponse(status=status, headers=headers, body=response_body)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def completion(self, **fields) -> HttpResponse:
        """Non-streaming ``POST /v1/completions``."""
        return await self.request("POST", "/v1/completions", dict(fields, stream=False))

    async def stream_completion(self, **fields) -> SSEStream:
        """Streaming ``POST /v1/completions``; returns the open stream.

        The caller should check ``stream.status`` — a refusal (400/429/503)
        arrives as a plain JSON response on the same connection, which
        :meth:`collect_stream` reads into the single returned event.
        """
        reader, writer = await self._connect()
        body = json.dumps(dict(fields, stream=True)).encode()
        writer.write(_request_bytes("POST", "/v1/completions", self.host, body))
        await writer.drain()
        status, headers = await _read_head(reader)
        return SSEStream(reader, writer, status, headers)

    async def collect_stream(self, **fields) -> tuple[SSEStream, list[dict]]:
        """Open a stream and read it to completion; returns (stream, events)."""
        stream = await self.stream_completion(**fields)
        if stream.status != 200:
            length = int(stream.headers.get("content-length", 0))
            error_body = await stream.reader.readexactly(length) if length else b""
            await stream.close()
            return stream, [json.loads(error_body)] if error_body else []
        events = [event async for event in stream.events()]
        return stream, events

    async def cancel(self, request_id: int) -> HttpResponse:
        return await self.request("DELETE", f"/v1/requests/{request_id}")

    async def stats(self) -> dict:
        return (await self.request("GET", "/v1/stats")).json()

    async def health(self) -> dict:
        return (await self.request("GET", "/v1/health")).json()
