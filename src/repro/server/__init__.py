"""The network serving frontend: an asyncio HTTP/1.1 + SSE gateway.

* :mod:`repro.server.app` — :class:`AlayaDBServer`, the server itself, plus
  :func:`check_drained` (the drain-time invariant checker shared with the
  soak tests);
* :mod:`repro.server.http` — the dependency-free HTTP/1.1 + SSE wire
  primitives;
* :mod:`repro.server.client` — a minimal asyncio client (used by the
  network soak, the serving benchmark, and ``examples/http_client.py``).
"""

from .app import AlayaDBServer, ServerStats, check_drained
from .client import HttpResponse, ServerClient, SSEStream
from .http import HttpError, HttpRequest

__all__ = [
    "AlayaDBServer",
    "ServerStats",
    "check_drained",
    "ServerClient",
    "SSEStream",
    "HttpResponse",
    "HttpError",
    "HttpRequest",
]
