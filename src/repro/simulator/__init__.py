"""Device, cost and SLO simulation (experimental-setup substrate)."""

from .cost_model import CostModel, ModelShape
from .device import Allocation, Device, DeviceKind, DeviceSet, DeviceSpec, GIB
from .slo import BATCH_SLO, HUMAN_READING_TPOT, INTERACTIVE_SLO, SLO, SLOReport, SLOTracker

__all__ = [
    "Allocation",
    "BATCH_SLO",
    "CostModel",
    "Device",
    "DeviceKind",
    "DeviceSet",
    "DeviceSpec",
    "GIB",
    "HUMAN_READING_TPOT",
    "INTERACTIVE_SLO",
    "ModelShape",
    "SLO",
    "SLOReport",
    "SLOTracker",
]
