"""Device, cost and SLO simulation (experimental-setup substrate)."""

from .cost_model import CostModel, ModelShape
from .device import Allocation, Device, DeviceKind, DeviceSet, DeviceSpec, GIB
from .slo import HUMAN_READING_TPOT, SLO, SLOReport, SLOTracker

__all__ = [
    "Allocation",
    "CostModel",
    "Device",
    "DeviceKind",
    "DeviceSet",
    "DeviceSpec",
    "GIB",
    "HUMAN_READING_TPOT",
    "ModelShape",
    "SLO",
    "SLOReport",
    "SLOTracker",
]
