"""Service level objectives (SLOs) for LLM serving.

The paper evaluates every method under the SLO "TPOT ≤ 0.24 s" (human reading
speed) and reports which methods can meet it.  This module provides a small
SLO object plus a tracker that accumulates per-request measurements and
reports compliance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SLOViolationError

__all__ = [
    "SLO",
    "SLOReport",
    "SLOTracker",
    "HUMAN_READING_TPOT",
    "INTERACTIVE_SLO",
    "BATCH_SLO",
]


HUMAN_READING_TPOT = 0.24
"""Seconds per output token at human reading speed (the paper's decode SLO)."""


@dataclass(frozen=True)
class SLO:
    """Latency targets for the two inference phases (seconds)."""

    tpot_seconds: float = HUMAN_READING_TPOT
    ttft_seconds: float | None = None

    def check_tpot(self, measured: float) -> bool:
        return measured <= self.tpot_seconds

    def check_ttft(self, measured: float) -> bool:
        if self.ttft_seconds is None:
            return True
        return measured <= self.ttft_seconds

    def require_tpot(self, measured: float, context: str = "") -> None:
        """Raise :class:`SLOViolationError` when the decode SLO is missed."""
        if not self.check_tpot(measured):
            raise SLOViolationError(
                f"TPOT {measured:.3f}s exceeds SLO {self.tpot_seconds:.3f}s {context}".strip()
            )

    def ttft_slack(self, waited_seconds: float) -> float:
        """Seconds remaining until the TTFT deadline after waiting this long.

        Negative once the deadline has passed; ``+inf`` when no TTFT target is
        configured.  Deadline-aware schedulers order requests by this slack.
        """
        if self.ttft_seconds is None:
            return math.inf
        return self.ttft_seconds - waited_seconds


INTERACTIVE_SLO = SLO(tpot_seconds=HUMAN_READING_TPOT, ttft_seconds=2.0)
"""A chat-style request class: human-reading TPOT plus a tight TTFT deadline."""

BATCH_SLO = SLO(tpot_seconds=4 * HUMAN_READING_TPOT, ttft_seconds=None)
"""A throughput-oriented request class with no TTFT deadline."""


@dataclass
class SLOReport:
    """Aggregate compliance over a set of measurements."""

    num_requests: int
    tpot_mean: float
    tpot_p99: float
    ttft_mean: float
    meets_tpot: bool
    meets_ttft: bool

    @property
    def meets_all(self) -> bool:
        return self.meets_tpot and self.meets_ttft


@dataclass
class SLOTracker:
    """Collects per-request TTFT / TPOT samples and summarises compliance."""

    slo: SLO = field(default_factory=SLO)
    _tpot_samples: list[float] = field(default_factory=list)
    _ttft_samples: list[float] = field(default_factory=list)

    def record(self, tpot_seconds: float | None = None, ttft_seconds: float | None = None) -> None:
        if tpot_seconds is not None:
            self._tpot_samples.append(float(tpot_seconds))
        if ttft_seconds is not None:
            self._ttft_samples.append(float(ttft_seconds))

    @property
    def num_samples(self) -> int:
        return max(len(self._tpot_samples), len(self._ttft_samples))

    def report(self) -> SLOReport:
        tpot = np.asarray(self._tpot_samples) if self._tpot_samples else np.asarray([0.0])
        ttft = np.asarray(self._ttft_samples) if self._ttft_samples else np.asarray([0.0])
        tpot_mean = float(tpot.mean())
        ttft_mean = float(ttft.mean())
        meets_tpot = bool(self.slo.check_tpot(tpot_mean)) if self._tpot_samples else True
        meets_ttft = bool(self.slo.check_ttft(ttft_mean)) if self._ttft_samples else True
        return SLOReport(
            num_requests=self.num_samples,
            tpot_mean=tpot_mean,
            tpot_p99=float(np.percentile(tpot, 99)),
            ttft_mean=ttft_mean,
            meets_tpot=meets_tpot,
            meets_ttft=meets_ttft,
        )

    def reset(self) -> None:
        self._tpot_samples.clear()
        self._ttft_samples.clear()
