"""Analytical latency cost model.

Pure-Python wall clock time on this substrate is not comparable to the
paper's GPU numbers, so the benchmark harnesses report *modelled* latencies:
roofline-style estimates driven by the number of floating point operations and
bytes each step touches on the simulated devices of
:mod:`repro.simulator.device`.  The constants are chosen so that the absolute
magnitudes land in the same range as the paper's reported measurements (e.g.
full-attention decode over a 100K context on the GPU is a few hundred
milliseconds, KV-cache loads take seconds), and — more importantly — so that
the *relationships* the paper demonstrates (linear growth of full attention
and cache loading with context length, near-constant retrieval-based decode)
follow directly from the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import DeviceSpec

__all__ = ["ModelShape", "CostModel"]


@dataclass(frozen=True)
class ModelShape:
    """The tensor shapes the cost model needs about the LLM."""

    num_layers: int = 32
    num_query_heads: int = 32
    num_kv_heads: int = 8
    head_dim: int = 128
    hidden_dim: int = 14336
    dim: int = 4096
    bytes_per_value: int = 2  # bfloat16 in the paper's setup

    @classmethod
    def llama3_8b(cls) -> "ModelShape":
        return cls()

    @property
    def kv_bytes_per_token(self) -> int:
        """KV cache bytes stored per token across all layers."""
        return 2 * self.num_layers * self.num_kv_heads * self.head_dim * self.bytes_per_value

    @property
    def weight_bytes(self) -> int:
        """Approximate model weight bytes (the paper reports 15.4 GB)."""
        attention = self.dim * self.num_query_heads * self.head_dim + 2 * self.dim * self.num_kv_heads * self.head_dim + self.num_query_heads * self.head_dim * self.dim
        mlp = 3 * self.dim * self.hidden_dim
        per_layer = attention + mlp
        embeddings = 2 * 128256 * self.dim
        return (per_layer * self.num_layers + embeddings) * self.bytes_per_value


@dataclass(frozen=True)
class CostModel:
    """Roofline-style latency estimates over the simulated devices."""

    gpu: DeviceSpec = field(default_factory=DeviceSpec.l20_gpu)
    cpu: DeviceSpec = field(default_factory=DeviceSpec.xeon_cpu)
    disk: DeviceSpec = field(default_factory=DeviceSpec.nvme_disk)
    shape: ModelShape = field(default_factory=ModelShape.llama3_8b)

    kernel_launch_overhead: float = 5e-6
    """Fixed per-kernel overhead (seconds)."""

    attention_token_overhead: float = 4.5e-8
    """Per-token, per-layer overhead of the (non-flash) attention path used
    when the full KV cache participates in a decode step.  Calibrated so a
    ~150-200K context crosses the 0.24 s TPOT SLO, matching the full-attention
    behaviour the paper reports with HuggingFace transformers."""

    graph_hop_overhead: float = 2.5e-6
    """Random-access penalty per distance computation of one CPU-side graph
    search (seconds), before dividing by the CPU search parallelism.
    Calibrated to RetrievalAttention-scale per-token retrieval latencies."""

    cpu_search_parallelism: int = 64
    """Effective parallel speedup of the per-head retrieval searches on the
    two-socket CPU (96 threads, memory-bandwidth bound)."""

    kv_decompression_bandwidth: float = 4e9
    """Raw KV bytes decompressed per second when loading a disaggregated KV
    cache back to the GPU (CacheGen-style codecs are CPU bound)."""

    gpu_knn_speedup: float = 9.0
    """Measured cuVS speedup over the CPU kNN build (paper reports 3-15x)."""

    spdk_latency: float = 10e-6
    """Per-IO latency through the SPDK user-space path (seconds)."""

    kernel_io_latency: float = 120e-6
    """Per-IO latency through the kernel block layer (seconds)."""

    # ------------------------------------------------------------------
    # primitive costs
    # ------------------------------------------------------------------
    def _device(self, on_gpu: bool) -> DeviceSpec:
        return self.gpu if on_gpu else self.cpu

    def compute_seconds(self, flops: float, on_gpu: bool = True) -> float:
        """Time to execute ``flops`` floating-point operations."""
        device = self._device(on_gpu)
        return self.kernel_launch_overhead + flops / device.compute_flops

    def memory_seconds(self, nbytes: float, on_gpu: bool = True) -> float:
        """Time to stream ``nbytes`` through device memory."""
        device = self._device(on_gpu)
        return nbytes / device.memory_bandwidth

    def transfer_seconds(self, nbytes: float) -> float:
        """Host ↔ device transfer time over the PCIe link."""
        return self.kernel_launch_overhead + nbytes / self.gpu.transfer_bandwidth

    def disk_read_seconds(self, nbytes: float, use_spdk: bool = True) -> float:
        """Read ``nbytes`` from NVMe, through SPDK or the kernel path."""
        fixed = self.spdk_latency if use_spdk else self.kernel_io_latency
        return fixed + nbytes / self.disk.memory_bandwidth

    # ------------------------------------------------------------------
    # attention and inference phases
    # ------------------------------------------------------------------
    def attention_decode_seconds(self, num_context_tokens: int, on_gpu: bool = True) -> float:
        """One decode step of attention over ``num_context_tokens`` cached tokens.

        Memory-bound: dominated by streaming the KV cache of every layer.
        """
        shape = self.shape
        kv_bytes = num_context_tokens * shape.kv_bytes_per_token
        flops = 4.0 * num_context_tokens * shape.num_query_heads * shape.head_dim * shape.num_layers
        overhead = self.attention_token_overhead * num_context_tokens * shape.num_layers
        return max(self.memory_seconds(kv_bytes, on_gpu), self.compute_seconds(flops, on_gpu)) + overhead

    def mlp_decode_seconds(self, on_gpu: bool = True) -> float:
        """Per-token cost of the non-attention (dense) part of the model."""
        shape = self.shape
        flops = 2.0 * shape.weight_bytes / shape.bytes_per_value
        return max(self.compute_seconds(flops, on_gpu), self.memory_seconds(shape.weight_bytes, on_gpu))

    def prefill_seconds(self, num_prompt_tokens: int, on_gpu: bool = True) -> float:
        """Full prefill over ``num_prompt_tokens`` (quadratic attention term)."""
        shape = self.shape
        attention_flops = 4.0 * num_prompt_tokens**2 * shape.num_query_heads * shape.head_dim * shape.num_layers
        dense_flops = num_prompt_tokens * 2.0 * shape.weight_bytes / shape.bytes_per_value
        return self.compute_seconds(attention_flops + dense_flops, on_gpu)

    def sparse_decode_seconds(
        self,
        num_selected_tokens: int,
        num_distance_computations: int,
        num_heads_searched: int | None = None,
        retrieval_on_gpu: bool = False,
    ) -> float:
        """One decode step with retrieval-based sparse attention.

        The retrieval part (graph traversal / scan) usually runs on CPU; the
        attention over the selected tokens and the dense layers run on GPU.
        """
        shape = self.shape
        heads = num_heads_searched if num_heads_searched is not None else shape.num_query_heads * shape.num_layers
        retrieval_flops = 2.0 * num_distance_computations * shape.head_dim * heads
        retrieval = self.compute_seconds(retrieval_flops, on_gpu=retrieval_on_gpu)
        retrieval += self.graph_hop_overhead * num_distance_computations * heads / self.cpu_search_parallelism
        attention = self.attention_decode_seconds(num_selected_tokens, on_gpu=True)
        return retrieval + attention + self.mlp_decode_seconds()

    def full_decode_seconds(self, num_context_tokens: int) -> float:
        """One decode step with full attention over the whole context."""
        return self.attention_decode_seconds(num_context_tokens) + self.mlp_decode_seconds()

    # ------------------------------------------------------------------
    # KV cache movement (LMCache-style reuse)
    # ------------------------------------------------------------------
    def kv_load_seconds(self, num_tokens: int, compressed_ratio: float = 0.25, decompress: bool = True) -> float:
        """Load a stored KV cache back onto the GPU (transfer + decompression)."""
        shape = self.shape
        raw_bytes = num_tokens * shape.kv_bytes_per_token
        stored_bytes = raw_bytes * compressed_ratio
        transfer = self.transfer_seconds(stored_bytes)
        decompression = raw_bytes / self.kv_decompression_bandwidth if decompress else 0.0
        return transfer + decompression

    # ------------------------------------------------------------------
    # index construction (Figure 11)
    # ------------------------------------------------------------------
    def knn_build_seconds(self, num_keys: int, num_queries: int, on_gpu: bool = False) -> float:
        """Cost of the q→k exact kNN stage for one index."""
        shape = self.shape
        flops = 2.0 * num_keys * num_queries * shape.head_dim
        seconds = self.compute_seconds(flops, on_gpu=False)
        if on_gpu:
            seconds /= self.gpu_knn_speedup
        return seconds

    def index_build_seconds(
        self,
        num_keys: int,
        num_queries: int,
        num_indexes: int,
        on_gpu: bool = False,
        pipeline_overlap: bool = True,
    ) -> float:
        """Total construction time for ``num_indexes`` RoarGraph indexes.

        Includes the connectivity-enhancement pass (modelled at ~40% of the
        kNN stage) and, for the GPU path, the CPU→GPU key transfer which the
        paper overlaps with computation layer by layer.
        """
        knn = self.knn_build_seconds(num_keys, num_queries, on_gpu)
        enhancement = 0.4 * self.knn_build_seconds(num_keys, num_keys // 8, on_gpu)
        per_index = knn + enhancement
        total = per_index * num_indexes
        if on_gpu:
            transfer = self.transfer_seconds(num_keys * self.shape.head_dim * self.shape.bytes_per_value) * num_indexes
            total += 0.1 * transfer if pipeline_overlap else transfer
        return total
