"""Simulated compute devices with memory accounting.

The paper evaluates GPU memory consumption (48 GB NVIDIA L20) alongside
latency and quality.  This module provides explicit device objects that track
every allocation in bytes, so "GPU memory usage" in the benchmark harnesses
is the same arithmetic the paper performs over tensor shapes, and exceeding a
device's capacity is an error exactly like a CUDA OOM would be.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import OutOfDeviceMemoryError

__all__ = ["DeviceKind", "DeviceSpec", "Allocation", "Device", "DeviceSet"]


GIB = 1024**3


class DeviceKind:
    """String constants for device kinds."""

    GPU = "gpu"
    CPU = "cpu"
    DISK = "disk"


@dataclass(frozen=True)
class DeviceSpec:
    """Capacity and bandwidth description of one device.

    Bandwidths are in bytes/second and feed the latency cost model.  The
    defaults for the GPU mirror the paper's NVIDIA L20 (48 GB, ~864 GB/s
    memory bandwidth, PCIe 4.0 x16 host link ~25 GB/s usable).
    """

    name: str
    kind: str
    capacity_bytes: int
    memory_bandwidth: float
    transfer_bandwidth: float
    compute_flops: float

    @classmethod
    def l20_gpu(cls) -> "DeviceSpec":
        return cls(
            name="gpu0",
            kind=DeviceKind.GPU,
            capacity_bytes=48 * GIB,
            memory_bandwidth=864e9,
            transfer_bandwidth=25e9,
            compute_flops=60e12,
        )

    @classmethod
    def xeon_cpu(cls) -> "DeviceSpec":
        return cls(
            name="cpu0",
            kind=DeviceKind.CPU,
            capacity_bytes=512 * GIB,
            memory_bandwidth=300e9,
            transfer_bandwidth=25e9,
            compute_flops=3e12,
        )

    @classmethod
    def nvme_disk(cls) -> "DeviceSpec":
        return cls(
            name="disk0",
            kind=DeviceKind.DISK,
            capacity_bytes=4096 * GIB,
            memory_bandwidth=7e9,
            transfer_bandwidth=7e9,
            compute_flops=0.0,
        )


@dataclass
class Allocation:
    """One named allocation on a device."""

    tag: str
    nbytes: int


class Device:
    """A simulated device: a spec plus a ledger of live allocations."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self._allocations: dict[str, Allocation] = {}

    # ------------------------------------------------------------------
    # allocation ledger
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.spec.capacity_bytes - self.used_bytes

    def allocate(self, tag: str, nbytes: int) -> Allocation:
        """Record an allocation; raises :class:`OutOfDeviceMemoryError` on overflow."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        existing = self._allocations.get(tag)
        already = existing.nbytes if existing else 0
        if self.used_bytes - already + nbytes > self.spec.capacity_bytes:
            raise OutOfDeviceMemoryError(
                f"{self.spec.name}: allocating {nbytes / GIB:.2f} GiB for '{tag}' exceeds "
                f"capacity {self.spec.capacity_bytes / GIB:.2f} GiB "
                f"(in use: {self.used_bytes / GIB:.2f} GiB)"
            )
        allocation = Allocation(tag=tag, nbytes=nbytes)
        self._allocations[tag] = allocation
        return allocation

    def allocate_array(self, tag: str, array: np.ndarray) -> Allocation:
        """Record an allocation sized to hold ``array``."""
        return self.allocate(tag, int(array.nbytes))

    def free(self, tag: str) -> None:
        """Release an allocation (no error when the tag is unknown)."""
        self._allocations.pop(tag, None)

    def usage_by_tag(self) -> dict[str, int]:
        return {tag: allocation.nbytes for tag, allocation in self._allocations.items()}

    def reset(self) -> None:
        self._allocations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Device({self.spec.name}, used={self.used_bytes / GIB:.2f}GiB/{self.spec.capacity_bytes / GIB:.0f}GiB)"


@dataclass
class DeviceSet:
    """The standard simulated machine: one GPU, one CPU, one NVMe disk."""

    gpu: Device = field(default_factory=lambda: Device(DeviceSpec.l20_gpu()))
    cpu: Device = field(default_factory=lambda: Device(DeviceSpec.xeon_cpu()))
    disk: Device = field(default_factory=lambda: Device(DeviceSpec.nvme_disk()))

    def reset(self) -> None:
        self.gpu.reset()
        self.cpu.reset()
        self.disk.reset()

    def by_kind(self, kind: str) -> Device:
        mapping = {DeviceKind.GPU: self.gpu, DeviceKind.CPU: self.cpu, DeviceKind.DISK: self.disk}
        return mapping[kind]
