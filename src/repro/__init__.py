"""repro — a reproduction of AlayaDB (SIGMOD 2025).

AlayaDB decouples the KV cache and the attention computation from the LLM
inference engine and encapsulates both in a vector database.  The top-level
package re-exports the pieces most applications need:

* :class:`repro.core.DB` and :class:`repro.core.Session` — the user interface
  (Table 2 of the paper),
* :class:`repro.core.AlayaDBConfig` — serving configuration,
* :class:`repro.core.InferenceService` with :class:`repro.core.RequestHandle`
  and :class:`repro.core.ChatSession` — the serving API (streaming handles,
  multi-turn chat with cross-turn KV reuse, cancellation), with an
  OpenAI-style facade in :mod:`repro.api`,
* :class:`repro.llm.TransformerModel` — the NumPy LLM substrate the examples
  and benchmarks run against,
* :mod:`repro.baselines` — the systems AlayaDB is compared with,
* :mod:`repro.workloads` — synthetic ∞-Bench / LongBench-style tasks.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core.config import AlayaDBConfig
from .core.db import DB
from .core.handles import ChatSession, RequestHandle
from .core.service import InferenceService
from .core.session import Session
from .errors import ReproError
from .llm.model import ModelConfig, TransformerModel

__version__ = "1.0.0"

__all__ = [
    "AlayaDBConfig",
    "ChatSession",
    "DB",
    "InferenceService",
    "ModelConfig",
    "ReproError",
    "RequestHandle",
    "Session",
    "TransformerModel",
    "__version__",
]
