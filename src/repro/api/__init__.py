"""The client-facing serving API (what an HTTP frontend would mount).

Three layers, thinnest on top:

* :class:`repro.api.Completions` / :class:`repro.api.Client` — an
  OpenAI-style facade (``create(prompt, stream=True)``) mapping directly
  onto request handles;
* :class:`repro.core.handles.RequestHandle` — per-request status /
  streaming / result / cancel (re-exported here for convenience);
* :class:`repro.core.handles.ChatSession` — multi-turn conversations with
  cross-turn KV reuse through the context store.
"""

from ..core.handles import ChatSession, ChatTurn, RequestHandle
from .completions import (
    Client,
    Completion,
    CompletionChoice,
    CompletionChunk,
    Completions,
    CompletionUsage,
)

__all__ = [
    "ChatSession",
    "ChatTurn",
    "Client",
    "Completion",
    "CompletionChoice",
    "CompletionChunk",
    "Completions",
    "CompletionUsage",
    "RequestHandle",
]
