"""An OpenAI-style completions facade over the handle-based serving API.

``Completions.create(prompt=..., stream=True)`` is what an HTTP frontend
would expose: it maps one-to-one onto :meth:`InferenceService.submit` and the
:class:`~repro.core.handles.RequestHandle` it returns — streaming yields
:class:`CompletionChunk` deltas as scheduler steps produce tokens, and the
non-streaming call blocks for a :class:`Completion` with usage accounting
(including ``reused_tokens``, the AlayaDB-specific field that reports how
much of the prompt's KV came from the context store instead of prefill).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.handles import RequestHandle
    from ..core.service import InferenceService
    from ..simulator.slo import SLO

__all__ = ["CompletionUsage", "CompletionChoice", "Completion", "CompletionChunk", "Completions"]


@dataclass
class CompletionUsage:
    """Token accounting of one completion."""

    prompt_tokens: int
    completion_tokens: int
    reused_tokens: int
    """Prompt tokens whose KV was reused from the context store (no prefill)."""

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass
class CompletionChoice:
    """One generated alternative (this substrate produces exactly one)."""

    index: int
    text: str
    token_ids: list[int] = field(default_factory=list)
    finish_reason: str = "length"
    """``"stop"`` when generation hit EOS, ``"length"`` otherwise."""


@dataclass
class Completion:
    """The non-streaming response object."""

    id: str
    choices: list[CompletionChoice]
    usage: CompletionUsage
    ttft_seconds: float = 0.0

    @property
    def text(self) -> str:
        return self.choices[0].text if self.choices else ""


@dataclass
class CompletionChunk:
    """One streamed delta: a single token and its decoded text."""

    id: str
    index: int
    token_id: int
    text: str


class Completions:
    """``client.completions.create(...)``-style entry point.

    Construct it around an :class:`InferenceService` (or use
    :class:`Client`, which does so for you).
    """

    def __init__(self, service: "InferenceService"):
        self._service = service

    def create(
        self,
        prompt: str | list[int],
        max_new_tokens: int = 16,
        stream: bool = False,
        priority: int = 0,
        slo: "SLO | None" = None,
        store_context_id: str | None = None,
        tenant: str | None = None,
    ) -> Completion | Iterator[CompletionChunk]:
        """Serve one completion.

        With ``stream=False`` the call blocks (driving the scheduler) and
        returns a :class:`Completion`.  With ``stream=True`` it returns an
        iterator of :class:`CompletionChunk` deltas backed by
        ``RequestHandle.tokens()`` — cancellation of the underlying request
        simply ends the stream early.  ``tenant`` attributes the request for
        fairness/quota accounting when the service runs tenant governance.
        """
        handle = self._service.submit(
            prompt,
            max_new_tokens=max_new_tokens,
            priority=priority,
            slo=slo,
            store_context_id=store_context_id,
            tenant=tenant,
        )
        if stream:
            return self._stream(handle)
        return self._complete(handle)

    def _completion_id(self, handle: "RequestHandle") -> str:
        return f"cmpl-{handle.request_id:08d}"

    def _stream(self, handle: "RequestHandle") -> Iterator[CompletionChunk]:
        tokenizer = self._service.loop.tokenizer
        completion_id = self._completion_id(handle)
        for index, token_id in enumerate(handle.tokens()):
            yield CompletionChunk(
                id=completion_id,
                index=index,
                token_id=token_id,
                text=tokenizer.decode([token_id]),
            )

    def _complete(self, handle: "RequestHandle") -> Completion:
        result, record = handle.result()
        choice = CompletionChoice(
            index=0,
            text=result.text,
            token_ids=list(result.generated_tokens),
            finish_reason="stop" if result.finished_by_eos else "length",
        )
        usage = CompletionUsage(
            prompt_tokens=record.prompt_tokens,
            completion_tokens=record.generated_tokens,
            reused_tokens=record.reused_tokens,
        )
        return Completion(
            id=self._completion_id(handle),
            choices=[choice],
            usage=usage,
            ttft_seconds=record.ttft_seconds,
        )


class Client:
    """A minimal OpenAI-client-shaped wrapper: ``Client(service).completions``.

    ``client.chat(...)`` opens a :class:`~repro.core.handles.ChatSession`
    (the multi-turn, KV-reusing counterpart of one-shot completions);
    ``export_context`` / ``import_context`` move single stored contexts
    between services as portable bundle directories.
    """

    def __init__(self, service: "InferenceService"):
        self.service = service
        self.completions = Completions(service)

    def chat(self, context_id: str | None = None, max_new_tokens: int = 16):
        return self.service.chat(context_id=context_id, max_new_tokens=max_new_tokens)

    def export_context(self, context_id: str, dest_dir):
        """Export one stored context (snapshot + indexes + catalog row) as a
        portable bundle directory; returns the bundle path."""
        return self.service.db.export_context(context_id, dest_dir)

    def import_context(self, src_dir, context_id: str | None = None, overwrite: bool = False):
        """Import a bundle exported by :meth:`export_context`; the imported
        context serves prefix hits without re-prefilling or re-indexing."""
        return self.service.db.import_context_bundle(
            src_dir, context_id=context_id, overwrite=overwrite
        )
