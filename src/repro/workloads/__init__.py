"""Synthetic long-context workloads and their evaluation harness."""

from .evaluation import MethodEvaluation, evaluate_strategy
from .generator import ScoringMode, SyntheticWorkload, WorkloadSpec, generate_workload
from .infinite_bench import INFINITE_BENCH_TASKS, infinite_bench_names, infinite_bench_task
from .longbench import LONGBENCH_TASKS, LongBenchTask, longbench_names, longbench_task
from .scoring import needle_hit, recovery_ratio, softmax_weights, tokens_for_recovery
from .trace import RequestTrace, TraceRequest, TraceSpec, generate_trace

__all__ = [
    "INFINITE_BENCH_TASKS",
    "LONGBENCH_TASKS",
    "LongBenchTask",
    "MethodEvaluation",
    "RequestTrace",
    "ScoringMode",
    "SyntheticWorkload",
    "WorkloadSpec",
    "evaluate_strategy",
    "generate_workload",
    "infinite_bench_names",
    "infinite_bench_task",
    "longbench_names",
    "longbench_task",
    "TraceRequest",
    "TraceSpec",
    "generate_trace",
    "needle_hit",
    "recovery_ratio",
    "softmax_weights",
    "tokens_for_recovery",
]
