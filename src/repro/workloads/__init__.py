"""Synthetic long-context workloads and their evaluation harness."""

from .engine import (
    QualityGateResult,
    ReplayEvent,
    ReplayReport,
    ReplayTrace,
    TenantMixSpec,
    WorkloadEngineSpec,
    generate_replay_trace,
    replay_http,
    replay_router,
    replay_scheduler,
    score_quality_gate,
    tenant_specs,
)
from .evaluation import MethodEvaluation, evaluate_strategy
from .generator import ScoringMode, SyntheticWorkload, WorkloadSpec, generate_workload
from .infinite_bench import INFINITE_BENCH_TASKS, infinite_bench_names, infinite_bench_task
from .longbench import LONGBENCH_TASKS, LongBenchTask, longbench_names, longbench_task
from .scoring import needle_hit, recovery_ratio, softmax_weights, tokens_for_recovery
from .trace import (
    RequestTrace,
    TraceRequest,
    TraceSpec,
    diurnal_rate,
    generate_trace,
    heavy_tailed_lengths,
    sample_arrival_times,
)

__all__ = [
    "INFINITE_BENCH_TASKS",
    "LONGBENCH_TASKS",
    "LongBenchTask",
    "MethodEvaluation",
    "QualityGateResult",
    "ReplayEvent",
    "ReplayReport",
    "ReplayTrace",
    "RequestTrace",
    "ScoringMode",
    "SyntheticWorkload",
    "TenantMixSpec",
    "TraceRequest",
    "TraceSpec",
    "WorkloadEngineSpec",
    "WorkloadSpec",
    "diurnal_rate",
    "evaluate_strategy",
    "generate_replay_trace",
    "generate_trace",
    "generate_workload",
    "heavy_tailed_lengths",
    "infinite_bench_names",
    "infinite_bench_task",
    "longbench_names",
    "longbench_task",
    "needle_hit",
    "recovery_ratio",
    "replay_http",
    "replay_router",
    "replay_scheduler",
    "sample_arrival_times",
    "score_quality_gate",
    "softmax_weights",
    "tenant_specs",
    "tokens_for_recovery",
]
