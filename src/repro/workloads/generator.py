"""Synthetic long-context workload generation.

The paper evaluates on ∞-Bench and LongBench with Llama-3-8B-Instruct-262k.
Neither the datasets nor the model are available offline, so this module
generates synthetic workloads that control the property those experiments
actually measure: **how the attention mass of each head distributes over the
context, and which positions carry the evidence the task needs**.

For every KV head the generator plants

* a set of *evidence (needle) positions* whose keys align strongly with the
  decode queries — the tokens a correct answer must attend to, and
* a per-head number of *critical tokens* (evidence plus distractors with
  elevated scores), drawn from a task-specific distribution, which reproduces
  the observation of Figure 5 that different heads need wildly different
  numbers of tokens.

Everything else is low-scoring background.  Because the score structure is
planted, the ground-truth attention distribution, the recovery ratio and the
evidence coverage of any sparse-attention method can be computed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.context_store import StoredContext
from ..kvcache.serialization import KVSnapshot

__all__ = ["ScoringMode", "WorkloadSpec", "SyntheticWorkload", "generate_workload"]


class ScoringMode:
    """How a task converts attended positions into a quality score."""

    NEEDLE = "needle"
    """Exact retrieval: a query is correct only if *every* evidence position
    of the designated retrieval head is attended (Retr.KV, Retr.P, ...)."""

    RECOVERY = "recovery"
    """Graded comprehension: the score is the fraction of the full-attention
    probability mass captured by the attended positions (En.QA, En.Sum, ...)."""


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic task."""

    name: str
    context_length: int = 8192
    num_layers: int = 1
    num_query_heads: int = 8
    num_kv_heads: int = 4
    head_dim: int = 32
    num_decode_steps: int = 8

    num_evidence_tokens: int = 2
    """Evidence (needle) positions per decode step."""

    critical_fraction_low: float = 0.002
    critical_fraction_high: float = 0.02
    """Per-head critical-token counts are drawn log-uniformly between these
    fractions of the context length (heads differ, as in Figure 5)."""

    evidence_margin: float = 5.0
    """Extra boost of the evidence keys along the step's evidence direction,
    on top of the critical boost; larger = easier task."""

    critical_margin: float = 9.0
    """Boost of critical-token keys along the head's critical direction.
    With the default query construction this translates into a pre-softmax
    logit gap of roughly ``0.55 x critical_margin`` over the background for
    the evidence head (and the full margin for the other heads), i.e. the
    critical tokens dominate the softmax mass the way they do in real
    long-context attention."""

    index_query_fraction: float = 0.4
    """Historical (prefill-style) query vectors generated per KV-head group
    for index construction, as a fraction of the context length — the paper
    samples 40% of the key count.  These are what make RoarGraph's bipartite
    projection interconnect the critical tokens densely."""

    scoring: str = ScoringMode.NEEDLE
    paper_full_attention_score: float = 100.0
    """The score the paper reports for full attention on this task (used only
    for labelling the benchmark output)."""

    paper_context_length: int = 100_000
    """The real task's average context length, used by the latency/memory
    models so modelled numbers refer to paper-scale contexts."""

    seed: int = 0

    @property
    def gqa_group_size(self) -> int:
        return self.num_query_heads // self.num_kv_heads


@dataclass
class SyntheticWorkload:
    """A generated task instance ready for method evaluation."""

    spec: WorkloadSpec
    context: StoredContext
    decode_queries: np.ndarray
    """Decode query vectors, ``(num_decode_steps, num_layers, num_query_heads, head_dim)``."""

    evidence_positions: np.ndarray
    """Evidence positions per step, ``(num_decode_steps, num_evidence_tokens)``."""

    evidence_heads: np.ndarray
    """The query heads whose retrieval is responsible for each step's answer,
    ``(num_decode_steps,)``."""

    critical_counts: np.ndarray
    """Planted number of critical tokens per (layer, kv head)."""

    critical_positions: dict = field(default_factory=dict)
    """``{(layer, kv_head): np.ndarray}`` of planted critical positions."""

    @property
    def context_length(self) -> int:
        return self.spec.context_length

    def query_for(self, step: int, layer: int, query_head: int) -> np.ndarray:
        return self.decode_queries[step, layer, query_head]

    def true_scores(self, step: int, layer: int, kv_head: int, query_head: int | None = None) -> np.ndarray:
        """Exact pre-softmax logits of one head's query against the full context."""
        if query_head is None:
            query_head = kv_head * self.spec.gqa_group_size
        query = self.decode_queries[step, layer, query_head]
        keys = self.context.keys(layer)[kv_head]
        return (keys @ query) / np.sqrt(self.spec.head_dim)


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


def generate_workload(spec: WorkloadSpec) -> SyntheticWorkload:
    """Generate a synthetic workload according to ``spec``.

    Construction per (layer, kv head):

    1. background keys ~ isotropic Gaussian with small norm;
    2. a per-head *critical direction*; the head's planted critical tokens are
       background + ``critical_margin`` along that direction;
    3. per decode step, the evidence positions additionally receive
       ``evidence_margin`` along the step's *evidence direction*;
    4. decode queries are the sum of the head's critical direction and the
       step's evidence direction plus noise, so the evidence positions have
       the largest inner products, followed by the head's critical tokens,
       followed by background.
    """
    rng = np.random.default_rng(spec.seed)
    n, d = spec.context_length, spec.head_dim
    num_layers, num_kv, num_q = spec.num_layers, spec.num_kv_heads, spec.num_query_heads
    group = spec.gqa_group_size

    # evidence positions (globally unique so no token is boosted twice) and
    # the heads responsible for finding them
    margin_tokens = spec.context_length // 20
    middle = np.arange(margin_tokens, spec.context_length - margin_tokens, dtype=np.int64)
    drawn = rng.choice(middle, size=spec.num_decode_steps * spec.num_evidence_tokens, replace=False)
    evidence_positions = drawn.reshape(spec.num_decode_steps, spec.num_evidence_tokens).astype(np.int64)
    evidence_heads = rng.integers(0, num_q, size=spec.num_decode_steps).astype(np.int64)

    # per-head critical-token counts (log-uniform between the spec fractions)
    log_low = np.log(max(spec.critical_fraction_low * n, 1.0))
    log_high = np.log(max(spec.critical_fraction_high * n, 2.0))
    critical_counts = np.exp(rng.uniform(log_low, log_high, size=(num_layers, num_kv))).astype(np.int64)
    critical_counts = np.clip(critical_counts, 1, n // 2)

    keys: dict[int, np.ndarray] = {}
    values: dict[int, np.ndarray] = {}
    critical_positions: dict[tuple[int, int], np.ndarray] = {}
    critical_directions = np.empty((num_layers, num_kv, d), dtype=np.float32)
    evidence_directions = np.empty((spec.num_decode_steps, d), dtype=np.float32)
    for step in range(spec.num_decode_steps):
        evidence_directions[step] = _unit(rng.normal(size=d)).astype(np.float32)

    for layer in range(num_layers):
        layer_keys = rng.normal(0.0, 0.35, size=(num_kv, n, d)).astype(np.float32)
        layer_values = rng.normal(0.0, 1.0, size=(num_kv, n, d)).astype(np.float32)
        all_evidence = np.unique(evidence_positions.reshape(-1))
        non_evidence = np.setdiff1d(np.arange(n, dtype=np.int64), all_evidence)
        for kv_head in range(num_kv):
            direction = _unit(rng.normal(size=d)).astype(np.float32)
            critical_directions[layer, kv_head] = direction
            count = int(critical_counts[layer, kv_head])
            # critical distractors never coincide with evidence positions, so
            # no token is boosted twice and the evidence stays the per-head
            # score maximum for its step's query
            positions = rng.choice(non_evidence, size=min(count, non_evidence.shape[0]), replace=False).astype(np.int64)
            critical_positions[(layer, kv_head)] = np.sort(positions)
            layer_keys[kv_head, positions, :] += spec.critical_margin * direction
            # evidence tokens are the strongest critical tokens: they carry the
            # head's critical direction *and* the step's evidence direction,
            # so they out-score the distractor criticals for the evidence head
            for step in range(spec.num_decode_steps):
                planted = evidence_positions[step]
                layer_keys[kv_head, planted, :] += (
                    spec.critical_margin * direction
                    + spec.evidence_margin * evidence_directions[step]
                )
        keys[layer] = layer_keys
        values[layer] = layer_values

    # decode queries: evidence-seeking for the responsible head, generic
    # critical-direction queries for the others
    decode_queries = np.empty((spec.num_decode_steps, num_layers, num_q, d), dtype=np.float32)
    for step in range(spec.num_decode_steps):
        for layer in range(num_layers):
            for query_head in range(num_q):
                kv_head = query_head // group
                base = critical_directions[layer, kv_head].copy()
                if query_head == int(evidence_heads[step]):
                    base = base + 1.5 * evidence_directions[step]
                noise = rng.normal(0.0, 0.15, size=d).astype(np.float32)
                decode_queries[step, layer, query_head] = (_unit(base) * np.sqrt(d) + noise).astype(np.float32)

    # historical (prefill-style) query vectors used for index construction:
    # drawn from the same distribution as the decode queries, with per-query
    # noise so different queries surface different critical tokens and the
    # bipartite projection interconnects the whole critical set.
    queries_per_head = max(16, int(spec.index_query_fraction * n / max(group, 1)))
    index_queries: dict[int, np.ndarray] = {}
    for layer in range(num_layers):
        per_layer = np.empty((num_q, queries_per_head, d), dtype=np.float32)
        for query_head in range(num_q):
            kv_head = query_head // group
            direction = critical_directions[layer, kv_head]
            mix = rng.normal(0.0, 0.4, size=(queries_per_head, 1)).astype(np.float32)
            evidence_mix = evidence_directions[rng.integers(0, spec.num_decode_steps, size=queries_per_head)]
            base = direction[None, :] + mix * evidence_mix
            base = base / np.linalg.norm(base, axis=1, keepdims=True)
            noise = rng.normal(0.0, 0.3, size=(queries_per_head, d)).astype(np.float32)
            per_layer[query_head] = base * np.sqrt(d) + noise
        index_queries[layer] = per_layer

    tokens = list(rng.integers(0, 255, size=n).astype(int))
    snapshot = KVSnapshot(tokens=tokens, keys=keys, values=values)
    context = StoredContext(context_id=f"workload-{spec.name}", snapshot=snapshot)
    context.query_samples = index_queries

    return SyntheticWorkload(
        spec=spec,
        context=context,
        decode_queries=decode_queries,
        evidence_positions=evidence_positions,
        evidence_heads=evidence_heads,
        critical_counts=critical_counts,
        critical_positions=critical_positions,
    )
