"""Evaluation harness: run a selection strategy over a synthetic workload.

One evaluation run replays every decode step of a workload against a
strategy, records which positions each head attends (resident window ∪
retrieved), and aggregates

* the task quality score (needle accuracy or recovery ratio, per the task's
  scoring mode),
* the retrieval work (selected tokens, distance computations) needed by the
  latency model, and
* the GPU-resident token count needed by the memory model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import SelectionStrategy
from ..simulator.cost_model import CostModel
from ..simulator.slo import SLO
from .generator import ScoringMode, SyntheticWorkload
from .scoring import needle_hit, recovery_ratio

__all__ = ["MethodEvaluation", "evaluate_strategy"]


@dataclass
class MethodEvaluation:
    """Aggregated result of evaluating one method on one workload."""

    method: str
    workload: str
    quality: float
    mean_selected_per_head: float
    mean_distance_computations: float
    resident_tokens: int
    gpu_tokens: int
    num_steps: int
    per_step_quality: list[float] = field(default_factory=list)

    def modeled_tpot_seconds(
        self,
        cost_model: CostModel,
        context_length: int | None = None,
        *,
        empty_selection: str = "dense",
    ) -> float:
        """Modelled decode latency per token at paper scale.

        Fractional per-head work is rounded *up*: a strategy whose mean
        selection is 0.9 tokens per head still pays for one token, instead of
        being flattened to zero work by an ``int()`` floor.

        ``empty_selection`` says what a run that recorded no selection work at
        all (no retrieved tokens *and* no resident window) means:

        * ``"dense"`` — the method attends densely without reporting per-head
          selections; its decode is modelled as full attention over
          ``context_length`` (which must then be provided);
        * ``"none"`` — the method legitimately attends nothing (an empty
          selection), modelled as zero attended tokens.
        """
        if empty_selection not in ("dense", "none"):
            raise ValueError(
                f"empty_selection must be 'dense' or 'none', got {empty_selection!r}"
            )
        shape = cost_model.shape
        selected = self.mean_selected_per_head + self.resident_tokens
        if self.mean_selected_per_head == 0 and self.resident_tokens == 0:
            if empty_selection == "dense":
                if context_length is None:
                    raise ValueError(
                        "a run with no recorded selection work is modelled as dense "
                        "attention; pass context_length (or empty_selection='none' "
                        "for a method that truly attends nothing)"
                    )
                selected = context_length
        return cost_model.sparse_decode_seconds(
            num_selected_tokens=int(math.ceil(selected)),
            num_distance_computations=int(math.ceil(self.mean_distance_computations)),
            num_heads_searched=shape.num_query_heads * shape.num_layers,
        )

    def modeled_full_tpot_seconds(self, cost_model: CostModel, context_length: int) -> float:
        return cost_model.full_decode_seconds(context_length)

    def meets_slo(self, cost_model: CostModel, slo: SLO, context_length: int, is_full_attention: bool = False) -> bool:
        if is_full_attention:
            return slo.check_tpot(self.modeled_full_tpot_seconds(cost_model, context_length))
        return slo.check_tpot(self.modeled_tpot_seconds(cost_model, context_length))

    def gpu_memory_bytes(self, cost_model: CostModel, include_weights: bool = True) -> int:
        """Modelled GPU bytes at paper scale: weights + resident KV."""
        shape = cost_model.shape
        kv = self.gpu_tokens * shape.kv_bytes_per_token
        weights = shape.weight_bytes if include_weights else 0
        return int(kv + weights)


def evaluate_strategy(
    strategy: SelectionStrategy,
    workload: SyntheticWorkload,
    include_local_window: bool = True,
) -> MethodEvaluation:
    """Replay every decode step of ``workload`` against ``strategy``."""
    spec = workload.spec
    strategy.prepare(workload.context, spec.num_query_heads)
    context_length = spec.context_length
    resident = strategy.resident_positions(context_length)

    per_step_quality: list[float] = []
    total_selected = 0
    total_distance = 0
    num_selections = 0

    for step in range(spec.num_decode_steps):
        evidence = workload.evidence_positions[step]
        evidence_head = int(workload.evidence_heads[step])
        step_recoveries: list[float] = []
        step_hits: list[bool] = []
        for layer in range(spec.num_layers):
            for query_head in range(spec.num_query_heads):
                kv_head = query_head // spec.gqa_group_size
                query = workload.query_for(step, layer, query_head)
                outcome = strategy.select(layer, query_head, query, context_length)
                total_selected += outcome.num_selected
                total_distance += outcome.num_distance_computations
                num_selections += 1
                attended = outcome.positions
                if include_local_window and resident.size:
                    attended = np.union1d(attended, resident)
                true_scores = workload.true_scores(step, layer, kv_head, query_head)
                step_recoveries.append(recovery_ratio(true_scores, attended))
                if query_head == evidence_head:
                    step_hits.append(needle_hit(evidence, attended))
        if spec.scoring == ScoringMode.NEEDLE:
            per_step_quality.append(100.0 * (1.0 if step_hits and all(step_hits) else 0.0))
        else:
            per_step_quality.append(100.0 * float(np.mean(step_recoveries)))

    quality = float(np.mean(per_step_quality)) if per_step_quality else 0.0
    return MethodEvaluation(
        method=strategy.describe(),
        workload=spec.name,
        quality=quality,
        mean_selected_per_head=total_selected / max(num_selections, 1),
        mean_distance_computations=total_distance / max(num_selections, 1),
        resident_tokens=int(resident.shape[0]),
        gpu_tokens=strategy.gpu_token_equivalent(context_length),
        num_steps=spec.num_decode_steps,
        per_step_quality=per_step_quality,
    )
