"""Request-trace generation for serving experiments.

A MaaS deployment sees streams of requests in which many users ask different
questions about a small library of shared long documents (the paper's
financial-analysis and legal-assistant use cases).  This module synthesises
such traces so the serving layer (:class:`repro.core.service.InferenceService`)
and the context-reuse machinery can be exercised under a realistic request
mix: repeated documents, varying question lengths, and occasional requests
about documents that are not in the library at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TraceRequest",
    "RequestTrace",
    "TraceSpec",
    "generate_trace",
    "diurnal_rate",
    "sample_arrival_times",
    "heavy_tailed_lengths",
]


@dataclass(frozen=True)
class TraceRequest:
    """One request of a serving trace."""

    request_id: int
    document_id: str | None
    prompt: str

    @property
    def uses_library_document(self) -> bool:
        return self.document_id is not None


@dataclass
class RequestTrace:
    """A generated request stream plus the document library it references."""

    documents: dict[str, str]
    requests: list[TraceRequest] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def reuse_opportunity(self) -> float:
        """Fraction of requests that reference a library document."""
        if not self.requests:
            return 0.0
        return sum(r.uses_library_document for r in self.requests) / len(self.requests)


@dataclass(frozen=True)
class TraceSpec:
    """Shape of the generated trace."""

    num_documents: int = 3
    document_repeats: int = 30
    """How many times the base paragraph is repeated per document (controls length)."""

    num_requests: int = 12
    fresh_request_fraction: float = 0.2
    """Fraction of requests that do not reference any library document."""

    document_popularity_skew: float = 1.5
    """Zipf-like skew: higher values concentrate requests on few documents."""

    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if self.document_repeats <= 0:
            raise ValueError("document_repeats must be positive")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.document_popularity_skew < 0.0:
            raise ValueError(
                "document_popularity_skew must be non-negative "
                "(negative values invert the Zipf popularity ranking)"
            )
        if not 0.0 <= self.fresh_request_fraction <= 1.0:
            raise ValueError("fresh_request_fraction must be within [0, 1]")


_TOPICS = [
    "quarterly revenue recognition and segment reporting",
    "data protection obligations for controllers and processors",
    "supply chain risk disclosures and mitigation plans",
    "capital adequacy and liquidity coverage requirements",
    "source code licensing and third-party dependencies",
    "clinical trial protocols and adverse event reporting",
]

_QUESTIONS = [
    "Summarise the key obligations described above.",
    "Which sections mention deadlines, and what are they?",
    "List the risks the document highlights.",
    "What actions does the document require from management?",
    "Does the document define any exemptions?",
    "Quote the passage most relevant to compliance costs.",
]


def generate_trace(spec: TraceSpec | None = None) -> RequestTrace:
    """Generate a deterministic request trace according to ``spec``."""
    spec = spec or TraceSpec()
    rng = np.random.default_rng(spec.seed)

    documents: dict[str, str] = {}
    for index in range(spec.num_documents):
        topic = _TOPICS[index % len(_TOPICS)]
        paragraph = (
            f"Document {index} covers {topic}. It enumerates requirements, exceptions and "
            f"reporting duties in considerable detail, clause after clause. "
        )
        documents[f"doc-{index:02d}"] = paragraph * spec.document_repeats

    # popularity-skewed document choice
    weights = np.array([1.0 / (rank + 1) ** spec.document_popularity_skew for rank in range(spec.num_documents)])
    weights = weights / weights.sum()
    document_ids = list(documents)

    requests: list[TraceRequest] = []
    for request_id in range(spec.num_requests):
        if rng.random() < spec.fresh_request_fraction:
            prompt = (
                f"Request {request_id}: please answer from general knowledge. "
                + str(rng.choice(_QUESTIONS))
            )
            requests.append(TraceRequest(request_id=request_id, document_id=None, prompt=prompt))
            continue
        document_id = str(rng.choice(document_ids, p=weights))
        question = str(rng.choice(_QUESTIONS))
        prompt = documents[document_id] + "\nQuestion: " + question
        requests.append(TraceRequest(request_id=request_id, document_id=document_id, prompt=prompt))
    return RequestTrace(documents=documents, requests=requests)


# ----------------------------------------------------------------------
# arrival curves and length distributions (the workload engine's samplers)
# ----------------------------------------------------------------------
def diurnal_rate(
    times: np.ndarray, base_rate: float, amplitude: float, period_seconds: float
) -> np.ndarray:
    """Instantaneous arrival rate (requests/second) along a diurnal curve.

    A sinusoid around ``base_rate``: ``amplitude`` of 0 is flat traffic,
    1.0 swings between 0 and twice the base rate (the day/night cycle of a
    serving trace, compressed to ``period_seconds``).
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be within [0, 1]")
    if period_seconds <= 0:
        raise ValueError("period_seconds must be positive")
    times = np.asarray(times, dtype=np.float64)
    return base_rate * (1.0 + amplitude * np.sin(2.0 * np.pi * times / period_seconds))


def sample_arrival_times(
    rng: np.random.Generator,
    duration_seconds: float,
    base_rate: float,
    amplitude: float = 0.0,
    period_seconds: float = 60.0,
    burstiness: float = 0.0,
) -> np.ndarray:
    """Arrival times of a non-homogeneous Poisson process with optional bursts.

    A Cox (doubly stochastic Poisson) process sampled on small windows: each
    window's rate is the diurnal envelope times a unit-mean Gamma multiplier
    with variance ``burstiness``, so traffic arrives in clumps rather than
    evenly — heavier queueing at the same mean rate.  ``burstiness`` of 0 is
    a plain non-homogeneous Poisson process.
    """
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    if burstiness < 0:
        raise ValueError("burstiness must be non-negative")
    window = min(period_seconds / 16.0, duration_seconds)
    num_windows = max(int(np.ceil(duration_seconds / window)), 1)
    edges = np.linspace(0.0, duration_seconds, num_windows + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    widths = np.diff(edges)
    rates = diurnal_rate(centers, base_rate, amplitude, period_seconds)
    if burstiness > 0:
        shape = 1.0 / burstiness
        rates = rates * rng.gamma(shape, 1.0 / shape, size=num_windows)
    counts = rng.poisson(rates * widths)
    times = [
        start + rng.random(int(count)) * width
        for start, width, count in zip(edges[:-1], widths, counts)
        if count
    ]
    if not times:
        return np.empty(0, dtype=np.float64)
    return np.sort(np.concatenate(times))


def heavy_tailed_lengths(
    rng: np.random.Generator,
    count: int,
    median: int,
    sigma: float = 0.8,
    maximum: int | None = None,
) -> np.ndarray:
    """Heavy-tailed (lognormal) integer lengths with the given median.

    Serving traces show context lengths spanning orders of magnitude; a
    lognormal with ``sigma`` around 0.8–1.2 reproduces that spread.  Values
    are clipped to ``[1, maximum]``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if median <= 0:
        raise ValueError("median must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    lengths = rng.lognormal(mean=np.log(median), sigma=sigma, size=count)
    lengths = np.maximum(lengths.astype(np.int64), 1)
    if maximum is not None:
        lengths = np.minimum(lengths, int(maximum))
    return lengths
