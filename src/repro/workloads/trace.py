"""Request-trace generation for serving experiments.

A MaaS deployment sees streams of requests in which many users ask different
questions about a small library of shared long documents (the paper's
financial-analysis and legal-assistant use cases).  This module synthesises
such traces so the serving layer (:class:`repro.core.service.InferenceService`)
and the context-reuse machinery can be exercised under a realistic request
mix: repeated documents, varying question lengths, and occasional requests
about documents that are not in the library at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceRequest", "RequestTrace", "TraceSpec", "generate_trace"]


@dataclass(frozen=True)
class TraceRequest:
    """One request of a serving trace."""

    request_id: int
    document_id: str | None
    prompt: str

    @property
    def uses_library_document(self) -> bool:
        return self.document_id is not None


@dataclass
class RequestTrace:
    """A generated request stream plus the document library it references."""

    documents: dict[str, str]
    requests: list[TraceRequest] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def reuse_opportunity(self) -> float:
        """Fraction of requests that reference a library document."""
        if not self.requests:
            return 0.0
        return sum(r.uses_library_document for r in self.requests) / len(self.requests)


@dataclass(frozen=True)
class TraceSpec:
    """Shape of the generated trace."""

    num_documents: int = 3
    document_repeats: int = 30
    """How many times the base paragraph is repeated per document (controls length)."""

    num_requests: int = 12
    fresh_request_fraction: float = 0.2
    """Fraction of requests that do not reference any library document."""

    document_popularity_skew: float = 1.5
    """Zipf-like skew: higher values concentrate requests on few documents."""

    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise ValueError("num_documents must be positive")
        if not 0.0 <= self.fresh_request_fraction <= 1.0:
            raise ValueError("fresh_request_fraction must be within [0, 1]")


_TOPICS = [
    "quarterly revenue recognition and segment reporting",
    "data protection obligations for controllers and processors",
    "supply chain risk disclosures and mitigation plans",
    "capital adequacy and liquidity coverage requirements",
    "source code licensing and third-party dependencies",
    "clinical trial protocols and adverse event reporting",
]

_QUESTIONS = [
    "Summarise the key obligations described above.",
    "Which sections mention deadlines, and what are they?",
    "List the risks the document highlights.",
    "What actions does the document require from management?",
    "Does the document define any exemptions?",
    "Quote the passage most relevant to compliance costs.",
]


def generate_trace(spec: TraceSpec | None = None) -> RequestTrace:
    """Generate a deterministic request trace according to ``spec``."""
    spec = spec or TraceSpec()
    rng = np.random.default_rng(spec.seed)

    documents: dict[str, str] = {}
    for index in range(spec.num_documents):
        topic = _TOPICS[index % len(_TOPICS)]
        paragraph = (
            f"Document {index} covers {topic}. It enumerates requirements, exceptions and "
            f"reporting duties in considerable detail, clause after clause. "
        )
        documents[f"doc-{index:02d}"] = paragraph * spec.document_repeats

    # popularity-skewed document choice
    weights = np.array([1.0 / (rank + 1) ** spec.document_popularity_skew for rank in range(spec.num_documents)])
    weights = weights / weights.sum()
    document_ids = list(documents)

    requests: list[TraceRequest] = []
    for request_id in range(spec.num_requests):
        if rng.random() < spec.fresh_request_fraction:
            prompt = (
                f"Request {request_id}: please answer from general knowledge. "
                + str(rng.choice(_QUESTIONS))
            )
            requests.append(TraceRequest(request_id=request_id, document_id=None, prompt=prompt))
            continue
        document_id = str(rng.choice(document_ids, p=weights))
        question = str(rng.choice(_QUESTIONS))
        prompt = documents[document_id] + "\nQuestion: " + question
        requests.append(TraceRequest(request_id=request_id, document_id=document_id, prompt=prompt))
    return RequestTrace(documents=documents, requests=requests)
