"""Synthetic equivalents of the LongBench tasks used in Table 3 / Figure 6.

Table 3 of the paper reports, per task, the number of critical tokens ``k`` a
fixed top-k query must retrieve to match full-attention accuracy, and its
proportion of the context length.  The synthetic specs plant exactly that
structure: every head's critical-token count is concentrated around the
paper's ``k`` for the task, and the context length matches the implied
average length (``k / proportion``), so the measured "required k" of the
Table 3 benchmark is directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .generator import ScoringMode, WorkloadSpec

__all__ = ["LongBenchTask", "LONGBENCH_TASKS", "longbench_task", "longbench_names"]


@dataclass(frozen=True)
class LongBenchTask:
    """A LongBench task with the paper's Table 3 ground truth attached."""

    spec: WorkloadSpec
    paper_k: int
    paper_proportion: float
    category: str


def _spec(name: str, paper_k: int, paper_proportion: float, seed: int, scoring: str) -> WorkloadSpec:
    context_length = int(round(paper_k / paper_proportion))
    fraction = paper_k / context_length
    return WorkloadSpec(
        name=name,
        context_length=context_length,
        num_layers=1,
        num_query_heads=8,
        num_kv_heads=4,
        head_dim=32,
        num_decode_steps=6,
        num_evidence_tokens=2,
        evidence_margin=5.0,
        critical_margin=9.0,
        critical_fraction_low=fraction * 0.8,
        critical_fraction_high=fraction * 1.2,
        scoring=scoring,
        paper_context_length=context_length,
        seed=seed,
    )


LONGBENCH_TASKS: dict[str, LongBenchTask] = {
    "Qasper": LongBenchTask(
        spec=_spec("Qasper", paper_k=350, paper_proportion=0.0967, seed=201, scoring=ScoringMode.RECOVERY),
        paper_k=350,
        paper_proportion=0.0967,
        category="single-doc QA",
    ),
    "PassageR": LongBenchTask(
        spec=_spec("PassageR", paper_k=250, paper_proportion=0.0269, seed=202, scoring=ScoringMode.NEEDLE),
        paper_k=250,
        paper_proportion=0.0269,
        category="synthetic",
    ),
    "HotpotQA": LongBenchTask(
        spec=_spec("HotpotQA", paper_k=200, paper_proportion=0.0219, seed=203, scoring=ScoringMode.RECOVERY),
        paper_k=200,
        paper_proportion=0.0219,
        category="multi-doc QA",
    ),
    "QMSum": LongBenchTask(
        spec=_spec("QMSum", paper_k=150, paper_proportion=0.0141, seed=204, scoring=ScoringMode.RECOVERY),
        paper_k=150,
        paper_proportion=0.0141,
        category="summarization",
    ),
    "LCC": LongBenchTask(
        spec=_spec("LCC", paper_k=65, paper_proportion=0.0526, seed=205, scoring=ScoringMode.RECOVERY),
        paper_k=65,
        paper_proportion=0.0526,
        category="code completion",
    ),
    "TriviaQA": LongBenchTask(
        spec=_spec("TriviaQA", paper_k=20, paper_proportion=0.0024, seed=206, scoring=ScoringMode.NEEDLE),
        paper_k=20,
        paper_proportion=0.0024,
        category="few-shot learning",
    ),
}


def longbench_names() -> list[str]:
    return list(LONGBENCH_TASKS)


def longbench_task(name: str) -> LongBenchTask:
    return LONGBENCH_TASKS[name]
