"""Synthetic equivalents of the ∞-Bench tasks used in Table 5 / Figure 9.

Each catalog entry preserves the *sparse-attention-relevant* character of the
original task: whether the answer hinges on exact retrieval of a few planted
positions (Retr.*, Math.F) or on covering a broad share of the attention mass
(En.*, Code.D), how many critical tokens the heads need, and how long the real
contexts are (used by the latency/memory models).  The
``paper_full_attention_score`` fields record the paper's Table 5 values for
labelling only — the synthetic scores are coverage-based, so full attention
scores 100 by construction here.
"""

from __future__ import annotations

from .generator import ScoringMode, WorkloadSpec

__all__ = ["INFINITE_BENCH_TASKS", "infinite_bench_task", "infinite_bench_names"]


def _task(name: str, **kwargs) -> WorkloadSpec:
    defaults = dict(
        name=name,
        num_layers=1,
        num_query_heads=8,
        num_kv_heads=4,
        head_dim=32,
        num_decode_steps=8,
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


INFINITE_BENCH_TASKS: dict[str, WorkloadSpec] = {
    # exact key-value retrieval from a huge JSON: hardest retrieval task,
    # several needles, many high-scoring distractors
    "Retr.KV": _task(
        "Retr.KV",
        context_length=12288,
        num_evidence_tokens=4,
        evidence_margin=4.5,
        critical_margin=9.0,
        critical_fraction_low=0.01,
        critical_fraction_high=0.08,
        scoring=ScoringMode.NEEDLE,
        paper_full_attention_score=15.8,
        paper_context_length=89_000,
        seed=101,
    ),
    # passkey retrieval: one obvious needle
    "Retr.P": _task(
        "Retr.P",
        context_length=12288,
        num_evidence_tokens=1,
        evidence_margin=7.0,
        critical_margin=8.0,
        critical_fraction_low=0.001,
        critical_fraction_high=0.01,
        scoring=ScoringMode.NEEDLE,
        paper_full_attention_score=100.0,
        paper_context_length=122_000,
        seed=102,
    ),
    # number retrieval: one needle, slightly more distractors
    "Retr.N": _task(
        "Retr.N",
        context_length=12288,
        num_evidence_tokens=1,
        evidence_margin=6.5,
        critical_margin=8.0,
        critical_fraction_low=0.002,
        critical_fraction_high=0.015,
        scoring=ScoringMode.NEEDLE,
        paper_full_attention_score=100.0,
        paper_context_length=122_000,
        seed=103,
    ),
    # code debugging: graded, moderately concentrated attention
    "Code.D": _task(
        "Code.D",
        context_length=8192,
        num_evidence_tokens=3,
        evidence_margin=5.0,
        critical_margin=9.0,
        critical_fraction_low=0.005,
        critical_fraction_high=0.03,
        scoring=ScoringMode.RECOVERY,
        paper_full_attention_score=27.4,
        paper_context_length=44_000,
        seed=104,
    ),
    # multiple choice over a book
    "En.MC": _task(
        "En.MC",
        context_length=10240,
        num_evidence_tokens=2,
        evidence_margin=5.0,
        critical_margin=9.0,
        critical_fraction_low=0.004,
        critical_fraction_high=0.025,
        scoring=ScoringMode.RECOVERY,
        paper_full_attention_score=55.9,
        paper_context_length=184_000,
        seed=105,
    ),
    # open QA over a book: needs a broader share of the context
    "En.QA": _task(
        "En.QA",
        context_length=10240,
        num_evidence_tokens=3,
        evidence_margin=4.5,
        critical_margin=8.5,
        critical_fraction_low=0.01,
        critical_fraction_high=0.05,
        scoring=ScoringMode.RECOVERY,
        paper_full_attention_score=31.0,
        paper_context_length=192_600,
        seed=106,
    ),
    # summarisation: attention mass is spread the widest
    "En.Sum": _task(
        "En.Sum",
        context_length=10240,
        num_evidence_tokens=4,
        evidence_margin=4.0,
        critical_margin=7.0,
        critical_fraction_low=0.02,
        critical_fraction_high=0.08,
        scoring=ScoringMode.RECOVERY,
        paper_full_attention_score=15.1,
        paper_context_length=171_500,
        seed=107,
    ),
    # find the minimum/maximum number in a long list: single needle whose key
    # is frequently also the global max-inner-product key (window friendly)
    "Math.F": _task(
        "Math.F",
        context_length=8192,
        num_evidence_tokens=1,
        evidence_margin=7.0,
        critical_margin=7.5,
        critical_fraction_low=0.001,
        critical_fraction_high=0.008,
        scoring=ScoringMode.NEEDLE,
        paper_full_attention_score=19.1,
        paper_context_length=43_900,
        seed=108,
    ),
}


def infinite_bench_names() -> list[str]:
    """Task names in the paper's Table 5 column order."""
    return list(INFINITE_BENCH_TASKS)


def infinite_bench_task(name: str, **overrides) -> WorkloadSpec:
    """Fetch a task spec, optionally overriding fields (e.g. a smaller context)."""
    spec = INFINITE_BENCH_TASKS[name]
    if not overrides:
        return spec
    from dataclasses import replace

    return replace(spec, **overrides)
