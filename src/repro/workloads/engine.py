"""Trace-driven workload engine: generate mixed serving traces, replay them
against the real stack, and gate every run on generation quality.

The benches elsewhere in ``benchmarks/`` are single-scenario panels; the
paper's headline claim is end-to-end — serving quality *and* latency SLOs
under realistic long-context traffic.  This module closes that gap:

* :func:`generate_replay_trace` builds a large seeded trace from a
  :class:`WorkloadEngineSpec`: diurnal/bursty arrival curves
  (:func:`~repro.workloads.trace.sample_arrival_times`), heavy-tailed
  context lengths, and a multi-tenant mix of

  - **chat** — multi-turn sessions whose turns extend one stored context
    (cross-turn KV reuse through the token-trie prefix match),
  - **rag** — questions over a shared document library with Zipf popularity
    (reusing :func:`~repro.workloads.trace.generate_trace`),
  - **agent** — tool loops: short extension turns in quick succession, with
    mid-stream cancellations and client disconnects,
  - **fresh** — one-shot requests with no reuse opportunity;

* three replay entry points run the same trace against the real stack:
  :func:`replay_scheduler` (``InferenceService.submit`` + ``step``, virtual
  clock), :func:`replay_http` (the asyncio HTTP/SSE frontend over real TCP,
  with DELETE-cancellations and TCP aborts), and :func:`replay_router` (the
  sharded context router);

* every replay aggregates one :class:`ReplayReport` — TTFT/TPOT p50/p95/p99,
  SLO attainment, eviction/preemption/throttle (429) rates, prefix-reuse hit
  ratio, per-tenant fairness rows — whose :meth:`~ReplayReport.deterministic_summary`
  is reproducible for a given seed (and identical across entry points for
  cancellation-free traces, since decoding is greedy and batching is
  token-identical);

* :func:`score_quality_gate` wires the existing LongBench/∞-Bench scoring
  into the same run: the trace's task mix maps to synthetic task specs, the
  sparse path (DIPRS) is scored against the dense path (full attention) on
  each, and the run passes only when sparse quality stays within the gate
  threshold of dense — so a replay speedup can never silently trade away
  generation quality.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from ..baselines.base import SelectionStrategy
from ..baselines.diprs import DIPRSStrategy
from ..baselines.full_attention import FullAttentionStrategy
from ..errors import AdmissionRejectedError, TenantThrottledError
from ..query.types import beta_from_alpha
from ..scheduler import TenantSpec
from ..simulator.slo import BATCH_SLO, INTERACTIVE_SLO, SLO
from .evaluation import evaluate_strategy
from .generator import generate_workload
from .infinite_bench import INFINITE_BENCH_TASKS
from .longbench import LONGBENCH_TASKS
from .trace import TraceSpec, generate_trace, heavy_tailed_lengths, sample_arrival_times

__all__ = [
    "TenantMixSpec",
    "WorkloadEngineSpec",
    "ReplayEvent",
    "ReplayTrace",
    "ReplayReport",
    "QualityGateResult",
    "generate_replay_trace",
    "replay_scheduler",
    "replay_http",
    "replay_router",
    "score_quality_gate",
    "tenant_specs",
    "KIND_TASKS",
]

EVENT_KINDS = ("chat", "rag", "agent", "fresh")

_SLO_CLASSES: dict[str | None, SLO] = {
    "interactive": INTERACTIVE_SLO,
    "batch": BATCH_SLO,
    "default": SLO(),
    None: SLO(),
}

_CHAT_OPENERS = [
    "I am preparing a briefing on our compliance posture. ",
    "Help me draft a response to the auditor's findings. ",
    "Walk me through the retention policy step by step. ",
    "We are migrating the reporting pipeline this quarter. ",
]

_CHAT_FILLER = [
    "The context includes several appendices with conflicting terminology. ",
    "Earlier drafts referenced the 2019 framework, which was superseded. ",
    "Stakeholders asked for a summary table and a risk register. ",
    "The legal team flagged two clauses for outside counsel review. ",
    "Budget figures are provisional until the close of the fiscal year. ",
]

_CHAT_FOLLOWUPS = [
    "Can you expand on the second point?",
    "How does that interact with the deadline?",
    "Rewrite that more concisely.",
    "What risks does that introduce?",
    "Who needs to sign off on this?",
]

_AGENT_GOALS = [
    "Find the total exposure across all subsidiaries and report it. ",
    "Locate the clause governing early termination and quote it. ",
    "Cross-check the revenue figures against the filed statements. ",
]

_AGENT_OBSERVATIONS = [
    "search returned 3 passages mentioning the term",
    "table extraction yielded 12 rows",
    "the cited section spans pages 41-44",
    "no match in the appendix; retrying with synonyms",
    "checksum of the filing verified",
]


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantMixSpec:
    """One tenant's traffic share and task mix in the generated trace."""

    name: str
    weight: int = 1
    """Deficit-round-robin fairness weight (forwarded to :class:`TenantSpec`)."""

    rate_share: float = 1.0
    """Relative share of the arrival process attributed to this tenant."""

    chat_fraction: float = 0.3
    rag_fraction: float = 0.4
    agent_fraction: float = 0.2
    """Kind mix; the remainder up to 1.0 arrives as ``fresh`` one-shots."""

    max_queued: int | None = None
    """Queue-depth backpressure threshold (HTTP 429), forwarded to the
    tenant governor; ``None`` never throttles."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must not be empty")
        if self.rate_share <= 0:
            raise ValueError(f"tenant {self.name!r} rate_share must be positive")
        fractions = (self.chat_fraction, self.rag_fraction, self.agent_fraction)
        if any(f < 0 for f in fractions) or sum(fractions) > 1.0 + 1e-9:
            raise ValueError(
                f"tenant {self.name!r} kind fractions must be non-negative and sum to <= 1"
            )

    @property
    def fresh_fraction(self) -> float:
        return max(0.0, 1.0 - self.chat_fraction - self.rag_fraction - self.agent_fraction)


@dataclass(frozen=True)
class WorkloadEngineSpec:
    """Shape of a generated replay trace."""

    duration_seconds: float = 60.0
    """Virtual trace duration the arrival curve spans."""

    base_rate: float = 1.0
    """Mean arrivals per virtual second."""

    diurnal_amplitude: float = 0.5
    diurnal_period_seconds: float = 30.0
    burstiness: float = 0.5
    """Arrival-curve knobs (see :func:`sample_arrival_times`)."""

    tenants: tuple[TenantMixSpec, ...] = (TenantMixSpec(name="default"),)

    corpus: TraceSpec = field(
        default_factory=lambda: TraceSpec(
            num_documents=3, document_repeats=6, num_requests=1, fresh_request_fraction=0.0
        )
    )
    """Shared RAG document library (Zipf popularity comes from
    :func:`generate_trace`); ``num_requests`` is overridden with the number
    of RAG arrivals the curve produced."""

    chat_mean_turns: float = 2.5
    chat_think_seconds: float = 4.0
    chat_prompt_median_chars: int = 400
    chat_prompt_sigma: float = 0.9
    chat_prompt_max_chars: int = 4096
    """Heavy-tailed first-turn context length (byte tokenizer: ~1 token/char)."""

    agent_mean_iterations: float = 3.0
    agent_tool_seconds: float = 0.5

    rag_max_new_tokens: int = 8
    chat_max_new_tokens: int = 10
    agent_max_new_tokens: int = 6
    fresh_max_new_tokens: int = 8

    cancel_fraction: float = 0.0
    """Probability a chat/agent turn is cancelled mid-stream."""

    disconnect_fraction: float = 0.0
    """Probability a cancellation arrives as a client disconnect (HTTP: TCP
    abort) rather than an explicit cancel."""

    max_events: int | None = None
    """Hard cap on generated events (the arrival curve is truncated)."""

    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not self.tenants:
            raise ValueError("at least one tenant mix is required")
        names = [t.name for t in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate tenant names in mix: {names}")
        if self.chat_mean_turns < 1 or self.agent_mean_iterations < 1:
            raise ValueError("chat_mean_turns and agent_mean_iterations must be >= 1")
        for label, value in (
            ("cancel_fraction", self.cancel_fraction),
            ("disconnect_fraction", self.disconnect_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be within [0, 1]")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError("max_events must be positive when set")


def tenant_specs(spec: WorkloadEngineSpec) -> tuple[TenantSpec, ...]:
    """The :class:`TenantSpec` tuple an ``AlayaDBConfig`` needs to govern the
    trace's tenants (weights + backpressure thresholds)."""
    return tuple(
        TenantSpec(name=t.name, weight=t.weight, max_queued=t.max_queued)
        for t in spec.tenants
    )


# ----------------------------------------------------------------------
# the trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayEvent:
    """One request of a replay trace."""

    event_id: int
    arrival_seconds: float
    tenant: str
    kind: str
    prompt: str
    max_new_tokens: int
    document_id: str | None = None
    session_id: str | None = None
    """Chat/agent session this turn belongs to (``store_context_id``)."""
    turn: int = 0
    cancel_after_tokens: int | None = None
    """Cancel mid-stream once this many tokens streamed (``None``: run out)."""
    disconnect: bool = False
    """Deliver the cancellation as a client disconnect (HTTP: TCP abort)."""
    slo_class: str | None = None
    """``interactive`` / ``batch`` / ``default`` (see ``_SLO_CLASSES``)."""

    @property
    def slo(self) -> SLO:
        return _SLO_CLASSES[self.slo_class]


@dataclass
class ReplayTrace:
    """A generated request stream, its document library, and provenance."""

    spec: WorkloadEngineSpec
    documents: dict[str, str]
    events: list[ReplayEvent] = field(default_factory=list)

    @property
    def num_events(self) -> int:
        return len(self.events)

    def kind_counts(self) -> dict[str, int]:
        counts = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts

    def tenant_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.tenant] = counts.get(event.tenant, 0) + 1
        return counts

    def kinds_present(self) -> list[str]:
        return [kind for kind, count in self.kind_counts().items() if count]

    def to_jsonable(self) -> dict:
        return {
            "spec": asdict(self.spec),
            "documents": self.documents,
            "events": [asdict(event) for event in self.events],
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — byte-identical traces (same
        spec, same seed) share a digest; any divergence changes it."""
        canonical = json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _filler_text(rng: np.random.Generator, target_chars: int, sentences: list[str]) -> str:
    parts: list[str] = []
    total = 0
    while total < target_chars:
        sentence = sentences[int(rng.integers(0, len(sentences)))]
        parts.append(sentence)
        total += len(sentence)
    return "".join(parts)


def generate_replay_trace(spec: WorkloadEngineSpec | None = None) -> ReplayTrace:
    """Generate a deterministic replay trace according to ``spec``."""
    spec = spec or WorkloadEngineSpec()
    rng = np.random.default_rng(spec.seed)

    arrivals = sample_arrival_times(
        rng,
        spec.duration_seconds,
        spec.base_rate,
        amplitude=spec.diurnal_amplitude,
        period_seconds=spec.diurnal_period_seconds,
        burstiness=spec.burstiness,
    )
    if arrivals.shape[0] == 0:
        arrivals = np.asarray([spec.duration_seconds / 2.0])
    if spec.max_events is not None:
        arrivals = arrivals[: spec.max_events]

    shares = np.asarray([t.rate_share for t in spec.tenants], dtype=np.float64)
    shares /= shares.sum()
    tenant_picks = rng.choice(len(spec.tenants), size=arrivals.shape[0], p=shares)
    kind_rolls = rng.random(arrivals.shape[0])

    # kinds first, so the RAG corpus can be sized to the RAG arrival count
    kinds: list[str] = []
    for index in range(arrivals.shape[0]):
        mix = spec.tenants[int(tenant_picks[index])]
        roll = float(kind_rolls[index])
        if roll < mix.chat_fraction:
            kinds.append("chat")
        elif roll < mix.chat_fraction + mix.rag_fraction:
            kinds.append("rag")
        elif roll < mix.chat_fraction + mix.rag_fraction + mix.agent_fraction:
            kinds.append("agent")
        else:
            kinds.append("fresh")

    num_rag = sum(1 for kind in kinds if kind == "rag")
    corpus_spec = replace(
        spec.corpus,
        num_requests=max(num_rag, 1),
        fresh_request_fraction=0.0,
        seed=spec.seed + 1,
    )
    corpus = generate_trace(corpus_spec)
    rag_requests = iter(corpus.requests)

    chat_lengths = iter(
        heavy_tailed_lengths(
            rng,
            count=arrivals.shape[0],
            median=spec.chat_prompt_median_chars,
            sigma=spec.chat_prompt_sigma,
            maximum=spec.chat_prompt_max_chars,
        )
    )

    events: list[ReplayEvent] = []
    session_counter = 0

    def maybe_cancel(max_new: int) -> tuple[int | None, bool]:
        """A (cancel_after, disconnect) roll for one chat/agent turn."""
        if spec.cancel_fraction <= 0 or rng.random() >= spec.cancel_fraction:
            return None, False
        cancel_after = int(rng.integers(1, max(max_new, 2)))
        disconnect = bool(rng.random() < spec.disconnect_fraction)
        return cancel_after, disconnect

    for index in range(arrivals.shape[0]):
        arrival = float(arrivals[index])
        tenant = spec.tenants[int(tenant_picks[index])].name
        kind = kinds[index]
        if kind == "rag":
            request = next(rag_requests)
            events.append(
                ReplayEvent(
                    event_id=-1,
                    arrival_seconds=arrival,
                    tenant=tenant,
                    kind="rag",
                    prompt=request.prompt,
                    max_new_tokens=spec.rag_max_new_tokens,
                    document_id=request.document_id,
                    slo_class="default",
                )
            )
        elif kind == "fresh":
            prompt = (
                "Answer from general knowledge. "
                + _filler_text(rng, int(next(chat_lengths)) // 2, _CHAT_FILLER)
            )
            events.append(
                ReplayEvent(
                    event_id=-1,
                    arrival_seconds=arrival,
                    tenant=tenant,
                    kind="fresh",
                    prompt=prompt,
                    max_new_tokens=spec.fresh_max_new_tokens,
                    slo_class="batch",
                )
            )
        elif kind == "chat":
            session_counter += 1
            session_id = f"sess-chat-{session_counter:04d}"
            num_turns = 1 + int(rng.poisson(max(spec.chat_mean_turns - 1.0, 0.0)))
            opener = _CHAT_OPENERS[int(rng.integers(0, len(_CHAT_OPENERS)))]
            # the digits-first session tag keeps prefix reuse intra-session:
            # sibling sessions diverge within a few tokens (far below the
            # store's min_reuse_tokens), so replay reuse does not depend on
            # which session's context happened to be stored first
            prompt = f"[{session_counter:04d}-chat] " + opener + _filler_text(
                rng, int(next(chat_lengths)), _CHAT_FILLER
            )
            turn_arrival = arrival
            for turn in range(num_turns):
                cancel_after, disconnect = maybe_cancel(spec.chat_max_new_tokens)
                events.append(
                    ReplayEvent(
                        event_id=-1,
                        arrival_seconds=turn_arrival,
                        tenant=tenant,
                        kind="chat",
                        prompt=prompt,
                        max_new_tokens=spec.chat_max_new_tokens,
                        session_id=session_id,
                        turn=turn,
                        cancel_after_tokens=cancel_after,
                        disconnect=disconnect,
                        slo_class="interactive",
                    )
                )
                if cancel_after is not None:
                    break  # the user walked away; the session ends here
                followup = _CHAT_FOLLOWUPS[int(rng.integers(0, len(_CHAT_FOLLOWUPS)))]
                prompt = prompt + "\nUser: " + followup
                turn_arrival += float(rng.exponential(spec.chat_think_seconds))
        else:  # agent
            session_counter += 1
            session_id = f"sess-agent-{session_counter:04d}"
            num_iterations = 1 + int(rng.poisson(max(spec.agent_mean_iterations - 1.0, 0.0)))
            goal = _AGENT_GOALS[int(rng.integers(0, len(_AGENT_GOALS)))]
            prompt = f"[{session_counter:04d}-agent] Task: " + goal + _filler_text(
                rng, int(next(chat_lengths)) // 2, _CHAT_FILLER
            )
            turn_arrival = arrival
            for turn in range(num_iterations):
                cancel_after, disconnect = maybe_cancel(spec.agent_max_new_tokens)
                events.append(
                    ReplayEvent(
                        event_id=-1,
                        arrival_seconds=turn_arrival,
                        tenant=tenant,
                        kind="agent",
                        prompt=prompt,
                        max_new_tokens=spec.agent_max_new_tokens,
                        session_id=session_id,
                        turn=turn,
                        cancel_after_tokens=cancel_after,
                        disconnect=disconnect,
                        slo_class="batch",
                    )
                )
                if cancel_after is not None:
                    break  # the orchestrator aborted the loop
                observation = _AGENT_OBSERVATIONS[int(rng.integers(0, len(_AGENT_OBSERVATIONS)))]
                prompt = prompt + "\nObservation: " + observation + "."
                turn_arrival += float(rng.exponential(spec.agent_tool_seconds))

    order = sorted(range(len(events)), key=lambda i: (events[i].arrival_seconds, i))
    numbered = [replace(events[i], event_id=seq) for seq, i in enumerate(order)]
    return ReplayTrace(spec=spec, documents=dict(corpus.documents), events=numbered)


# ----------------------------------------------------------------------
# the replay report
# ----------------------------------------------------------------------
def _percentiles(values: list[float]) -> dict[str, float]:
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(values, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
    }


@dataclass
class ReplayReport:
    """Aggregated outcome of replaying one trace at one entry point."""

    entrypoint: str
    num_events: int
    submitted: int
    completed: int
    cancelled: int
    failed: int
    rejected: int
    throttled_429: int
    generated_tokens: int
    prompt_tokens: int
    reused_tokens: int
    reuse_hit_requests: int
    """Completed requests whose prefill reused a stored-context prefix."""
    ttft_seconds: dict[str, float]
    """Client-perceived first-token latency percentiles (queue + prefill)."""
    tpot_seconds: dict[str, float]
    slo_attained: int
    slo_checked: int
    preemptions: int
    evictions: int
    """Context-store spills during the replay (the store's eviction path)."""
    per_tenant: dict[str, dict] = field(default_factory=dict)
    per_kind: dict[str, dict] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def reuse_hit_ratio(self) -> float:
        """Fraction of completed requests that hit a stored prefix."""
        return self.reuse_hit_requests / max(self.completed, 1)

    @property
    def reused_token_ratio(self) -> float:
        """Fraction of prompt tokens served from reused KV."""
        return self.reused_tokens / max(self.prompt_tokens, 1)

    @property
    def slo_attainment(self) -> float:
        return self.slo_attained / max(self.slo_checked, 1)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["reuse_hit_ratio"] = self.reuse_hit_ratio
        payload["reused_token_ratio"] = self.reused_token_ratio
        payload["slo_attainment"] = self.slo_attainment
        return payload

    def deterministic_summary(self) -> dict:
        """The seed-reproducible slice of the report: counts and token totals,
        no wall-clock quantities.  Identical across repeat runs of the same
        entry point, and across entry points for cancellation-free traces
        (greedy decoding; batched decode is token-identical)."""
        return {
            "num_events": self.num_events,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "generated_tokens": self.generated_tokens,
            "prompt_tokens": self.prompt_tokens,
            "reused_tokens": self.reused_tokens,
            "reuse_hit_requests": self.reuse_hit_requests,
            "per_kind": self.per_kind,
        }


def _slo_outcome(event: ReplayEvent, ttft: float, tpot: float) -> bool:
    slo = event.slo
    return slo.check_ttft(ttft) and (tpot == 0.0 or slo.check_tpot(tpot))


def _ingest_documents(service, trace: ReplayTrace) -> float:
    start = time.perf_counter()
    for document_id, text in trace.documents.items():
        service.ingest(text, context_id=document_id)
    return time.perf_counter() - start


def _build_service_report(
    entrypoint: str,
    trace: ReplayTrace,
    service,
    *,
    submitted: int,
    throttled: int,
    event_records: dict[int, int],
    wall_seconds: float,
) -> ReplayReport:
    """Aggregate a report from the service's own accounting.

    ``event_records`` maps event_id → request_id for every submission that
    reached the scheduler; per-request outcomes come from
    ``service.stats.records`` (finished requests only).
    """
    records = {record.request_id: record for record in service.stats.records}
    events_by_id = {event.event_id: event for event in trace.events}

    ttfts: list[float] = []
    tpots: list[float] = []
    slo_attained = 0
    slo_checked = 0
    generated = 0
    prompt_tokens = 0
    reused_tokens = 0
    reuse_hits = 0
    completed = 0
    per_kind: dict[str, dict] = {
        kind: {"events": 0, "completed": 0, "generated_tokens": 0, "reused_tokens": 0}
        for kind in EVENT_KINDS
    }
    for event in trace.events:
        per_kind[event.kind]["events"] += 1

    for event_id, request_id in event_records.items():
        record = records.get(request_id)
        if record is None:
            continue  # cancelled / failed / rejected: no finished record
        event = events_by_id[event_id]
        completed += 1
        ttft = record.queue_seconds + record.ttft_seconds
        ttfts.append(ttft)
        tpots.append(record.tpot_seconds)
        slo_checked += 1
        if _slo_outcome(event, ttft, record.tpot_seconds):
            slo_attained += 1
        generated += record.generated_tokens
        prompt_tokens += record.prompt_tokens
        reused_tokens += record.reused_tokens
        if record.reused_tokens > 0:
            reuse_hits += 1
        row = per_kind[event.kind]
        row["completed"] += 1
        row["generated_tokens"] += record.generated_tokens
        row["reused_tokens"] += record.reused_tokens

    stats = service.stats
    store = service.db.store_registry
    per_tenant = stats.tenant_rows(service.scheduler.queued_by_tenant())
    return ReplayReport(
        entrypoint=entrypoint,
        num_events=trace.num_events,
        submitted=submitted,
        completed=completed,
        cancelled=stats.cancelled,
        failed=stats.failed,
        rejected=stats.rejected,
        throttled_429=throttled,
        generated_tokens=generated,
        prompt_tokens=prompt_tokens,
        reused_tokens=reused_tokens,
        reuse_hit_requests=reuse_hits,
        ttft_seconds=_percentiles(ttfts),
        tpot_seconds=_percentiles(tpots),
        slo_attained=slo_attained,
        slo_checked=slo_checked,
        preemptions=service.scheduler.stats.preemptions,
        evictions=store.spill_count,
        per_tenant=per_tenant,
        per_kind=per_kind,
        wall_seconds=wall_seconds,
    )


# ----------------------------------------------------------------------
# entry point 1: the scheduler (virtual-clock replay)
# ----------------------------------------------------------------------
def replay_scheduler(
    trace: ReplayTrace,
    service,
    *,
    steps_per_second: float = 200.0,
    max_steps: int = 2_000_000,
    throttle_retries: int = 100,
) -> ReplayReport:
    """Replay the trace through ``InferenceService.submit`` + ``step``.

    Arrival pacing uses a virtual clock advanced ``1/steps_per_second`` per
    scheduler round, so the replay is deterministic regardless of host speed.
    Session turns are chained: turn *k+1* is submitted only after turn *k*
    reached a terminal state (its stored context must exist for reuse).
    Mid-stream cancellations fire once the target token count has streamed;
    tenant backpressure (429) is retried after the advertised delay.
    """
    start = time.perf_counter()
    _ingest_documents(service, trace)

    successors: dict[tuple[str, int], ReplayEvent] = {}
    roots: list[ReplayEvent] = []
    for event in trace.events:
        if event.session_id is not None and event.turn > 0:
            successors[(event.session_id, event.turn - 1)] = event
        else:
            roots.append(event)

    ready: list[tuple[float, int, ReplayEvent, int]] = []  # (when, seq, event, retries)
    seq = 0
    for event in roots:
        heapq.heappush(ready, (event.arrival_seconds, seq, event, 0))
        seq += 1

    clock = 0.0
    tick = 1.0 / steps_per_second
    submitted = 0
    throttled = 0
    event_records: dict[int, int] = {}
    active: dict[int, tuple[ReplayEvent, object]] = {}  # request_id -> (event, handle)
    steps = 0

    def release_successor(event: ReplayEvent, at: float) -> None:
        nonlocal seq
        if event.session_id is None:
            return
        successor = successors.pop((event.session_id, event.turn), None)
        if successor is not None:
            think = successor.arrival_seconds - event.arrival_seconds
            heapq.heappush(ready, (max(successor.arrival_seconds, at + max(think, 0.0)), seq, successor, 0))
            seq += 1

    while ready or service.scheduler.has_work:
        # submit everything whose (virtual) arrival has passed
        while ready and ready[0][0] <= clock:
            _, _, event, retries = heapq.heappop(ready)
            try:
                handle = service.submit(
                    event.prompt,
                    max_new_tokens=event.max_new_tokens,
                    slo=event.slo,
                    store_context_id=event.session_id,
                    tenant=event.tenant,
                )
            except TenantThrottledError as exc:
                throttled += 1
                if retries + 1 >= throttle_retries:
                    release_successor(event, clock)  # give up; free the chain
                    continue
                delay = min(max(exc.retry_after_seconds, tick), 1.0)
                heapq.heappush(ready, (clock + delay, seq, event, retries + 1))
                seq += 1
                continue
            submitted += 1
            event_records[event.event_id] = handle.request_id
            active[handle.request_id] = (event, handle)

        if service.scheduler.has_work:
            service.step()
            steps += 1
            if steps > max_steps:
                raise RuntimeError(f"replay exceeded {max_steps} scheduler steps")
        elif ready:
            clock = max(clock, ready[0][0])
            continue

        # fire due cancellations, retire terminal requests, release chains
        for request_id in list(active):
            event, handle = active[request_id]
            if (
                event.cancel_after_tokens is not None
                and not handle.is_done
                and len(service.generated_tokens(request_id)) >= event.cancel_after_tokens
            ):
                service.cancel(request_id)
            if handle.is_done:
                del active[request_id]
                release_successor(event, clock)
        clock += tick

    wall = time.perf_counter() - start
    return _build_service_report(
        "scheduler",
        trace,
        service,
        submitted=submitted,
        throttled=throttled,
        event_records=event_records,
        wall_seconds=wall,
    )


# ----------------------------------------------------------------------
# entry point 2: the HTTP frontend (real TCP, SSE, disconnects)
# ----------------------------------------------------------------------
def replay_http(
    trace: ReplayTrace,
    service,
    *,
    time_scale: float = 0.01,
    throttle_retries: int = 200,
    drain_seconds: float = 120.0,
) -> ReplayReport:
    """Replay the trace over the asyncio HTTP/SSE frontend.

    Arrivals are compressed by ``time_scale`` (virtual second → real
    seconds); session turns run sequentially per session.  Mid-stream
    cancellations arrive as ``DELETE /v1/requests/{id}`` — or, for
    ``disconnect`` events, as a TCP abort the server must detect and turn
    into a cancellation.  429 backpressure is retried after ``Retry-After``.
    The server is drained and :func:`~repro.server.app.check_drained`
    verified on shutdown.
    """
    import asyncio

    from ..server import AlayaDBServer, ServerClient

    async def scenario() -> ReplayReport:
        start = time.perf_counter()
        _ingest_documents(service, trace)
        server = AlayaDBServer(service, port=0)
        await server.start()
        client = ServerClient(*server.address)

        sessions: dict[str, list[ReplayEvent]] = {}
        singles: list[ReplayEvent] = []
        for event in trace.events:
            if event.session_id is not None:
                sessions.setdefault(event.session_id, []).append(event)
            else:
                singles.append(event)
        for chain in sessions.values():
            chain.sort(key=lambda e: e.turn)

        submitted = 0
        throttled = 0
        event_records: dict[int, int] = {}

        async def run_event(event: ReplayEvent) -> None:
            nonlocal submitted, throttled
            payload = dict(
                prompt=event.prompt,
                max_new_tokens=event.max_new_tokens,
                tenant=event.tenant,
                store_context_id=event.session_id,
                slo={"tpot_seconds": event.slo.tpot_seconds}
                | (
                    {"ttft_seconds": event.slo.ttft_seconds}
                    if event.slo.ttft_seconds is not None
                    else {}
                ),
            )
            for _attempt in range(throttle_retries):
                stream = await client.stream_completion(**payload)
                if stream.status == 429:
                    throttled += 1
                    retry_after = float(stream.headers.get("retry-after", 1))
                    length = int(stream.headers.get("content-length", 0))
                    if length:
                        await stream.reader.readexactly(length)
                    await stream.close()
                    await asyncio.sleep(min(retry_after * time_scale, 0.05))
                    continue
                if stream.status != 200:
                    await stream.close()
                    return
                submitted += 1
                if stream.request_id is not None:
                    event_records[event.event_id] = stream.request_id
                tokens_seen = 0
                async for item in stream.events():
                    if "token_id" in item:
                        tokens_seen += 1
                        if (
                            event.cancel_after_tokens is not None
                            and tokens_seen >= event.cancel_after_tokens
                        ):
                            if event.disconnect:
                                stream.abort()
                                return
                            await client.cancel(stream.request_id)
                await stream.close()
                return

        async def run_single(event: ReplayEvent) -> None:
            await asyncio.sleep(event.arrival_seconds * time_scale)
            await run_event(event)

        async def run_session(chain: list[ReplayEvent]) -> None:
            await asyncio.sleep(chain[0].arrival_seconds * time_scale)
            previous_arrival = chain[0].arrival_seconds
            for turn, event in enumerate(chain):
                if turn > 0:
                    think = max(event.arrival_seconds - previous_arrival, 0.0)
                    await asyncio.sleep(think * time_scale)
                previous_arrival = event.arrival_seconds
                await run_event(event)

        tasks = [asyncio.create_task(run_single(e)) for e in singles]
        tasks += [asyncio.create_task(run_session(chain)) for chain in sessions.values()]
        await asyncio.gather(*tasks)
        await server.shutdown(drain=True, max_seconds=drain_seconds)
        wall = time.perf_counter() - start
        return _build_service_report(
            "http",
            trace,
            service,
            submitted=submitted,
            throttled=throttled,
            event_records=event_records,
            wall_seconds=wall,
        )

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# entry point 3: the sharded context router
# ----------------------------------------------------------------------
def replay_router(trace: ReplayTrace, router) -> ReplayReport:
    """Replay the trace through a :class:`~repro.sharding.router.ShardedContextRouter`.

    The router serves one generation at a time (no scheduler), so events run
    sequentially in arrival order.  RAG events reuse the sharded library
    documents; session events shard their first turn's context and later
    turns prefix-match against it.  Mid-stream cancellations are modelled as
    the client capping consumption (``max_new_tokens`` truncation) — the
    router has no cancel protocol.
    """
    start = time.perf_counter()
    for document_id, text in trace.documents.items():
        router.ingest(text, context_id=document_id)

    session_roots: set[str] = set()
    ttfts: list[float] = []
    tpots: list[float] = []
    submitted = 0
    completed = 0
    rejected = 0
    slo_attained = 0
    slo_checked = 0
    generated = 0
    prompt_tokens = 0
    reused_tokens = 0
    reuse_hits = 0
    per_kind: dict[str, dict] = {
        kind: {"events": 0, "completed": 0, "generated_tokens": 0, "reused_tokens": 0}
        for kind in EVENT_KINDS
    }

    for event in sorted(trace.events, key=lambda e: (e.arrival_seconds, e.event_id)):
        per_kind[event.kind]["events"] += 1
        max_new = event.max_new_tokens
        if event.cancel_after_tokens is not None:
            max_new = min(max_new, event.cancel_after_tokens)
        try:
            if event.kind == "rag":
                context_id = event.document_id
            elif event.session_id is not None:
                context_id = event.session_id
                if event.session_id not in session_roots:
                    # first turn: shard the session's opening context once;
                    # later turns prefix-match their extended prompt against it
                    router.ingest(event.prompt, context_id=event.session_id)
                    session_roots.add(event.session_id)
            else:
                context_id = f"fresh-{event.event_id:05d}"
                router.ingest(event.prompt, context_id=context_id)
            submitted += 1
            result = router.generate(context_id, prompt=event.prompt, max_new_tokens=max_new)
        except AdmissionRejectedError:
            rejected += 1
            continue
        completed += 1
        num_generated = len(result.generated_tokens)
        total_prompt = len(router.db.tokenize(event.prompt))
        reused = total_prompt - len(result.prompt_tokens)
        ttft = result.ttft_seconds
        tpot = (
            float(np.mean(result.decode_seconds)) if result.decode_seconds else 0.0
        )
        ttfts.append(ttft)
        tpots.append(tpot)
        slo_checked += 1
        if _slo_outcome(event, ttft, tpot):
            slo_attained += 1
        generated += num_generated
        prompt_tokens += total_prompt
        reused_tokens += reused
        if reused > 0:
            reuse_hits += 1
        row = per_kind[event.kind]
        row["completed"] += 1
        row["generated_tokens"] += num_generated
        row["reused_tokens"] += reused

    evictions = router.db.store_registry.spill_count + sum(
        worker.db.store_registry.spill_count for worker in router.workers
    )
    return ReplayReport(
        entrypoint="router",
        num_events=trace.num_events,
        submitted=submitted,
        completed=completed,
        cancelled=0,
        failed=0,
        rejected=rejected,
        throttled_429=0,
        generated_tokens=generated,
        prompt_tokens=prompt_tokens,
        reused_tokens=reused_tokens,
        reuse_hit_requests=reuse_hits,
        ttft_seconds=_percentiles(ttfts),
        tpot_seconds=_percentiles(tpots),
        slo_attained=slo_attained,
        slo_checked=slo_checked,
        preemptions=0,
        evictions=evictions,
        per_tenant={},
        per_kind=per_kind,
        wall_seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# the quality gate
# ----------------------------------------------------------------------
KIND_TASKS: dict[str, tuple[str, ...]] = {
    "rag": ("Qasper", "HotpotQA"),
    "chat": ("QMSum", "En.MC"),
    "agent": ("Retr.KV", "LCC"),
    "fresh": ("TriviaQA",),
}
"""Which LongBench/∞-Bench task specs stand in for each traffic kind when
scoring the trace's quality: RAG maps to document QA, chat to summarisation
and multiple choice over history, agent loops to exact retrieval and code
completion, fresh one-shots to few-shot recall."""


@dataclass
class QualityGateResult:
    """Sparse-vs-dense quality scores for the task mix of one trace."""

    per_task: dict[str, dict] = field(default_factory=dict)
    """task name → {kind, sparse, dense, ratio}."""

    @property
    def min_ratio(self) -> float:
        if not self.per_task:
            return 0.0
        return min(row["ratio"] for row in self.per_task.values())

    @property
    def mean_ratio(self) -> float:
        if not self.per_task:
            return 0.0
        return float(np.mean([row["ratio"] for row in self.per_task.values()]))

    def passes(self, threshold: float = 0.95) -> bool:
        """True when the sparse path keeps at least ``threshold`` of the dense
        path's quality on every task in the mix."""
        return bool(self.per_task) and self.min_ratio >= threshold

    def to_dict(self) -> dict:
        return {
            "per_task": self.per_task,
            "min_ratio": self.min_ratio,
            "mean_ratio": self.mean_ratio,
        }


def _task_spec(name: str):
    if name in LONGBENCH_TASKS:
        return LONGBENCH_TASKS[name].spec
    return INFINITE_BENCH_TASKS[name]


def score_quality_gate(
    kinds: list[str] | None = None,
    *,
    context_length: int = 2048,
    decode_steps: int = 2,
    tasks_per_kind: int = 1,
    sparse_strategy: SelectionStrategy | None = None,
    dense_strategy: SelectionStrategy | None = None,
) -> QualityGateResult:
    """Score the sparse path against the dense path on the trace's task mix.

    For each traffic kind, the mapped LongBench/∞-Bench specs (shrunk to
    ``context_length`` for tractability) are generated and both strategies
    replayed through :func:`evaluate_strategy`; the gate ratio per task is
    ``sparse_quality / dense_quality``.  Deterministic: the synthetic
    workloads are seeded and both strategies are seed-free.
    """
    kinds = list(kinds) if kinds is not None else list(KIND_TASKS)
    result = QualityGateResult()
    for kind in kinds:
        for task_name in KIND_TASKS.get(kind, ())[:tasks_per_kind]:
            if task_name in result.per_task:
                continue
            spec = replace(
                _task_spec(task_name),
                context_length=context_length,
                num_decode_steps=decode_steps,
            )
            workload = generate_workload(spec)
            dense = dense_strategy or FullAttentionStrategy()
            # scale beta to the task's head_dim as the Table 5 harness does —
            # a fixed beta under-selects at longer contexts
            sparse = sparse_strategy or DIPRSStrategy(
                beta=beta_from_alpha(0.012, spec.head_dim), capacity_threshold=256
            )
            dense_eval = evaluate_strategy(dense, workload)
            sparse_eval = evaluate_strategy(sparse, workload)
            ratio = sparse_eval.quality / max(dense_eval.quality, 1e-9)
            result.per_task[task_name] = {
                "kind": kind,
                "sparse": sparse_eval.quality,
                "dense": dense_eval.quality,
                "ratio": ratio,
            }
    return result
