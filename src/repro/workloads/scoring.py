"""Quality scoring of sparse-attention methods on synthetic workloads."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_weights", "recovery_ratio", "needle_hit", "tokens_for_recovery"]


def softmax_weights(scores: np.ndarray) -> np.ndarray:
    """Softmax over a 1-D score vector (the true attention distribution)."""
    scores = np.asarray(scores, dtype=np.float64)
    shifted = scores - scores.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


def _validate_positions(positions: np.ndarray, limit: int | None, label: str) -> np.ndarray:
    """Reject negative (and, with ``limit``, out-of-range) token positions.

    Negative indices would silently wrap through numpy fancy indexing and
    credit the *wrong* token's probability mass to the selection — a quality
    gate built on that sum would be inflated without any error surfacing.
    """
    positions = np.asarray(positions, dtype=np.int64).reshape(-1)
    if positions.size == 0:
        return positions
    low = int(positions.min())
    if low < 0:
        raise ValueError(f"{label} contains negative position {low}")
    if limit is not None:
        high = int(positions.max())
        if high >= limit:
            raise ValueError(
                f"{label} contains position {high} beyond the context length {limit}"
            )
    return positions


def recovery_ratio(scores: np.ndarray, attended: np.ndarray) -> float:
    """Fraction of the full-attention probability mass captured by ``attended``.

    This is the metric RetrievalAttention and the paper use to quantify how
    well a selected token subset approximates full attention.  ``attended``
    must hold valid positions into ``scores`` — negative or out-of-range
    entries raise instead of crediting another token's mass.
    """
    weights = softmax_weights(scores)
    attended = _validate_positions(attended, weights.shape[0], "attended")
    if attended.size == 0:
        return 0.0
    attended = np.unique(attended)
    return float(weights[attended].sum())


def needle_hit(evidence_positions: np.ndarray, attended: np.ndarray) -> bool:
    """True when every evidence position is in the attended set."""
    evidence_positions = _validate_positions(evidence_positions, None, "evidence_positions")
    attended = _validate_positions(attended, None, "attended")
    evidence = set(int(p) for p in evidence_positions)
    attended_set = set(int(p) for p in attended)
    return evidence.issubset(attended_set)


def tokens_for_recovery(scores: np.ndarray, target_ratio: float = 0.9) -> int:
    """Minimum number of top-scoring tokens needed to reach ``target_ratio``.

    The per-head statistic plotted in Figure 5 of the paper.
    """
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError(f"target_ratio must be in (0, 1], got {target_ratio}")
    weights = softmax_weights(scores)
    order = np.argsort(-weights)
    cumulative = np.cumsum(weights[order])
    return int(np.searchsorted(cumulative, target_ratio) + 1)
