"""Cross-request sparse decode rounds (scheduler-level batching).

PRs 3/5 batched sparse decode *within* a session — across query heads of one
layer.  This module batches *across sessions*: when the scheduler serves
several decode-ready requests with one forward pass, a
:class:`CrossRequestDecodeRound` executes each layer's attention stacked over
all plan-compatible sessions instead of re-entering Python per request.

* Sessions sharing a stored context, reused-prefix length and per-layer plan
  form a **compatibility group**.  Their flat/coarse retrieval scans stack
  into one gemm over the concatenated query heads
  (``PlanExecutor.retrieve_heads`` with an explicit ``kv_head_of_query``
  mapping), and their window/retrieved/local partials merge with one
  ``DataCentricAttentionEngine.stacked_layer_output`` call per layer per
  group.  Fine (DIPRS) graph walks stay per session — frontier expansion is
  data-dependent — but run from one dispatch loop sharing the first
  session's executor (and through it its reusable frontier scratch), their
  outcomes flowing into a single stats sink.
* Sessions whose layer runs dense attention, whose plan matches no one
  else's, or whose config opted out keep the exact per-session path, so
  outputs and integer :class:`~repro.core.session.DecodeStepStats` always
  match the per-session fallback.

:class:`DynamicAttentionPolicy` is the ALISA-style dense/sparse switcher:
while admission budget pressure is low a session may run exact dense
attention (accuracy costs nothing when memory is plentiful); as pressure
rises past the sparse watermark it flips back to retrieval.  Watermark
hysteresis plus a minimum dwell keep sessions from thrashing between modes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..query.types import IndexKind
from .session import Session, decode_stats_from

__all__ = [
    "StageTimings",
    "PolicyState",
    "DynamicAttentionPolicy",
    "CrossRequestDecodeRound",
]


@dataclass
class StageTimings:
    """Wall-clock split of decode work across the serving stack.

    ``retrieval_seconds`` covers index scans/walks (and their seeds),
    ``merge_seconds`` the partial-attention computation and merge,
    ``dense_seconds`` everything else in the forward pass (embedding,
    projections, MLP, LM head, full-attention sessions), and ``rounds`` the
    number of decode rounds the split was measured over.
    """

    retrieval_seconds: float = 0.0
    merge_seconds: float = 0.0
    dense_seconds: float = 0.0
    rounds: int = 0

    @property
    def sparse_seconds(self) -> float:
        return self.retrieval_seconds + self.merge_seconds


@dataclass(frozen=True)
class PolicyState:
    """One session's position in the dense/sparse hysteresis loop."""

    mode: str = "sparse"
    steps_in_mode: int = 0


class DynamicAttentionPolicy:
    """Per-session dense/sparse switching under budget pressure (ALISA-style).

    The transition function is deliberately pure (``step``) so its
    properties — monotonicity in pressure, the hysteresis band, the dwell
    bound — are directly testable: pressure at or above
    ``sparse_watermark`` targets sparse, at or below ``dense_watermark``
    targets dense, anything between keeps the current mode, and a switch is
    only taken after ``min_dwell_steps`` steps in the current mode.
    """

    def __init__(
        self,
        dense_watermark: float = 0.35,
        sparse_watermark: float = 0.75,
        min_dwell_steps: int = 4,
    ):
        if not 0.0 <= dense_watermark <= sparse_watermark:
            raise ValueError(
                f"watermarks must satisfy 0 <= dense <= sparse, "
                f"got dense={dense_watermark} sparse={sparse_watermark}"
            )
        if min_dwell_steps < 0:
            raise ValueError(f"min_dwell_steps must be non-negative, got {min_dwell_steps}")
        self.dense_watermark = dense_watermark
        self.sparse_watermark = sparse_watermark
        self.min_dwell_steps = min_dwell_steps
        self._states: dict[int, PolicyState] = {}

    def initial(self) -> PolicyState:
        """A fresh session starts sparse with its dwell already served, so
        the first decode step may take the dense mode if pressure is low."""
        return PolicyState(mode="sparse", steps_in_mode=self.min_dwell_steps)

    def step(self, state: PolicyState, pressure: float) -> PolicyState:
        """Advance one decode step under ``pressure`` (pure transition)."""
        target = state.mode
        if pressure >= self.sparse_watermark:
            target = "sparse"
        elif pressure <= self.dense_watermark:
            target = "dense"
        if target != state.mode and state.steps_in_mode >= self.min_dwell_steps:
            return PolicyState(mode=target, steps_in_mode=1)
        return PolicyState(mode=state.mode, steps_in_mode=state.steps_in_mode + 1)

    def apply(self, key: int, session: Session, pressure: float) -> str:
        """Advance the tracked state for ``key`` and set the session's
        decode-mode override accordingly; returns the mode chosen."""
        state = self.step(self._states.get(key) or self.initial(), pressure)
        self._states[key] = state
        session.decode_mode_override = "dense" if state.mode == "dense" else None
        return state.mode

    def forget(self, key: int) -> None:
        """Drop a finished/cancelled request's state."""
        self._states.pop(key, None)


class CrossRequestDecodeRound:
    """Executes one decode step's attention stacked across sessions.

    Plugged into ``TransformerModel.decode_batch`` as the ``attention_round``
    hook: the model calls :meth:`layer_attention` once per layer with the
    projected Q/K/V of every request, and receives the per-request attention
    rows back.  ``sessions`` must align with the ``caches`` the model passes.
    """

    def __init__(self, sessions: list[Session], timings: StageTimings | None = None):
        self.sessions = list(sessions)
        self.timings = timings

    def layer_attention(
        self,
        layer: int,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        caches: list,
    ) -> np.ndarray:
        """Attention rows ``(batch, num_query_heads * head_dim)`` for one layer.

        ``q``/``k``/``v`` are ``(heads, batch, head_dim)`` — one token per
        request.  Every cache gets its KV appended first (sessions are
        independent, so batching the appends ahead of the attention leaves
        each session's view unchanged), then sessions are classified into
        compatibility groups and each group's retrieval + merge runs stacked.
        """
        batch = len(caches)
        num_heads, _, head_dim = q.shape
        rows = np.empty((batch, num_heads * head_dim), dtype=np.float32)
        per_q: list[np.ndarray] = []
        for i, cache in enumerate(caches):
            qi = q[:, i : i + 1, :]
            cache.update_query(qi, k[:, i : i + 1, :], v[:, i : i + 1, :], layer)
            per_q.append(qi)

        groups, singles = self._classify(layer)
        for i in singles:
            attn = caches[i].attention(per_q[i], layer)
            rows[i] = attn[:, 0, :].reshape(-1)
        for members in groups:
            outputs = self._run_group(layer, members, per_q)
            for (i, _session, _plan, _inputs), output in zip(members, outputs):
                rows[i] = output.reshape(-1)
        return rows

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def _classify(self, layer: int):
        """Split sessions into stacked groups and per-session singles.

        The compatibility key pins everything the stacked kernels assume is
        shared: the stored context's KV arrays (by identity), the reused
        prefix, the exact plan (frozen dataclass — hashable), and the window
        geometry.  Everything else — dense layers, unbatched configs,
        one-member groups — goes down the unchanged per-session path.
        """
        singles: list[int] = []
        by_key: dict[tuple, list] = {}
        for i, session in enumerate(self.sessions):
            plan = session.sparse_decode_plan(layer)
            if plan is None or not session.config.sparse_head_batching:
                singles.append(i)
                continue
            inputs = session.sparse_layer_inputs(layer)
            key = (
                id(inputs.data.keys),
                inputs.prefix,
                plan,
                session.config.window_initial_tokens,
                session.config.window_last_tokens,
            )
            by_key.setdefault(key, []).append((i, session, plan, inputs))
        groups = []
        for members in by_key.values():
            if len(members) == 1:
                singles.append(members[0][0])
            else:
                groups.append(members)
        return groups, sorted(singles)

    # ------------------------------------------------------------------
    # stacked execution
    # ------------------------------------------------------------------
    def _run_group(self, layer: int, members: list, per_q: list[np.ndarray]) -> np.ndarray:
        """One retrieval + one merge for a whole compatibility group.

        Returns ``(len(members), num_query_heads, head_dim)`` attention
        outputs in member order, and records each member session's
        :class:`DecodeStepStats` exactly as the per-session path would.
        """
        first_session = members[0][1]
        plan = members[0][2]
        shared = members[0][3]
        num_sessions = len(members)
        queries = np.stack([per_q[i][:, 0, :] for i, *_ in members])
        num_heads = queries.shape[1]
        group_size = shared.data.gqa_group_size

        timings = self.timings
        started = time.perf_counter() if timings is not None else 0.0
        if plan.index_kind == IndexKind.FINE:
            # frontier walks are data-dependent per session; dispatch them
            # from one loop through the first session's executor so every
            # walk in the round reuses one visited-bitmap scratch
            executor = first_session.executor
            outcomes = []
            for (i, session, _plan, inputs) in members:
                session_queries = per_q[i][:, 0, :]
                # retrieve_heads decides whether the plan consumes the seeds
                seeds = session.fine_window_seeds(inputs, session_queries)
                outcomes.extend(
                    executor.retrieve_heads(
                        plan, shared.data, session_queries, window_max_scores=seeds
                    )
                )
        else:
            stacked_queries = queries.reshape(num_sessions * num_heads, -1)
            kv_head_of_query = np.tile(
                np.arange(num_heads, dtype=np.int64) // group_size, num_sessions
            )
            outcomes = first_session.executor.retrieve_heads(
                plan, shared.data, stacked_queries, kv_head_of_query=kv_head_of_query
            )
        retrieved = [outcome.positions[outcome.positions < shared.prefix] for outcome in outcomes]
        if timings is not None:
            now = time.perf_counter()
            timings.retrieval_seconds += now - started
            started = now

        outputs, breakdowns = first_session.engine.stacked_layer_output(
            queries,
            shared.prefix_keys,
            shared.prefix_values,
            window_positions=shared.window_positions,
            retrieved_positions=retrieved,
            local_keys=[inp.local_keys if inp.has_local else None for *_, inp in members],
            local_values=[inp.local_values if inp.has_local else None for *_, inp in members],
        )
        if timings is not None:
            timings.merge_seconds += time.perf_counter() - started

        for s, (_i, session, _plan, _inputs) in enumerate(members):
            window = slice(s * num_heads, (s + 1) * num_heads)
            session.record_decode_stats(
                decode_stats_from(outcomes[window], breakdowns[window]), layer
            )
        return outputs
