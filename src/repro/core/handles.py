"""Client-facing request handles and multi-turn chat sessions.

This module is the user-visible half of the serving API redesign:

* :class:`RequestHandle` — what :meth:`InferenceService.submit` returns.  It
  exposes the request's live ``status``, an incremental ``tokens()`` iterator
  that yields tokens as scheduler steps produce them (driving ``step()`` on
  demand when nothing else is pumping the scheduler), a blocking ``result()``,
  and ``cancel()`` — which releases the admission reservation, unpins the
  session's stored context, and surfaces state ``CANCELLED`` end-to-end.

* :class:`ChatSession` — a multi-turn conversation over one stored context.
  Every finished turn extends the context (previous transcript + prompt +
  generated tokens) through ``DB.store``, so the next turn's prefill reuses
  the whole history's KV through the context store's token-trie prefix match
  instead of re-prefilling the transcript.

Both types are thin drivers over :class:`InferenceService`; they own no model
or scheduler state of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..errors import AdmissionRejectedError, RequestCancelledError
from ..scheduler.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service builds handles)
    from ..llm.generation import GenerationResult
    from .service import InferenceService, RequestRecord

__all__ = ["RequestHandle", "ChatTurn", "ChatSession"]


class RequestHandle:
    """A client's view of one submitted request.

    The substrate is single-threaded, so the handle *is* the event loop: when
    the caller iterates :meth:`tokens` or blocks in :meth:`result` the handle
    drives ``service.step()`` until the request makes progress.  Code that
    already pumps the scheduler (``drain()``, another handle) coexists — the
    handle only steps when its request is not yet terminal.
    """

    def __init__(self, service: "InferenceService", request: Request):
        self._service = service
        self._request = request

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RequestHandle(request_id={self.request_id}, status={self.status!r})"

    @property
    def request_id(self) -> int:
        return self._request.request_id

    @property
    def request(self) -> Request:
        """The underlying scheduler request (read-only by convention)."""
        return self._request

    @property
    def status(self) -> str:
        """The request's live :class:`RequestState` string."""
        return self._request.state

    @property
    def is_done(self) -> bool:
        """True once the request reached a terminal state."""
        return self._request.is_terminal

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[int]:
        """Yield generated token ids incrementally, as steps produce them.

        The iterator drives one scheduler round whenever no new tokens are
        available yet, so a bare ``for token in handle.tokens():`` loop
        streams a response without any explicit ``drain()``.  The full
        yielded sequence equals ``result()[0].generated_tokens``.  A request
        cancelled mid-stream simply stops yielding; rejection and failure
        raise the same errors :meth:`result` does.
        """
        emitted = 0
        while True:
            generated = self._service.generated_tokens(self.request_id)
            while emitted < len(generated):
                yield generated[emitted]
                emitted += 1
            if self._request.state == RequestState.CANCELLED:
                return
            if self.is_done:
                self._raise_if_unservable()
                # flush tokens recorded between our last snapshot and finish
                generated = self._service.generated_tokens(self.request_id)
                while emitted < len(generated):
                    yield generated[emitted]
                    emitted += 1
                return
            if not self._service.scheduler.has_work:
                return  # defensive: nothing can ever advance this request
            self._service.step()

    def __iter__(self) -> Iterator[int]:
        return self.tokens()

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def result(self) -> tuple["GenerationResult", "RequestRecord"]:
        """Block (stepping the scheduler) until the request finishes.

        Raises :class:`RequestCancelledError` for a cancelled request,
        :class:`AdmissionRejectedError` for a rejected one, and
        :class:`RequestFailedError` when session setup failed mid-round.
        """
        while not self.is_done:
            if not self._service.scheduler.has_work:
                break
            self._service.step()
        self._raise_if_unservable()
        outcome = self._service.result(self.request_id)
        if outcome is None:
            # the request finished but its outcome aged out of the service's
            # bounded result window — not a cancellation
            raise LookupError(
                f"request {self.request_id} finished (state {self.status!r}) but its "
                f"result was evicted from the service's retained-results window"
            )
        return outcome

    def _raise_if_unservable(self) -> None:
        state = self._request.state
        if state == RequestState.CANCELLED:
            raise RequestCancelledError(f"request {self.request_id} was cancelled")
        if state == RequestState.REJECTED:
            raise AdmissionRejectedError(
                f"request {self.request_id} was rejected by admission control"
            )
        if state == RequestState.FAILED:
            # service.result raises RequestFailedError with the recorded cause
            self._service.result(self.request_id)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the request wherever it lives (queued, running, preempted).

        Releases its admission reservation and unpins its stored context;
        returns ``False`` (an idempotent no-op) when the request is already
        terminal.
        """
        return self._service.cancel(self.request_id)


@dataclass
class ChatTurn:
    """One completed prompt → response exchange of a :class:`ChatSession`."""

    prompt_tokens: list[int]
    result: "GenerationResult"
    record: "RequestRecord"

    @property
    def reused_tokens(self) -> int:
        return self.record.reused_tokens

    @property
    def reuse_ratio(self) -> float:
        return self.record.reuse_ratio

    @property
    def text(self) -> str:
        return self.result.text


class ChatSession:
    """A multi-turn conversation whose history lives in the context store.

    Each :meth:`send` submits ``full transcript + new prompt`` (every prior
    prompt and every generated token) and asks the service to re-store the
    finished session under this chat's context id.  Turn *k+1* therefore
    prefix-matches everything turn *k* left behind in the store — and only
    the new user prompt, plus the final generated token whose KV was never
    computed, is prefilled.
    """

    def __init__(
        self,
        service: "InferenceService",
        context_id: str | None = None,
        max_new_tokens: int = 16,
    ):
        self._service = service
        self.context_id = context_id or service.next_chat_context_id()
        self.max_new_tokens = max_new_tokens
        self.turns: list[ChatTurn] = []
        self._pending: RequestHandle | None = None
        self._transcript: list[int] = []
        """The *logical* conversation so far: every submitted prompt plus
        every generated token.  One token longer than the stored context per
        turn — the final sampled token has no KV yet, so it is prefilled as
        part of the next turn's suffix rather than prefix-matched."""

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_turns(self) -> int:
        return len(self.turns)

    @property
    def pending(self) -> RequestHandle | None:
        """The in-progress turn's handle, if a ``send`` has not finished."""
        return self._pending

    def transcript_tokens(self) -> list[int]:
        """Tokens of the stored conversation context (KV-backed history).

        This is the prefix the next turn's prompt will match; the logical
        transcript (see :meth:`full_transcript_tokens`) is one token longer
        per turn — the final sampled token whose KV was never computed.
        """
        registry = self._service.db.store_registry
        if self.context_id in registry:
            return list(registry.get(self.context_id).tokens)
        return []

    def full_transcript_tokens(self) -> list[int]:
        """The complete conversation: every prompt and every generated token.

        This — not the KV-backed :meth:`transcript_tokens` — is what the
        next turn's prompt is built from, so no generated token is ever
        dropped from the history the model conditions on.  When resuming a
        conversation by context id (no turns in this object), the stored
        context's tokens are the best available history.
        """
        if self._transcript:
            return list(self._transcript)
        return self.transcript_tokens()

    # ------------------------------------------------------------------
    # turns
    # ------------------------------------------------------------------
    def send(
        self,
        prompt: str | list[int],
        max_new_tokens: int | None = None,
        **submit_kwargs,
    ) -> RequestHandle:
        """Submit the next turn; returns its handle (streamable immediately).

        A still-running previous turn is driven to completion first so its
        stored context exists for this turn's prefix match.
        """
        self._sync_pending()
        if isinstance(prompt, str) and not prompt:
            raise ValueError("chat prompts must not be empty")
        prompt_tokens = self._service.db.tokenize(prompt)
        if not prompt_tokens:
            raise ValueError("chat prompts must not be empty")
        full_prompt = self.full_transcript_tokens() + prompt_tokens
        handle = self._service.submit(
            full_prompt,
            max_new_tokens=self.max_new_tokens if max_new_tokens is None else max_new_tokens,
            store_context_id=self.context_id,
            **submit_kwargs,
        )
        self._pending = handle
        return handle

    def ask(
        self,
        prompt: str | list[int],
        max_new_tokens: int | None = None,
        **submit_kwargs,
    ) -> ChatTurn:
        """``send`` + wait: returns the completed turn."""
        self.send(prompt, max_new_tokens=max_new_tokens, **submit_kwargs)
        self._sync_pending()
        return self.turns[-1]

    def cancel(self) -> bool:
        """Cancel the in-progress turn (no-op without one).

        A cancelled turn stores nothing: the transcript stays at the last
        completed turn and the next ``send`` builds on that.
        """
        if self._pending is None:
            return False
        return self._pending.cancel()

    def _sync_pending(self) -> None:
        """Fold the previous turn's outcome into the transcript bookkeeping."""
        if self._pending is None:
            return
        handle, self._pending = self._pending, None
        if handle.status == RequestState.CANCELLED:
            return  # nothing was stored; the transcript is unchanged
        # propagate rejection/failure to the caller (transcript unchanged)
        result, record = handle.result()
        self.turns.append(
            ChatTurn(prompt_tokens=list(handle.request.prompt_tokens), result=result, record=record)
        )
        self._transcript = list(handle.request.prompt_tokens) + list(result.generated_tokens)
