"""The context store: stored long contexts and prefix-based reuse.

A *context* is a prompt's token sequence plus the KV cache it produced and,
once built, the per-layer vector indexes over its keys.  ``DB.create_session``
matches the incoming prompt against the store to find the **longest common
prefix** with any stored context; the matched prefix is reused (its KV cache
and indexes are not recomputed) and only the non-reused suffix is prefilled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ContextNotFoundError, DuplicateContextError
from ..index.builder import LayerIndexes
from ..index.coarse import CoarseBlockIndex
from ..kvcache.serialization import KVSnapshot, load_snapshot, save_snapshot

__all__ = ["StoredContext", "PrefixMatch", "ContextStore"]


@dataclass
class StoredContext:
    """One reusable context: tokens, KV snapshot, and (optionally) indexes."""

    context_id: str
    snapshot: KVSnapshot
    fine_indexes: dict[int, LayerIndexes] = field(default_factory=dict)
    coarse_indexes: dict[int, list[CoarseBlockIndex]] = field(default_factory=dict)
    query_samples: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def tokens(self) -> list[int]:
        return self.snapshot.tokens

    @property
    def num_tokens(self) -> int:
        return self.snapshot.num_tokens

    @property
    def num_layers(self) -> int:
        return self.snapshot.num_layers

    @property
    def has_fine_indexes(self) -> bool:
        return bool(self.fine_indexes)

    def keys(self, layer: int) -> np.ndarray:
        return self.snapshot.keys[layer]

    def values(self, layer: int) -> np.ndarray:
        return self.snapshot.values[layer]

    @property
    def kv_bytes(self) -> int:
        return self.snapshot.nbytes

    @property
    def index_bytes(self) -> int:
        return sum(indexes.memory_bytes for indexes in self.fine_indexes.values())


@dataclass
class PrefixMatch:
    """Result of matching an incoming prompt against the store."""

    context: StoredContext | None
    prefix_length: int

    @property
    def is_hit(self) -> bool:
        return self.context is not None and self.prefix_length > 0

    @property
    def is_full_reuse(self) -> bool:
        return self.is_hit and self.prefix_length == self.context.num_tokens


def _common_prefix_length(a: list[int], b: list[int]) -> int:
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return i
    return limit


class ContextStore:
    """In-memory registry of stored contexts with optional disk persistence."""

    def __init__(self, storage_dir: str | Path | None = None):
        self._contexts: dict[str, StoredContext] = {}
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None

    # ------------------------------------------------------------------
    # registry operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._contexts)

    def __contains__(self, context_id: str) -> bool:
        return context_id in self._contexts

    def add(self, context: StoredContext, overwrite: bool = False) -> None:
        if not overwrite and context.context_id in self._contexts:
            raise DuplicateContextError(f"context {context.context_id!r} already stored")
        self._contexts[context.context_id] = context

    def get(self, context_id: str) -> StoredContext:
        try:
            return self._contexts[context_id]
        except KeyError:
            raise ContextNotFoundError(f"context {context_id!r} not found") from None

    def remove(self, context_id: str) -> None:
        if context_id not in self._contexts:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        del self._contexts[context_id]

    def list_ids(self) -> list[str]:
        return sorted(self._contexts)

    @property
    def total_kv_bytes(self) -> int:
        return sum(context.kv_bytes for context in self._contexts.values())

    # ------------------------------------------------------------------
    # prefix matching
    # ------------------------------------------------------------------
    def find_longest_prefix(self, tokens: list[int]) -> PrefixMatch:
        """Find the stored context sharing the longest common prefix with ``tokens``."""
        best_context: StoredContext | None = None
        best_length = 0
        for context in self._contexts.values():
            length = _common_prefix_length(tokens, context.tokens)
            if length > best_length:
                best_context, best_length = context, length
        return PrefixMatch(context=best_context, prefix_length=best_length)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def persist(self, context_id: str) -> Path:
        """Write a context's snapshot to ``storage_dir`` (indexes are rebuilt on load)."""
        if self.storage_dir is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        context = self.get(context_id)
        return save_snapshot(context.snapshot, self.storage_dir, context_id)

    def load_persisted(self, context_id: str) -> StoredContext:
        """Load a previously persisted snapshot back into the registry."""
        if self.storage_dir is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        snapshot = load_snapshot(self.storage_dir, context_id)
        context = StoredContext(context_id=context_id, snapshot=snapshot)
        self.add(context, overwrite=True)
        return context
