"""The context store: stored long contexts, prefix reuse, and residency.

A *context* is a prompt's token sequence plus the KV cache it produced and,
once built, the per-layer vector indexes over its keys.  ``DB.create_session``
matches the incoming prompt against the store to find the **longest common
prefix** with any stored context; the matched prefix is reused (its KV cache
and indexes are not recomputed) and only the non-reused suffix is prefilled.

Serving-scale features:

* prefix matching runs over a **token trie**, so a lookup costs
  ``O(len(prompt))`` instead of ``O(num_contexts x len(prompt))``;
* the store enforces an optional **byte budget** on resident KV snapshots:
  cold contexts are spilled through a :class:`~repro.storage.backend.StorageBackend`
  (their tokens stay in memory so prefix matching keeps working) and
  transparently reloaded on the next hit;
* spilled contexts round-trip their **fine and coarse indexes** too
  (``persist_indexes``): reload is a deserialize, not a rebuild-from-keys;
* in **durable** mode the store is a real context database: every stored
  context is persisted (snapshot + indexes) and cataloged in a crash-safe,
  generation-stamped manifest, so :meth:`ContextStore.open` on the same
  directory — after a restart, or from a second process — recovers the whole
  population and serves contexts this process never prefilled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import ContextEvictedError, ContextLoadError, ContextNotFoundError, DuplicateContextError
from ..index.builder import LayerIndexes
from ..index.coarse import CoarseBlockIndex
from ..index.serialization import deserialize_context_indexes, serialize_context_indexes
from ..kvcache.serialization import KVSnapshot, snapshot_from_bytes, snapshot_to_bytes
from ..storage.backend import FilesystemBackend, StorageBackend
from ..storage.manifest import ContextManifest, ManifestEntry

__all__ = ["StoredContext", "PrefixMatch", "ContextStore"]


@dataclass
class StoredContext:
    """One reusable context: tokens, KV snapshot, and (optionally) indexes.

    ``snapshot`` is ``None`` while the context is spilled to disk; the token
    sequence (and the byte sizes needed for accounting) stay in memory so the
    context keeps participating in prefix matching.
    """

    context_id: str
    snapshot: KVSnapshot | None
    fine_indexes: dict[int, LayerIndexes] = field(default_factory=dict)
    coarse_indexes: dict[int, list[CoarseBlockIndex]] = field(default_factory=dict)
    query_samples: dict[int, np.ndarray] = field(default_factory=dict)
    wants_fine_indexes: bool = True
    wants_coarse_indexes: bool = True
    """Index policy chosen at import/store time; honoured when indexes are
    rebuilt after a spill/reload cycle."""
    prefix_matchable: bool = True
    """Whether the context's tokens enter the prefix-matching trie.  A shard
    of a larger context holds a mid-document token slice that must never be
    offered as a reusable prompt prefix, so shards set this False; they are
    addressed by id (via a shard catalog), not by prompt match."""

    def __post_init__(self) -> None:
        self._tokens: list[int] = self.snapshot.tokens if self.snapshot is not None else []
        self._spilled_kv_bytes = 0
        self._spilled_num_layers = 0
        if not self.query_samples and self.snapshot is not None and self.snapshot.query_samples:
            self.query_samples = dict(self.snapshot.query_samples)

    @classmethod
    def from_manifest_entry(cls, entry: ManifestEntry) -> "StoredContext":
        """A cold (spilled) context recovered from a manifest row.

        Its tokens participate in prefix matching immediately; the KV and
        indexes load from the backend on the first ``ensure_resident``.
        """
        context = cls(
            context_id=entry.context_id,
            snapshot=None,
            wants_fine_indexes=entry.wants_fine_indexes,
            wants_coarse_indexes=entry.wants_coarse_indexes,
            prefix_matchable=entry.prefix_matchable,
        )
        context._tokens = list(entry.tokens)
        context._spilled_kv_bytes = entry.kv_bytes
        context._spilled_num_layers = entry.num_layers
        return context

    @property
    def is_resident(self) -> bool:
        return self.snapshot is not None

    @property
    def tokens(self) -> list[int]:
        return self._tokens

    @property
    def num_tokens(self) -> int:
        return len(self._tokens)

    @property
    def num_layers(self) -> int:
        if self.snapshot is not None:
            return self.snapshot.num_layers
        return self._spilled_num_layers

    @property
    def has_fine_indexes(self) -> bool:
        return bool(self.fine_indexes)

    def _require_resident(self) -> KVSnapshot:
        if self.snapshot is None:
            raise ContextEvictedError(
                f"context {self.context_id!r} is spilled to disk; "
                "reload it through ContextStore.ensure_resident"
            )
        return self.snapshot

    def keys(self, layer: int) -> np.ndarray:
        return self._require_resident().keys[layer]

    def values(self, layer: int) -> np.ndarray:
        return self._require_resident().values[layer]

    @property
    def kv_bytes(self) -> int:
        if self.snapshot is not None:
            return self.snapshot.nbytes
        return self._spilled_kv_bytes

    @property
    def index_bytes(self) -> int:
        return sum(indexes.memory_bytes for indexes in self.fine_indexes.values())

    # ------------------------------------------------------------------
    # residency transitions (driven by the ContextStore)
    # ------------------------------------------------------------------
    def spill(self) -> None:
        """Drop the in-memory KV and indexes; keep tokens and accounting."""
        snapshot = self._require_resident()
        self._spilled_kv_bytes = snapshot.nbytes
        self._spilled_num_layers = snapshot.num_layers
        self.snapshot = None
        # indexes reference the key arrays; dropping them is what frees the
        # memory.  Query samples go too — they were persisted inside the
        # snapshot on disk, so :meth:`restore` brings them back, and with
        # index persistence enabled the indexes themselves come back as a
        # deserialize instead of a rebuild.
        self.fine_indexes = {}
        self.coarse_indexes = {}
        self.query_samples = {}

    def restore(self, snapshot: KVSnapshot) -> None:
        """Re-attach a snapshot loaded back from disk."""
        self.snapshot = snapshot
        self._tokens = snapshot.tokens
        self.query_samples = dict(snapshot.query_samples)


@dataclass
class PrefixMatch:
    """Result of matching an incoming prompt against the store."""

    context: StoredContext | None
    prefix_length: int

    @property
    def is_hit(self) -> bool:
        return self.context is not None and self.prefix_length > 0

    @property
    def is_full_reuse(self) -> bool:
        return self.is_hit and self.prefix_length == self.context.num_tokens


class _TrieNode:
    """One token of stored-context prefixes.

    ``holder`` is one representative context whose token sequence passes
    through this node — any such context shares the prefix this node spells,
    which is all longest-prefix matching needs, so a full holder *set* per
    node (O(total stored tokens) sets) is avoided.  ``ends`` lists the
    contexts whose sequence terminates exactly here; it backs holder repair
    when a context is removed.
    """

    __slots__ = ("children", "holder", "ends")

    def __init__(self, holder: str) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.holder = holder
        self.ends: set[str] | None = None


class ContextStore:
    """Registry of stored contexts with budgeted residency and disk spill.

    ``kv_budget_bytes`` caps the total bytes of KV snapshots kept in memory;
    exceeding it spills the least-recently-used unpinned context through the
    store's backend (so a budget requires either ``storage_dir`` or
    ``backend``).  ``on_spill`` / ``on_reload`` let the owning DB react to
    residency changes (dropping buffer-pool accounting, re-scheduling index
    builds).

    ``durable=True`` turns the store into a context database over its
    backend: every added context is persisted immediately and recorded in
    the manifest; construction recovers whatever population the manifest
    describes (see :meth:`open`).
    """

    def __init__(
        self,
        storage_dir: str | Path | None = None,
        kv_budget_bytes: int | None = None,
        on_spill: Callable[[StoredContext], None] | None = None,
        on_reload: Callable[[StoredContext], None] | None = None,
        on_remove: Callable[[StoredContext], None] | None = None,
        backend: StorageBackend | None = None,
        durable: bool = False,
        persist_indexes: bool = True,
    ):
        if backend is None and storage_dir is not None:
            backend = FilesystemBackend(storage_dir)
        if kv_budget_bytes is not None:
            if kv_budget_bytes <= 0:
                raise ValueError(f"kv_budget_bytes must be positive, got {kv_budget_bytes}")
            if backend is None:
                raise ValueError("a kv_budget_bytes cap requires a storage_dir (or backend) to spill to")
        if durable and backend is None:
            raise ValueError("a durable ContextStore requires a storage_dir or backend")
        self._contexts: dict[str, StoredContext] = {}
        self.backend = backend
        self.storage_dir = Path(storage_dir) if storage_dir is not None else (
            Path(backend.location) if backend is not None and backend.location else None
        )
        self.kv_budget_bytes = kv_budget_bytes
        self.durable = durable
        self._persist_indexes = persist_indexes
        self._root = _TrieNode(holder="")  # the root's holder is never read
        self._lru: OrderedDict[str, None] = OrderedDict()  # resident ids, oldest first
        self._resident_bytes = 0
        self._pins: dict[str, int] = {}
        self._persisted: set[str] = set()
        self._indexed_on_disk: set[str] = set()
        self._on_spill = on_spill
        self._on_reload = on_reload
        self._on_remove = on_remove
        self.spill_count = 0
        self.reload_count = 0
        self.reload_deserialized_count = 0
        """Reloads whose fine/coarse indexes came back by deserialization."""
        self.reload_rebuilt_count = 0
        """Reloads that came back index-less (indexes rebuilt from keys)."""
        self._manifest = ContextManifest()
        if durable:
            self._manifest = ContextManifest.load_or_empty(self.backend)
            self._recover_from_manifest()

    @classmethod
    def open(
        cls,
        storage: str | Path | StorageBackend,
        **kwargs,
    ) -> "ContextStore":
        """Open (or create) a durable context database at ``storage``.

        ``storage`` is a directory path (filesystem backend) or an existing
        :class:`StorageBackend`.  Contexts cataloged in the manifest are
        recovered cold — prefix-matchable immediately, loaded on first use —
        so a restarted service, or a second store sharing the directory, can
        serve contexts it never prefilled.
        """
        if isinstance(storage, StorageBackend):
            return cls(backend=storage, durable=True, **kwargs)
        return cls(storage_dir=storage, durable=True, **kwargs)

    def _recover_from_manifest(self) -> None:
        for entry in self._manifest.entries.values():
            self._adopt_manifest_entry(entry)

    def _adopt_manifest_entry(self, entry: ManifestEntry) -> StoredContext:
        context = StoredContext.from_manifest_entry(entry)
        self._contexts[context.context_id] = context
        if context.prefix_matchable:
            self._trie_insert(context.tokens, context.context_id)
        self._persisted.add(context.context_id)
        if entry.index_key is not None:
            self._indexed_on_disk.add(context.context_id)
        return context

    def refresh_from_manifest(self) -> list[str]:
        """Adopt contexts another writer added to the shared manifest.

        A worker that opened its store *before* a router ingested new
        contexts (or shards) calls this to pick them up without reopening:
        the shared manifest is re-read and any context id this handle has
        never seen is adopted cold (loaded on first use).  Known ids are left
        untouched — local residency, pins and in-flight state stay valid —
        and local entries missing from the loaded manifest are kept (the
        entry content of concurrent writers is last-writer-wins; dropping
        them here would orphan live local contexts).  Returns the newly
        adopted context ids.
        """
        if not self.durable:
            raise ValueError("refresh_from_manifest requires a durable ContextStore")
        loaded = ContextManifest.load_or_empty(self.backend)
        self._manifest.generation = max(self._manifest.generation, loaded.generation)
        adopted = []
        for context_id, entry in loaded.entries.items():
            if context_id in self._contexts:
                continue
            self._manifest.upsert(entry)
            self._adopt_manifest_entry(entry)
            adopted.append(context_id)
        return adopted

    # ------------------------------------------------------------------
    # backend keys
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot_key(context_id: str) -> str:
        return f"{context_id}.npz"

    @staticmethod
    def _index_key(context_id: str) -> str:
        return f"{context_id}.indexes.npz"

    @property
    def persists_indexes(self) -> bool:
        """Whether spilled/stored contexts keep their indexes on disk."""
        return self.backend is not None and self._persist_indexes

    @property
    def manifest_generation(self) -> int:
        """Generation stamp of the last manifest write (0 when non-durable)."""
        return self._manifest.generation

    # ------------------------------------------------------------------
    # registry operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._contexts)

    def __contains__(self, context_id: str) -> bool:
        return context_id in self._contexts

    def add(self, context: StoredContext, overwrite: bool = False) -> None:
        context_id = context.context_id
        existing = self._contexts.get(context_id)
        if existing is not None:
            if not overwrite:
                raise DuplicateContextError(f"context {context_id!r} already stored")
            # pins are held by id (live sessions unpin on close), so they must
            # survive the overwrite: dropping them would let a later close()
            # zero another session's pin and spill a context still in use
            preserved_pins = self._pins.get(context_id, 0)
            self._forget(existing)
            if preserved_pins:
                self._pins[context_id] = preserved_pins
        self._contexts[context_id] = context
        if context.prefix_matchable:
            self._trie_insert(context.tokens, context_id)
        if context.is_resident:
            self._lru[context_id] = None
            self._resident_bytes += context.kv_bytes
        if self.durable and context.is_resident:
            # the database property: a stored context survives this process
            self._persist_snapshot(context)
            if self.persists_indexes and (context.fine_indexes or context.coarse_indexes):
                self._persist_index_blob(context)
            self._manifest.upsert(self._manifest_entry(context))
            self._manifest.save(self.backend)
        self._enforce_budget(protect=context_id)

    def get(self, context_id: str) -> StoredContext:
        try:
            context = self._contexts[context_id]
        except KeyError:
            raise ContextNotFoundError(f"context {context_id!r} not found") from None
        if context.is_resident:
            self._touch(context_id)
        return context

    def remove(self, context_id: str) -> None:
        context = self._contexts.get(context_id)
        if context is None:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        self._forget(context)
        del self._contexts[context_id]
        if self.durable:
            self.backend.delete(self._snapshot_key(context_id))
            self.backend.delete(self._index_key(context_id))
            if self._manifest.remove(context_id):
                self._manifest.save(self.backend)
        if self._on_remove is not None:
            self._on_remove(context)

    def list_ids(self) -> list[str]:
        return sorted(self._contexts)

    def items(self) -> list[tuple[str, StoredContext]]:
        """Snapshot of ``(context_id, context)`` pairs, LRU order untouched.

        Reporting paths (``memory_report``) iterate the population without
        promoting every context in the LRU the way :meth:`get` would.
        """
        return sorted(self._contexts.items())

    @property
    def total_kv_bytes(self) -> int:
        """KV bytes of every stored context, resident or spilled."""
        return sum(context.kv_bytes for context in self._contexts.values())

    @property
    def resident_kv_bytes(self) -> int:
        """KV bytes currently held in memory (governed by the budget)."""
        return self._resident_bytes

    @property
    def spilled_kv_bytes(self) -> int:
        """KV bytes of contexts currently living only on the disk tier."""
        return sum(
            context.kv_bytes for context in self._contexts.values() if not context.is_resident
        )

    @property
    def disk_kv_bytes(self) -> int:
        """On-disk bytes of persisted KV snapshots (as stored, compressed)."""
        if self.backend is None:
            return 0
        return sum(self.backend.size_bytes(self._snapshot_key(cid)) for cid in self._persisted)

    @property
    def disk_index_bytes(self) -> int:
        """On-disk bytes of serialized fine/coarse index blobs."""
        if self.backend is None:
            return 0
        return sum(self.backend.size_bytes(self._index_key(cid)) for cid in self._indexed_on_disk)

    def resident_ids(self) -> list[str]:
        return list(self._lru)

    # ------------------------------------------------------------------
    # pinning (contexts connected to live sessions must not be spilled)
    # ------------------------------------------------------------------
    def pin(self, context_id: str) -> None:
        if context_id not in self._contexts:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        self._pins[context_id] = self._pins.get(context_id, 0) + 1

    def unpin(self, context_id: str) -> None:
        count = self._pins.get(context_id, 0)
        if count <= 1:
            self._pins.pop(context_id, None)
            # a budget overrun deferred by this pin can be resolved now
            self._enforce_budget()
        else:
            self._pins[context_id] = count - 1

    def pin_count(self, context_id: str) -> int:
        """Live-session pins currently held on ``context_id`` (0 if none)."""
        return self._pins.get(context_id, 0)

    def pinned_ids(self) -> list[str]:
        """Contexts currently pinned by at least one live session."""
        return sorted(cid for cid, count in self._pins.items() if count > 0)

    @property
    def num_pinned(self) -> int:
        """Number of contexts with at least one live pin.

        A drained serving stack must report 0 here — every session closed,
        preempted-then-cancelled, or resumed-then-finished request returns
        its pin; the soak test asserts exactly that."""
        return len(self.pinned_ids())

    # ------------------------------------------------------------------
    # prefix matching (token trie)
    # ------------------------------------------------------------------
    def find_longest_prefix(self, tokens: list[int]) -> PrefixMatch:
        """Find the stored context sharing the longest common prefix with ``tokens``.

        One trie walk over the prompt; spilled contexts still match (their
        tokens stay in the trie) — callers reload them via
        :meth:`ensure_resident` before touching KV data.
        """
        node = self._root
        best_id: str | None = None
        best_length = 0
        for depth, token in enumerate(tokens, start=1):
            child = node.children.get(int(token))
            if child is None:
                break
            # every node exists on some stored context's path, so its holder
            # shares exactly this prefix with the probe
            best_id = child.holder
            best_length = depth
            node = child
        context = self._contexts.get(best_id) if best_id is not None else None
        return PrefixMatch(context=context, prefix_length=best_length)

    def _trie_insert(self, tokens: list[int], context_id: str) -> None:
        node = self._root
        for token in tokens:
            token = int(token)
            child = node.children.get(token)
            if child is None:
                child = _TrieNode(holder=context_id)
                node.children[token] = child
            node = child
        if node.ends is None:
            node.ends = set()
        node.ends.add(context_id)

    def _trie_remove(self, tokens: list[int], context_id: str) -> None:
        node = self._root
        path: list[tuple[_TrieNode, int, _TrieNode]] = []
        for token in tokens:
            token = int(token)
            child = node.children.get(token)
            if child is None:
                break
            path.append((node, token, child))
            node = child
        if node.ends is not None:
            node.ends.discard(context_id)
            if not node.ends:
                node.ends = None
        # bottom-up: prune empty nodes, repair holders that named the
        # removed context (children were repaired first, so their holders
        # are valid replacements)
        for parent, token, child in reversed(path):
            if not child.children and child.ends is None:
                del parent.children[token]
                continue
            if child.holder == context_id:
                if child.ends:
                    child.holder = next(iter(child.ends))
                else:
                    child.holder = next(iter(child.children.values())).holder

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------
    def ensure_resident(self, context_id: str) -> StoredContext:
        """Reload a spilled context from disk (no-op when already resident).

        When the context's indexes were persisted alongside its snapshot,
        they are deserialized and re-attached here — retrieval over them is
        bit-identical to the pre-spill index, and no rebuild is queued.
        """
        context = self._contexts.get(context_id)
        if context is None:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        if context.is_resident:
            self._touch(context_id)
            return context
        if self.backend is None:
            raise ContextEvictedError(
                f"context {context_id!r} is spilled but the store has no storage_dir"
            )
        snapshot = self._load_snapshot(context_id)
        context.restore(snapshot)
        if self._attach_persisted_indexes(context):
            self.reload_deserialized_count += 1
        else:
            self.reload_rebuilt_count += 1
        self._lru[context_id] = None
        self._lru.move_to_end(context_id)
        self._resident_bytes += context.kv_bytes
        self.reload_count += 1
        if self._on_reload is not None:
            self._on_reload(context)
        self._enforce_budget(protect=context_id)
        return context

    def spill(self, context_id: str) -> None:
        """Explicitly spill one resident context to disk."""
        if self.backend is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        context = self.get(context_id)
        if not context.is_resident:
            return
        if self._pins.get(context_id, 0) > 0:
            raise ValueError(
                f"context {context_id!r} is pinned by a live session and cannot be spilled"
            )
        self._spill_one(context_id)

    def _touch(self, context_id: str) -> None:
        if context_id in self._lru:
            self._lru.move_to_end(context_id)

    def _enforce_budget(self, protect: str | None = None) -> None:
        if self.kv_budget_bytes is None:
            return
        while self._resident_bytes > self.kv_budget_bytes:
            victim = next(
                (
                    cid
                    for cid in self._lru
                    if cid != protect and self._pins.get(cid, 0) == 0
                ),
                None,
            )
            if victim is None:
                break  # everything else is pinned or protected; stay over budget
            self._spill_one(victim)

    def _spill_one(self, context_id: str) -> None:
        context = self._contexts[context_id]
        if context_id not in self._persisted:
            self._persist_snapshot(context)
        if (
            self.persists_indexes
            and context_id not in self._indexed_on_disk
            and (context.fine_indexes or context.coarse_indexes)
        ):
            self._persist_index_blob(context)
            if self.durable:
                self._manifest.upsert(self._manifest_entry(context))
                self._manifest.save(self.backend)
        self._resident_bytes -= context.kv_bytes
        self._lru.pop(context_id, None)
        context.spill()
        self.spill_count += 1
        if self._on_spill is not None:
            self._on_spill(context)

    def _forget(self, context: StoredContext) -> None:
        """Drop all bookkeeping for a context being removed or overwritten."""
        context_id = context.context_id
        if context.prefix_matchable:
            self._trie_remove(context.tokens, context_id)
        if context.is_resident:
            self._resident_bytes -= context.kv_bytes
        self._lru.pop(context_id, None)
        self._pins.pop(context_id, None)
        self._persisted.discard(context_id)
        self._indexed_on_disk.discard(context_id)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _persist_snapshot(self, context: StoredContext) -> None:
        self.backend.write_bytes(
            self._snapshot_key(context.context_id), snapshot_to_bytes(context.snapshot)
        )
        self._persisted.add(context.context_id)

    def _load_snapshot(self, context_id: str) -> KVSnapshot:
        key = self._snapshot_key(context_id)
        return snapshot_from_bytes(self.backend.read_bytes(key), source=key)

    def _persist_index_blob(self, context: StoredContext) -> None:
        blob = serialize_context_indexes(
            context.fine_indexes, context.coarse_indexes, context.query_samples
        )
        self.backend.write_bytes(self._index_key(context.context_id), blob)
        self._indexed_on_disk.add(context.context_id)

    def _attach_persisted_indexes(self, context: StoredContext) -> bool:
        """Re-attach a reloaded context's serialized indexes, if any.

        Returns True when at least one index class came back; a corrupted
        blob degrades to the rebuild path instead of failing the reload.
        """
        context_id = context.context_id
        if not self.persists_indexes or context_id not in self._indexed_on_disk:
            return False
        try:
            fine, coarse, samples = deserialize_context_indexes(
                self.backend.read_bytes(self._index_key(context_id))
            )
        except ContextLoadError:
            self._indexed_on_disk.discard(context_id)
            return False
        if context.wants_fine_indexes:
            context.fine_indexes = fine
        if context.wants_coarse_indexes:
            context.coarse_indexes = coarse
        if samples and not context.query_samples:
            context.query_samples = samples
        return bool(context.fine_indexes or context.coarse_indexes)

    def _manifest_entry(self, context: StoredContext) -> ManifestEntry:
        context_id = context.context_id
        index_key = self._index_key(context_id) if context_id in self._indexed_on_disk else None
        return ManifestEntry(
            context_id=context_id,
            tokens=list(context.tokens),
            num_layers=context.num_layers,
            kv_bytes=context.kv_bytes,
            snapshot_key=self._snapshot_key(context_id),
            index_key=index_key,
            index_bytes=self.backend.size_bytes(index_key) if index_key else 0,
            wants_fine_indexes=context.wants_fine_indexes,
            wants_coarse_indexes=context.wants_coarse_indexes,
            prefix_matchable=context.prefix_matchable,
            metadata=dict(context.snapshot.metadata) if context.snapshot is not None else {},
        )

    def persist(self, context_id: str) -> Path | str:
        """Write a context's snapshot (and indexes, when enabled) to the backend."""
        if self.backend is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        context = self.get(context_id)
        context._require_resident()
        self._persist_snapshot(context)
        if self.persists_indexes and (context.fine_indexes or context.coarse_indexes):
            self._persist_index_blob(context)
        if self.durable:
            self._manifest.upsert(self._manifest_entry(context))
            self._manifest.save(self.backend)
        key = self._snapshot_key(context_id)
        return self.storage_dir / key if self.storage_dir is not None else key

    def persist_indexes(self, context_id: str) -> bool:
        """Serialize a context's current fine/coarse indexes to the backend.

        Called after deferred (lazy) index builds so contexts indexed *after*
        their snapshot was persisted still reload as deserialize-not-rebuild.
        Returns False (a no-op) when index persistence is off, the context is
        not resident, or it has no indexes yet.
        """
        if not self.persists_indexes:
            return False
        context = self._contexts.get(context_id)
        if context is None:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        if not context.is_resident or not (context.fine_indexes or context.coarse_indexes):
            return False
        self._persist_index_blob(context)
        if self.durable:
            self._manifest.upsert(self._manifest_entry(context))
            self._manifest.save(self.backend)
        return True

    def load_persisted(self, context_id: str) -> StoredContext:
        """Load a previously persisted snapshot back into the registry."""
        if self.backend is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        snapshot = self._load_snapshot(context_id)
        entry = self._manifest.get(context_id)
        context = StoredContext(
            context_id=context_id,
            snapshot=snapshot,
            prefix_matchable=entry.prefix_matchable if entry is not None else True,
        )
        if self.backend.exists(self._index_key(context_id)):
            self._indexed_on_disk.add(context_id)
            self._attach_persisted_indexes(context)
        self.add(context, overwrite=True)
        self._persisted.add(context_id)
        return context
