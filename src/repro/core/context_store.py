"""The context store: stored long contexts, prefix reuse, and residency.

A *context* is a prompt's token sequence plus the KV cache it produced and,
once built, the per-layer vector indexes over its keys.  ``DB.create_session``
matches the incoming prompt against the store to find the **longest common
prefix** with any stored context; the matched prefix is reused (its KV cache
and indexes are not recomputed) and only the non-reused suffix is prefilled.

Two serving-scale features live here:

* prefix matching runs over a **token trie**, so a lookup costs
  ``O(len(prompt))`` instead of ``O(num_contexts x len(prompt))``;
* the store enforces an optional **byte budget** on resident KV snapshots:
  cold contexts are spilled to disk (their tokens stay in memory so prefix
  matching keeps working) and transparently reloaded on the next hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import ContextEvictedError, ContextNotFoundError, DuplicateContextError
from ..index.builder import LayerIndexes
from ..index.coarse import CoarseBlockIndex
from ..kvcache.serialization import KVSnapshot, load_snapshot, save_snapshot

__all__ = ["StoredContext", "PrefixMatch", "ContextStore"]


@dataclass
class StoredContext:
    """One reusable context: tokens, KV snapshot, and (optionally) indexes.

    ``snapshot`` is ``None`` while the context is spilled to disk; the token
    sequence (and the byte sizes needed for accounting) stay in memory so the
    context keeps participating in prefix matching.
    """

    context_id: str
    snapshot: KVSnapshot | None
    fine_indexes: dict[int, LayerIndexes] = field(default_factory=dict)
    coarse_indexes: dict[int, list[CoarseBlockIndex]] = field(default_factory=dict)
    query_samples: dict[int, np.ndarray] = field(default_factory=dict)
    wants_fine_indexes: bool = True
    wants_coarse_indexes: bool = True
    """Index policy chosen at import/store time; honoured when indexes are
    rebuilt after a spill/reload cycle."""

    def __post_init__(self) -> None:
        self._tokens: list[int] = self.snapshot.tokens if self.snapshot is not None else []
        self._spilled_kv_bytes = 0
        self._spilled_num_layers = 0
        if not self.query_samples and self.snapshot is not None and self.snapshot.query_samples:
            self.query_samples = dict(self.snapshot.query_samples)

    @property
    def is_resident(self) -> bool:
        return self.snapshot is not None

    @property
    def tokens(self) -> list[int]:
        return self._tokens

    @property
    def num_tokens(self) -> int:
        return len(self._tokens)

    @property
    def num_layers(self) -> int:
        if self.snapshot is not None:
            return self.snapshot.num_layers
        return self._spilled_num_layers

    @property
    def has_fine_indexes(self) -> bool:
        return bool(self.fine_indexes)

    def _require_resident(self) -> KVSnapshot:
        if self.snapshot is None:
            raise ContextEvictedError(
                f"context {self.context_id!r} is spilled to disk; "
                "reload it through ContextStore.ensure_resident"
            )
        return self.snapshot

    def keys(self, layer: int) -> np.ndarray:
        return self._require_resident().keys[layer]

    def values(self, layer: int) -> np.ndarray:
        return self._require_resident().values[layer]

    @property
    def kv_bytes(self) -> int:
        if self.snapshot is not None:
            return self.snapshot.nbytes
        return self._spilled_kv_bytes

    @property
    def index_bytes(self) -> int:
        return sum(indexes.memory_bytes for indexes in self.fine_indexes.values())

    # ------------------------------------------------------------------
    # residency transitions (driven by the ContextStore)
    # ------------------------------------------------------------------
    def spill(self) -> None:
        """Drop the in-memory KV and indexes; keep tokens and accounting."""
        snapshot = self._require_resident()
        self._spilled_kv_bytes = snapshot.nbytes
        self._spilled_num_layers = snapshot.num_layers
        self.snapshot = None
        # indexes reference the key arrays; dropping them is what frees the
        # memory.  Query samples go too — they were persisted inside the
        # snapshot on disk, so :meth:`restore` brings them back and a rebuild
        # after reload keeps the OOD query-sample benefit.
        self.fine_indexes = {}
        self.coarse_indexes = {}
        self.query_samples = {}

    def restore(self, snapshot: KVSnapshot) -> None:
        """Re-attach a snapshot loaded back from disk."""
        self.snapshot = snapshot
        self._tokens = snapshot.tokens
        self.query_samples = dict(snapshot.query_samples)


@dataclass
class PrefixMatch:
    """Result of matching an incoming prompt against the store."""

    context: StoredContext | None
    prefix_length: int

    @property
    def is_hit(self) -> bool:
        return self.context is not None and self.prefix_length > 0

    @property
    def is_full_reuse(self) -> bool:
        return self.is_hit and self.prefix_length == self.context.num_tokens


class _TrieNode:
    """One token of stored-context prefixes.

    ``holder`` is one representative context whose token sequence passes
    through this node — any such context shares the prefix this node spells,
    which is all longest-prefix matching needs, so a full holder *set* per
    node (O(total stored tokens) sets) is avoided.  ``ends`` lists the
    contexts whose sequence terminates exactly here; it backs holder repair
    when a context is removed.
    """

    __slots__ = ("children", "holder", "ends")

    def __init__(self, holder: str) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.holder = holder
        self.ends: set[str] | None = None


class ContextStore:
    """Registry of stored contexts with budgeted residency and disk spill.

    ``kv_budget_bytes`` caps the total bytes of KV snapshots kept in memory;
    exceeding it spills the least-recently-used unpinned context to
    ``storage_dir`` (which is therefore required when a budget is set).
    ``on_spill`` / ``on_reload`` let the owning DB react to residency changes
    (dropping buffer-pool accounting, re-scheduling index builds).
    """

    def __init__(
        self,
        storage_dir: str | Path | None = None,
        kv_budget_bytes: int | None = None,
        on_spill: Callable[[StoredContext], None] | None = None,
        on_reload: Callable[[StoredContext], None] | None = None,
        on_remove: Callable[[StoredContext], None] | None = None,
    ):
        if kv_budget_bytes is not None:
            if kv_budget_bytes <= 0:
                raise ValueError(f"kv_budget_bytes must be positive, got {kv_budget_bytes}")
            if storage_dir is None:
                raise ValueError("a kv_budget_bytes cap requires a storage_dir to spill to")
        self._contexts: dict[str, StoredContext] = {}
        self.storage_dir = Path(storage_dir) if storage_dir is not None else None
        self.kv_budget_bytes = kv_budget_bytes
        self._root = _TrieNode(holder="")  # the root's holder is never read
        self._lru: OrderedDict[str, None] = OrderedDict()  # resident ids, oldest first
        self._resident_bytes = 0
        self._pins: dict[str, int] = {}
        self._persisted: set[str] = set()
        self._on_spill = on_spill
        self._on_reload = on_reload
        self._on_remove = on_remove
        self.spill_count = 0
        self.reload_count = 0

    # ------------------------------------------------------------------
    # registry operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._contexts)

    def __contains__(self, context_id: str) -> bool:
        return context_id in self._contexts

    def add(self, context: StoredContext, overwrite: bool = False) -> None:
        context_id = context.context_id
        existing = self._contexts.get(context_id)
        if existing is not None:
            if not overwrite:
                raise DuplicateContextError(f"context {context_id!r} already stored")
            # pins are held by id (live sessions unpin on close), so they must
            # survive the overwrite: dropping them would let a later close()
            # zero another session's pin and spill a context still in use
            preserved_pins = self._pins.get(context_id, 0)
            self._forget(existing)
            if preserved_pins:
                self._pins[context_id] = preserved_pins
        self._contexts[context_id] = context
        self._trie_insert(context.tokens, context_id)
        if context.is_resident:
            self._lru[context_id] = None
            self._resident_bytes += context.kv_bytes
        self._enforce_budget(protect=context_id)

    def get(self, context_id: str) -> StoredContext:
        try:
            context = self._contexts[context_id]
        except KeyError:
            raise ContextNotFoundError(f"context {context_id!r} not found") from None
        if context.is_resident:
            self._touch(context_id)
        return context

    def remove(self, context_id: str) -> None:
        context = self._contexts.get(context_id)
        if context is None:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        self._forget(context)
        del self._contexts[context_id]
        if self._on_remove is not None:
            self._on_remove(context)

    def list_ids(self) -> list[str]:
        return sorted(self._contexts)

    @property
    def total_kv_bytes(self) -> int:
        """KV bytes of every stored context, resident or spilled."""
        return sum(context.kv_bytes for context in self._contexts.values())

    @property
    def resident_kv_bytes(self) -> int:
        """KV bytes currently held in memory (governed by the budget)."""
        return self._resident_bytes

    def resident_ids(self) -> list[str]:
        return list(self._lru)

    # ------------------------------------------------------------------
    # pinning (contexts connected to live sessions must not be spilled)
    # ------------------------------------------------------------------
    def pin(self, context_id: str) -> None:
        if context_id not in self._contexts:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        self._pins[context_id] = self._pins.get(context_id, 0) + 1

    def unpin(self, context_id: str) -> None:
        count = self._pins.get(context_id, 0)
        if count <= 1:
            self._pins.pop(context_id, None)
            # a budget overrun deferred by this pin can be resolved now
            self._enforce_budget()
        else:
            self._pins[context_id] = count - 1

    def pin_count(self, context_id: str) -> int:
        """Live-session pins currently held on ``context_id`` (0 if none)."""
        return self._pins.get(context_id, 0)

    def pinned_ids(self) -> list[str]:
        """Contexts currently pinned by at least one live session."""
        return sorted(cid for cid, count in self._pins.items() if count > 0)

    @property
    def num_pinned(self) -> int:
        """Number of contexts with at least one live pin.

        A drained serving stack must report 0 here — every session closed,
        preempted-then-cancelled, or resumed-then-finished request returns
        its pin; the soak test asserts exactly that."""
        return len(self.pinned_ids())

    # ------------------------------------------------------------------
    # prefix matching (token trie)
    # ------------------------------------------------------------------
    def find_longest_prefix(self, tokens: list[int]) -> PrefixMatch:
        """Find the stored context sharing the longest common prefix with ``tokens``.

        One trie walk over the prompt; spilled contexts still match (their
        tokens stay in the trie) — callers reload them via
        :meth:`ensure_resident` before touching KV data.
        """
        node = self._root
        best_id: str | None = None
        best_length = 0
        for depth, token in enumerate(tokens, start=1):
            child = node.children.get(int(token))
            if child is None:
                break
            # every node exists on some stored context's path, so its holder
            # shares exactly this prefix with the probe
            best_id = child.holder
            best_length = depth
            node = child
        context = self._contexts.get(best_id) if best_id is not None else None
        return PrefixMatch(context=context, prefix_length=best_length)

    def _trie_insert(self, tokens: list[int], context_id: str) -> None:
        node = self._root
        for token in tokens:
            token = int(token)
            child = node.children.get(token)
            if child is None:
                child = _TrieNode(holder=context_id)
                node.children[token] = child
            node = child
        if node.ends is None:
            node.ends = set()
        node.ends.add(context_id)

    def _trie_remove(self, tokens: list[int], context_id: str) -> None:
        node = self._root
        path: list[tuple[_TrieNode, int, _TrieNode]] = []
        for token in tokens:
            token = int(token)
            child = node.children.get(token)
            if child is None:
                break
            path.append((node, token, child))
            node = child
        if node.ends is not None:
            node.ends.discard(context_id)
            if not node.ends:
                node.ends = None
        # bottom-up: prune empty nodes, repair holders that named the
        # removed context (children were repaired first, so their holders
        # are valid replacements)
        for parent, token, child in reversed(path):
            if not child.children and child.ends is None:
                del parent.children[token]
                continue
            if child.holder == context_id:
                if child.ends:
                    child.holder = next(iter(child.ends))
                else:
                    child.holder = next(iter(child.children.values())).holder

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------
    def ensure_resident(self, context_id: str) -> StoredContext:
        """Reload a spilled context from disk (no-op when already resident)."""
        context = self._contexts.get(context_id)
        if context is None:
            raise ContextNotFoundError(f"context {context_id!r} not found")
        if context.is_resident:
            self._touch(context_id)
            return context
        if self.storage_dir is None:
            raise ContextEvictedError(
                f"context {context_id!r} is spilled but the store has no storage_dir"
            )
        snapshot = load_snapshot(self.storage_dir, context_id)
        context.restore(snapshot)
        self._lru[context_id] = None
        self._lru.move_to_end(context_id)
        self._resident_bytes += context.kv_bytes
        self.reload_count += 1
        if self._on_reload is not None:
            self._on_reload(context)
        self._enforce_budget(protect=context_id)
        return context

    def spill(self, context_id: str) -> None:
        """Explicitly spill one resident context to disk."""
        if self.storage_dir is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        context = self.get(context_id)
        if not context.is_resident:
            return
        if self._pins.get(context_id, 0) > 0:
            raise ValueError(
                f"context {context_id!r} is pinned by a live session and cannot be spilled"
            )
        self._spill_one(context_id)

    def _touch(self, context_id: str) -> None:
        if context_id in self._lru:
            self._lru.move_to_end(context_id)

    def _enforce_budget(self, protect: str | None = None) -> None:
        if self.kv_budget_bytes is None:
            return
        while self._resident_bytes > self.kv_budget_bytes:
            victim = next(
                (
                    cid
                    for cid in self._lru
                    if cid != protect and self._pins.get(cid, 0) == 0
                ),
                None,
            )
            if victim is None:
                break  # everything else is pinned or protected; stay over budget
            self._spill_one(victim)

    def _spill_one(self, context_id: str) -> None:
        context = self._contexts[context_id]
        if context_id not in self._persisted:
            save_snapshot(context.snapshot, self.storage_dir, context_id)
            self._persisted.add(context_id)
        self._resident_bytes -= context.kv_bytes
        self._lru.pop(context_id, None)
        context.spill()
        self.spill_count += 1
        if self._on_spill is not None:
            self._on_spill(context)

    def _forget(self, context: StoredContext) -> None:
        """Drop all bookkeeping for a context being removed or overwritten."""
        context_id = context.context_id
        self._trie_remove(context.tokens, context_id)
        if context.is_resident:
            self._resident_bytes -= context.kv_bytes
        self._lru.pop(context_id, None)
        self._pins.pop(context_id, None)
        self._persisted.discard(context_id)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def persist(self, context_id: str) -> Path:
        """Write a context's snapshot to ``storage_dir`` (indexes are rebuilt on load)."""
        if self.storage_dir is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        context = self.get(context_id)
        path = save_snapshot(context._require_resident(), self.storage_dir, context_id)
        self._persisted.add(context_id)
        return path

    def load_persisted(self, context_id: str) -> StoredContext:
        """Load a previously persisted snapshot back into the registry."""
        if self.storage_dir is None:
            raise ValueError("this ContextStore was created without a storage_dir")
        snapshot = load_snapshot(self.storage_dir, context_id)
        context = StoredContext(context_id=context_id, snapshot=snapshot)
        self.add(context, overwrite=True)
        self._persisted.add(context_id)
        return context
